//! Allocation bitmaps: one bit per object slot.
//!
//! The paper (§4.1): "The heap metadata includes a bitmap for each heap
//! region, where one bit always stands for one object. All bits are initially
//! zero, indicating that every object is free." Keeping per-object overhead
//! to one bit (versus dlmalloc's eight-byte boundary tags) is one of the two
//! features offsetting DieHard's power-of-two rounding cost (§4.5).
//!
//! The bitmap never allocates after construction, so it is safe to use from
//! inside a global allocator once built over caller-provided storage
//! ([`Bitmap::from_storage`]).

use core::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bitmap over object slots.
///
/// # Examples
///
/// ```
/// use diehard_core::bitmap::Bitmap;
///
/// let mut bm = Bitmap::new(128);
/// assert!(!bm.get(7));
/// bm.set(7);
/// assert!(bm.get(7));
/// assert_eq!(bm.count_ones(), 1);
/// bm.clear(7);
/// assert_eq!(bm.count_ones(), 0);
/// ```
#[derive(Debug)]
pub struct Bitmap {
    words: Storage,
    bits: usize,
}

#[derive(Debug)]
enum Storage {
    Owned(Vec<u64>),
    /// Caller-provided word storage (e.g. carved out of an mmap'd metadata
    /// arena by the global allocator, which must not allocate re-entrantly).
    Raw {
        ptr: *mut u64,
        words: usize,
    },
}

// SAFETY: `Raw` storage is exclusively owned by the bitmap for its lifetime;
// the global allocator guards all access with a lock.
unsafe impl Send for Bitmap {}
unsafe impl Sync for Bitmap {}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: `ptr` is valid for `words` u64s per `from_storage`'s
            // contract and no aliasing mutable access exists while `&self`
            // is held.
            Storage::Raw { ptr, words } => unsafe { core::slice::from_raw_parts(*ptr, *words) },
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: as above, with exclusive access guaranteed by `&mut`.
            Storage::Raw { ptr, words } => unsafe { core::slice::from_raw_parts_mut(*ptr, *words) },
        }
    }
}

impl Bitmap {
    /// Creates a bitmap with `bits` slots, all free (zero).
    #[must_use]
    pub fn new(bits: usize) -> Self {
        Self {
            words: Storage::Owned(vec![0u64; bits.div_ceil(64)]),
            bits,
        }
    }

    /// Creates a bitmap over caller-provided zeroed word storage.
    ///
    /// Used by the real allocator, whose metadata lives in a dedicated mmap
    /// region segregated from the heap (§4.1).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `bits.div_ceil(64)` u64
    /// words for the lifetime of the bitmap, must be exclusively owned by
    /// it, and must point to zeroed memory.
    #[must_use]
    pub unsafe fn from_storage(ptr: *mut u64, bits: usize) -> Self {
        Self {
            words: Storage::Raw {
                ptr,
                words: bits.div_ceil(64),
            },
            bits,
        }
    }

    /// Number of slots the bitmap covers.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` when the bitmap covers zero slots.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        let w = self.words.as_slice()[index / 64];
        (w >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` (marks the slot allocated).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words.as_mut_slice()[index / 64] |= 1u64 << (index % 64);
    }

    /// Clears the bit at `index` (marks the slot free).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words.as_mut_slice()[index / 64] &= !(1u64 << (index % 64));
    }

    /// Atomically-in-effect test-and-set: returns `true` if the bit was
    /// previously clear and is now set (the caller won the slot).
    #[inline]
    pub fn try_set(&mut self, index: usize) -> bool {
        if self.get(index) {
            false
        } else {
            self.set(index);
            true
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        for w in self.words.as_mut_slice() {
            *w = 0;
        }
    }

    /// Number of set bits (live objects in the region).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words
            .as_slice()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: self.words.as_slice(),
            word_idx: 0,
            current: self.words.as_slice().first().copied().unwrap_or(0),
            bits: self.bits,
        }
    }
}

/// A fixed-capacity bitmap whose bits can be read and written concurrently.
///
/// The magazine layer ([`crate::magazine`]) overlays one of these on each
/// partition's allocation bitmap to mark slots that are *reserved* by a
/// thread-local magazine but not yet handed to the application. The overlay
/// must be atomic because the reserved→live transition (a magazine handout)
/// happens on the owning thread **without** taking the shard lock — that is
/// the entire point of the magazine — while other threads read the bit under
/// the shard lock to decide whether a slot is live.
///
/// Memory ordering: [`clear`](Self::clear) (the handout) releases, and
/// [`get`](Self::get) acquires, so a thread that legitimately learned of an
/// object (the pointer was passed to it, which synchronizes) observes the
/// slot as live. Threads issuing *erroneous* frees may observe a stale
/// reserved bit and have the free ignored — exactly DieHard's contract for
/// invalid frees.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: AtomicStorage,
    bits: usize,
}

#[derive(Debug)]
enum AtomicStorage {
    Owned(Box<[AtomicU64]>),
    /// Caller-provided word storage (carved out of the global allocator's
    /// mmap'd metadata arena, which must never allocate re-entrantly).
    Raw {
        ptr: *const AtomicU64,
        words: usize,
    },
}

// SAFETY: `Raw` storage is exclusively owned by this bitmap for its
// lifetime, and every access goes through atomic operations.
unsafe impl Send for AtomicBitmap {}
unsafe impl Sync for AtomicBitmap {}

impl AtomicBitmap {
    /// Creates an atomic bitmap with `bits` slots, all clear.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        Self {
            words: AtomicStorage::Owned(
                (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            ),
            bits,
        }
    }

    /// Creates an atomic bitmap over caller-provided zeroed word storage.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `bits.div_ceil(64)` u64
    /// words for the lifetime of the bitmap, exclusively owned by it, zeroed,
    /// and aligned for `u64` (which matches `AtomicU64`'s layout).
    #[must_use]
    pub unsafe fn from_storage(ptr: *mut u64, bits: usize) -> Self {
        Self {
            words: AtomicStorage::Raw {
                ptr: ptr.cast::<AtomicU64>(),
                words: bits.div_ceil(64),
            },
            bits,
        }
    }

    #[inline]
    fn words(&self) -> &[AtomicU64] {
        match &self.words {
            AtomicStorage::Owned(v) => v,
            // SAFETY: `ptr` is valid for `words` AtomicU64s per the
            // `from_storage` contract (AtomicU64 is layout-identical to u64).
            AtomicStorage::Raw { ptr, words } => unsafe {
                core::slice::from_raw_parts(*ptr, *words)
            },
        }
    }

    /// Number of slots the bitmap covers.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` when the bitmap covers zero slots.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Reads the bit at `index` (acquire).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        let w = self.words()[index / 64].load(Ordering::Acquire);
        (w >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` (release).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words()[index / 64].fetch_or(1u64 << (index % 64), Ordering::Release);
    }

    /// Clears the bit at `index` (release) — the lock-free reserved→live
    /// handout transition.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn clear(&self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words()[index / 64].fetch_and(!(1u64 << (index % 64)), Ordering::Release);
    }

    /// Number of set bits. Each word is read atomically but the sum is not a
    /// snapshot — exact only when no thread is mutating the bitmap (the same
    /// quiescence caveat as the sharded heap's aggregate counters).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words()
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

/// Iterator over set-bit indices, produced by [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    bits: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + tz;
                if idx < self.bits {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn new_is_all_clear() {
        let bm = Bitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert!(!bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        for i in 0..100 {
            assert!(!bm.get(i));
        }
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            bm.set(i);
            assert!(bm.get(i), "bit {i}");
            bm.clear(i);
            assert!(!bm.get(i), "bit {i}");
        }
    }

    #[test]
    fn try_set_semantics() {
        let mut bm = Bitmap::new(8);
        assert!(bm.try_set(3));
        assert!(!bm.try_set(3));
        assert!(bm.get(3));
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = Bitmap::new(200);
        for i in (0..200).step_by(3) {
            bm.set(i);
        }
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut bm = Bitmap::new(300);
        let expected = [0usize, 5, 63, 64, 128, 255, 299];
        for &i in &expected {
            bm.set(i);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = Bitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(64).set(64);
    }

    #[test]
    fn from_storage_works() {
        let mut backing = vec![0u64; 4];
        // SAFETY: `backing` outlives `bm`, is zeroed, and is not otherwise
        // accessed while `bm` lives.
        let mut bm = unsafe { Bitmap::from_storage(backing.as_mut_ptr(), 200) };
        bm.set(150);
        assert!(bm.get(150));
        assert_eq!(bm.count_ones(), 1);
        drop(bm);
        assert_ne!(backing[2], 0, "bit 150 lives in word 2");
    }

    #[test]
    fn atomic_bitmap_set_get_clear() {
        let bm = AtomicBitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert!(!bm.is_empty());
        for i in [0usize, 63, 64, 65, 129] {
            assert!(!bm.get(i));
            bm.set(i);
            assert!(bm.get(i), "bit {i}");
        }
        assert_eq!(bm.count_ones(), 5);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 4);
    }

    #[test]
    fn atomic_bitmap_over_raw_storage() {
        let mut backing = vec![0u64; 4];
        // SAFETY: `backing` outlives `bm`, is zeroed, and is not otherwise
        // accessed while `bm` lives.
        let bm = unsafe { AtomicBitmap::from_storage(backing.as_mut_ptr(), 200) };
        bm.set(150);
        assert!(bm.get(150));
        assert_eq!(bm.count_ones(), 1);
        drop(bm);
        assert_ne!(backing[2], 0, "bit 150 lives in word 2");
    }

    #[test]
    fn atomic_bitmap_concurrent_disjoint_bits() {
        let bm = std::sync::Arc::new(AtomicBitmap::new(512));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let bm = std::sync::Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                for i in (t..512).step_by(8) {
                    bm.set(i);
                }
                for i in (t..512).step_by(16) {
                    bm.clear(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn atomic_bitmap_out_of_range_panics() {
        AtomicBitmap::new(10).set(10);
    }

    proptest! {
        /// The bitmap behaves exactly like a set of indices.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec((0usize..512, any::<bool>()), 1..300)) {
            let mut bm = Bitmap::new(512);
            let mut model: HashSet<usize> = HashSet::new();
            for (idx, set) in ops {
                if set {
                    bm.set(idx);
                    model.insert(idx);
                } else {
                    bm.clear(idx);
                    model.remove(&idx);
                }
            }
            prop_assert_eq!(bm.count_ones(), model.len());
            let got: HashSet<usize> = bm.iter_ones().collect();
            prop_assert_eq!(got, model);
        }

        #[test]
        fn count_matches_individual_gets(idxs in proptest::collection::hash_set(0usize..256, 0..64)) {
            let mut bm = Bitmap::new(256);
            for &i in &idxs {
                bm.set(i);
            }
            let by_get = (0..256).filter(|&i| bm.get(i)).count();
            prop_assert_eq!(by_get, idxs.len());
            prop_assert_eq!(bm.count_ones(), idxs.len());
        }
    }
}
