//! End-to-end integration tests spanning every crate: workloads through the
//! executor against all systems, fault campaigns, and oracle semantics.

use diehard::inject::{inject, Injection};
use diehard::prelude::*;
use diehard::workloads::{alloc_intensive_suite, profile_by_name, spec_suite};

/// Every profile in both suites runs correctly on every sound system.
#[test]
fn all_workloads_correct_on_all_systems_when_bug_free() {
    for profile in alloc_intensive_suite().iter().chain(&spec_suite()) {
        if profile.uninit_read_bug {
            continue;
        }
        let prog = profile.generate(0.005, 42);
        for system in [
            System::Libc,
            System::WindowsDefault,
            System::BdwGc,
            System::DieHard {
                config: HeapConfig::default(),
                seed: 1,
            },
            System::CCured,
            System::Rx,
        ] {
            let v = system.evaluate(&prog);
            assert!(
                v.is_correct(),
                "{} should run {} correctly, got {v:?}",
                system.name(),
                profile.name
            );
        }
    }
}

/// The §7.3.1 dangling campaign, shrunk: DieHard survives what kills libc.
#[test]
fn dangling_campaign_shape() {
    let espresso = profile_by_name("espresso").unwrap();
    let injection = Injection::Dangling {
        frequency: 0.5,
        distance: 10,
    };
    let (mut libc_ok, mut dh_ok) = (0, 0);
    for run in 0..5u64 {
        let prog = espresso.generate(0.02, 100 + run);
        let bad = inject(&prog, &injection, 200 + run);
        if System::Libc.evaluate(&bad).is_correct() {
            libc_ok += 1;
        }
        let dh = System::DieHard {
            config: HeapConfig::paper_default(),
            seed: run,
        };
        if dh.evaluate(&bad).is_correct() {
            dh_ok += 1;
        }
    }
    assert_eq!(libc_ok, 0, "libc must fail under 50% premature frees");
    assert!(dh_ok >= 4, "DieHard survived only {dh_ok}/5");
}

/// The §7.3.1 overflow campaign, shrunk.
#[test]
fn overflow_campaign_shape() {
    let espresso = profile_by_name("espresso").unwrap();
    let injection = Injection::Underflow {
        rate: 0.01,
        min_size: 32,
        shrink_by: 16,
    };
    let (mut libc_ok, mut dh_ok) = (0, 0);
    for run in 0..5u64 {
        let prog = espresso.generate(0.02, 300 + run);
        let bad = inject(&prog, &injection, 400 + run);
        if System::Libc.evaluate(&bad).is_correct() {
            libc_ok += 1;
        }
        let dh = System::DieHard {
            config: HeapConfig::paper_default(),
            seed: run,
        };
        if dh.evaluate(&bad).is_correct() {
            dh_ok += 1;
        }
    }
    assert!(libc_ok <= 1, "libc survived {libc_ok}/5 overflow runs");
    assert!(dh_ok >= 4, "DieHard survived only {dh_ok}/5");
}

/// The infinite-heap oracle absorbs *every* injected error kind — the §3
/// property the whole evaluation is built on.
#[test]
fn oracle_is_error_transparent() {
    let prog = profile_by_name("cfrac").unwrap().generate(0.01, 7);
    let clean_out = oracle_output(&prog);
    for injection in [
        Injection::Dangling {
            frequency: 1.0,
            distance: 5,
        },
        Injection::DoubleFree { rate: 1.0 },
        Injection::InvalidFree {
            rate: 1.0,
            delta: 4,
        },
    ] {
        let bad = inject(&prog, &injection, 9);
        let bad_out = oracle_output(&bad);
        assert_eq!(
            clean_out, bad_out,
            "the infinite heap must mask {injection:?} completely"
        );
    }
}

/// DieHard's verdict distribution under increasing heap pressure follows
/// Theorem 1: emptier heaps mask more overflows.
#[test]
fn masking_improves_with_bigger_heaps() {
    let espresso = profile_by_name("espresso").unwrap();
    let injection = Injection::Underflow {
        rate: 0.05,
        min_size: 32,
        shrink_by: 16,
    };
    let survival = |region_bytes: usize| -> usize {
        let mut ok = 0;
        for run in 0..8u64 {
            let prog = espresso.generate(0.02, 500 + run);
            let bad = inject(&prog, &injection, 600 + run);
            let config = HeapConfig::default().with_region_bytes(region_bytes);
            if (System::DieHard { config, seed: run })
                .evaluate(&bad)
                .is_correct()
            {
                ok += 1;
            }
        }
        ok
    };
    let small = survival(128 * 1024);
    let large = survival(16 << 20);
    assert!(
        large >= small,
        "bigger heap should mask at least as many errors ({small} -> {large})"
    );
    assert!(
        large >= 7,
        "16 MB regions should mask nearly everything, got {large}/8"
    );
}

/// Replicated execution inherits stand-alone masking and adds detection:
/// a full workload with an uninitialized read terminates via divergence.
#[test]
fn lindsay_detected_by_replicas_but_not_standalone() {
    let lindsay = profile_by_name("lindsay").unwrap();
    let prog = lindsay.generate(0.01, 3);
    // Stand-alone: runs to completion (the uninit read silently yields
    // whatever the heap held).
    let standalone = System::DieHard {
        config: HeapConfig::default(),
        seed: 8,
    }
    .run(&prog);
    assert!(standalone.output().is_some(), "stand-alone must complete");
    // Replicated: detected.
    let set = ReplicaSet::new(3, 0x11D, HeapConfig::default());
    assert!(
        matches!(set.run(&prog).outcome, ReplicatedOutcome::Divergence { .. }),
        "three replicas must detect lindsay's uninitialized read"
    );
}

/// Determinism across the whole pipeline: same seeds, same verdicts and
/// outputs — the property that makes every experiment reproducible.
#[test]
fn whole_pipeline_is_deterministic() {
    let prog = profile_by_name("p2c").unwrap().generate(0.01, 11);
    let bad = inject(
        &prog,
        &Injection::Dangling {
            frequency: 0.3,
            distance: 8,
        },
        13,
    );
    let run = |seed: u64| {
        let mut heap = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
        run_program(&mut heap, &bad, &ExecOptions::default())
    };
    assert_eq!(run(21), run(21));
    let set = ReplicaSet::new(3, 5, HeapConfig::default());
    assert_eq!(set.run(&bad).outcome, set.run_parallel(&bad).outcome);
}
