//! The §9 "future directions" debugging workflow: use DieHard's
//! deterministic seeded layouts to *difference* heaps and report memory
//! errors "as part of a crash dump without the crash".
//!
//! Scenario: a program intermittently corrupts data. Re-run it twice with
//! the same DieHard seed — once with the suspect code path disabled — and
//! diff the heaps; every differing byte is the suspect's footprint, and the
//! attribution says whether it hit live data (a real bug biting) or free
//! space (a masked error waiting to bite).
//!
//! Run: `cargo run --example heap_diff_debug`

use diehard::prelude::*;
use diehard::runtime::heap_diff::{diff_heaps, Attribution};

fn workload(enable_suspect_path: bool) -> Program {
    let mut ops = Vec::new();
    // A little database: 20 records, updated in place.
    for i in 0..20u32 {
        ops.push(Op::Alloc { id: i, size: 96 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 96,
            seed: 10,
        });
    }
    // Updates…
    for i in 0..20u32 {
        ops.push(Op::Write {
            id: i,
            offset: 16,
            len: 32,
            seed: 11,
        });
    }
    if enable_suspect_path {
        // …one of which has an off-by-N: record 7's update writes 64 bytes
        // past the record.
        ops.push(Op::Write {
            id: 7,
            offset: 96,
            len: 64,
            seed: 12,
        });
    }
    for i in 0..20u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 96,
        });
    }
    Program::new("records", ops)
}

fn main() {
    println!("== Debugging memory corruption by heap differencing (§9) ==\n");
    let seed = 0xDEB06;

    let mut reference = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
    let mut suspect = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
    run_program(&mut reference, &workload(false), &ExecOptions::default());
    run_program(&mut suspect, &workload(true), &ExecOptions::default());

    let report = diff_heaps(&reference, &suspect);
    println!(
        "diffed two same-seed executions: {} differing region(s), {} bytes total\n",
        report.regions.len(),
        report.differing_bytes()
    );
    for region in &report.regions {
        match region.landed_on {
            Attribution::LiveObject { base, size } => println!(
                "  {:#x}..{:#x}: CORRUPTED a live {size}-byte object at {base:#x} — \
                 this is where the bug bites",
                region.start,
                region.start + region.len
            ),
            Attribution::FreeSpace => println!(
                "  {:#x}..{:#x}: landed on free space — masked this run, but a \
                 latent bug (DieHard hid it; fix it anyway)",
                region.start,
                region.start + region.len
            ),
            Attribution::LargeArea => println!(
                "  {:#x}..{:#x}: in the large-object area",
                region.start,
                region.start + region.len
            ),
        }
    }

    // The same diff across several seeds triangulates the owning object:
    // the *logical* culprit (record 7) writes adjacent to its own object in
    // every layout.
    println!("\nrepeating across seeds to triangulate the culprit:");
    for seed in [1u64, 2, 3] {
        let mut clean = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
        let mut dirty = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
        run_program(&mut clean, &workload(false), &ExecOptions::default());
        run_program(&mut dirty, &workload(true), &ExecOptions::default());
        let report = diff_heaps(&clean, &dirty);
        let hits = report.corrupted_objects().count();
        println!(
            "  seed {seed}: {} region(s), {} live-object hit(s)",
            report.regions.len(),
            hits
        );
    }
    println!(
        "\nEvery diff is exactly 64 bytes directly after record 7's slot —\n\
         the overflow is pinpointed without any crash."
    );
}
