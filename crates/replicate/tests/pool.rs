//! Warm replica-set pool: equivalence, determinism, exhaustion fallback,
//! mid-connection outvoting of a pooled corrupt replica, and crash-loop
//! containment.
//!
//! The pool's contract is that warmth is *invisible* in every observable
//! outcome: for the same `LaunchConfig`, a run served by a pre-spawned
//! parked set and a run served by an inline cold spawn produce the same
//! committed bytes, the same full [`StreamOutcome`] (including the
//! buffer-mode `peak_buffered` accounting, via
//! `Session::adopt_buffer_input`), and the same per-replica seed
//! assignment. This file pins that contract at three layers — the
//! `run_pooled` pipe transport against the golden equivalence corpus, the
//! TCP proxy with `--pool 0` vs `--pool N`, and the `diehard` launcher
//! binary end to end — plus the failure paths: an exhausted pool falls
//! back to cold spawning transparently, a corrupt-seed replica handed out
//! warm is still outvoted mid-connection, and a target binary that dies at
//! startup is reaped with back-off instead of respawned in a hot loop.

#![cfg(unix)]

use diehard_replicate::net::Listener;
use diehard_replicate::proxy::{Proxy, ProxySummary};
use diehard_replicate::{run_pooled, run_streamed, InputSource, LaunchConfig, Pool, StreamOutcome};
use diehard_workloads::client::{drive, Pace};
use diehard_workloads::server::{self, ServerRequest};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn sh(script: &str) -> Vec<String> {
    vec!["/bin/sh".into(), "-c".into(), script.into()]
}

/// Cold reference run (buffer-mode `run_streamed`).
fn run_cold(cfg: &LaunchConfig, input: &[u8]) -> (Vec<u8>, StreamOutcome) {
    let mut out = Vec::new();
    let outcome = run_streamed(cfg, InputSource::Buffer(input.to_vec()), &mut out)
        .expect("cold launch must succeed");
    (out, outcome)
}

/// Warm run: a depth-1 pool primed before the input exists, then drained
/// through `run_pooled` with the same buffered input.
fn run_warm(cfg: &LaunchConfig, input: &[u8]) -> (Vec<u8>, StreamOutcome) {
    let mut pool = Pool::new(cfg.clone(), 1).expect("valid config");
    pool.prime();
    assert_eq!(pool.idle_len(), 1, "prime must park the set");
    let mut out = Vec::new();
    let outcome = run_pooled(&mut pool, InputSource::Buffer(input.to_vec()), &mut out)
        .expect("pooled launch must succeed");
    assert_eq!(pool.stats().handed_out, 1, "the run must be a pool hit");
    assert_eq!(pool.stats().cold_spawns, 0);
    (out, outcome)
}

/// The `--pool 0` ≡ cold contract, full-struct: every scenario from the
/// golden equivalence corpus produces the identical `StreamOutcome`
/// whether the set is handed out warm or spawned inline. Scenarios with
/// explicit seeds also pin the *voting*-relevant paths (minority kill,
/// three-way divergence) to identical resolutions.
///
/// The scripts are stdin-gated (`cat >/dev/null; ...`) so a parked set
/// blocks alive on its empty stdin pipe until the run adopts its input —
/// making the warm handoff deterministic. (An *ungated* fast-exiting
/// script dies while parked; the pool reaps it and falls back cold with
/// identical outcomes — that path is pinned by the unit tests and by
/// `exhausted_pool_falls_back_to_cold_with_identical_transcripts`.) The
/// gate consumes the (empty) input and emits nothing, so the golden
/// `StreamOutcome` values from `tests/pipe_equivalence.rs` carry over
/// unchanged — asserted literally for the outvoted-minority case.
#[test]
fn pooled_outcome_matches_cold_over_golden_corpus() {
    let mut corpus: Vec<(&str, LaunchConfig, &[u8])> = Vec::new();
    corpus.push((
        "small echo",
        LaunchConfig::new(3, sh("cat"), Vec::new()),
        b"hello replicated world\n",
    ));
    let mut outvoted = LaunchConfig::new(
        3,
        sh(r#"cat >/dev/null; if [ "$DIEHARD_SEED" = "7" ]; then echo bad; else echo good; fi"#),
        Vec::new(),
    );
    outvoted.seeds = vec![1, 7, 2];
    corpus.push(("outvoted minority", outvoted, b""));
    corpus.push((
        "unanimous nonzero exit",
        LaunchConfig::new(3, sh("cat >/dev/null; printf '0\\n'; exit 7"), Vec::new()),
        b"",
    ));
    let mut divergent = LaunchConfig::new(3, sh("cat >/dev/null; echo $DIEHARD_SEED"), Vec::new());
    divergent.seeds = vec![1, 2, 3];
    corpus.push(("three-way divergence", divergent, b""));
    corpus.push((
        "stderr counts toward peak",
        LaunchConfig::new(
            3,
            sh("cat >/dev/null; echo diag >&2; echo payload"),
            Vec::new(),
        ),
        b"",
    ));

    for (name, cfg, input) in corpus {
        let (cold_out, cold_outcome) = run_cold(&cfg, input);
        let (warm_out, warm_outcome) = run_warm(&cfg, input);
        assert_eq!(warm_out, cold_out, "{name}: committed bytes must match");
        assert_eq!(
            warm_outcome, cold_outcome,
            "{name}: full StreamOutcome (incl. peak_buffered) must match"
        );
        if name == "outvoted minority" {
            assert_eq!(
                warm_outcome,
                StreamOutcome {
                    diverged: false,
                    killed: vec![1],
                    exit_code: Some(0),
                    committed: 5,
                    peak_buffered: 14,
                    stderr: vec![],
                    stderr_dropped: 0,
                },
                "{name}: the golden corpus values must carry over to the warm path"
            );
        }
    }
}

/// A depth-0 pool never parks anything: `run_pooled` through it IS the
/// cold path, byte- and struct-identical, and the stats say so.
#[test]
fn depth_zero_pool_is_the_cold_path() {
    let input = b"hello replicated world\n";
    let cfg = LaunchConfig::new(3, sh("cat"), Vec::new());
    let (cold_out, cold_outcome) = run_cold(&cfg, input);

    let mut pool = Pool::new(cfg, 0).expect("valid config");
    pool.prime(); // no-op at depth 0
    assert_eq!(pool.idle_len(), 0);
    let mut out = Vec::new();
    let outcome = run_pooled(&mut pool, InputSource::Buffer(input.to_vec()), &mut out)
        .expect("launch must succeed");
    assert_eq!(out, cold_out);
    assert_eq!(outcome, cold_outcome);
    assert_eq!(pool.stats().handed_out, 0);
    assert_eq!(pool.stats().cold_spawns, 1);
}

/// Exhaustion at the transport layer, fully deterministic: `run_pooled`
/// does not refill mid-run, so a depth-1 pool serves the first run warm
/// and the second cold — and both transcripts and outcomes are identical
/// to each other and to the cold reference.
#[test]
fn exhausted_pool_falls_back_to_cold_with_identical_transcripts() {
    let mut cfg = LaunchConfig::new(
        3,
        sh(r#"cat >/dev/null; if [ "$DIEHARD_SEED" = "7" ]; then echo bad; else echo good; fi"#),
        Vec::new(),
    );
    cfg.seeds = vec![1, 7, 2];
    let (ref_out, ref_outcome) = run_cold(&cfg, b"");

    let mut pool = Pool::new(cfg, 1).expect("valid config");
    pool.prime();
    for round in 0..2 {
        let mut out = Vec::new();
        let outcome = run_pooled(&mut pool, InputSource::Buffer(Vec::new()), &mut out)
            .expect("launch must succeed");
        assert_eq!(out, ref_out, "round {round}");
        assert_eq!(outcome, ref_outcome, "round {round}");
    }
    let stats = pool.stats();
    assert_eq!(stats.handed_out, 1, "first run is the pool hit");
    assert_eq!(stats.cold_spawns, 1, "second run is the cold fallback");
}

/// The server protocol with an injectable fault (same shape as
/// `tests/proxy.rs`): when `$DIEHARD_SEED` = 7, `ECHO poison*` answers
/// `KO ...` instead of `OK ...` — a same-length corruption only the vote
/// can see.
fn poisonable_server() -> Vec<String> {
    let script = format!(
        r#"if [ "$DIEHARD_SEED" = "7" ]; then
  while IFS= read -r line; do
    case "$line" in
      "ECHO poison"*) printf 'KO %s\n' "${{line#ECHO }}";;
      "ECHO "*) printf 'OK %s\n' "${{line#ECHO }}";;
      "QUIT") exit 0;;
      *) printf 'ERR\n';;
    esac
  done
else
{server}
fi"#,
        server = server::SERVER_SCRIPT
    );
    vec!["/bin/sh".into(), "-c".into(), script]
}

type ProxyHandle = std::thread::JoinHandle<io::Result<ProxySummary>>;

fn spawn_proxy(mut proxy: Proxy) -> (u16, Arc<AtomicBool>, ProxyHandle) {
    let port = proxy.local_port().expect("bound port");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || proxy.run(&flag));
    (port, stop, handle)
}

fn stop_and_join(stop: &AtomicBool, handle: ProxyHandle) -> ProxySummary {
    stop.store(true, Ordering::Release);
    handle.join().expect("proxy thread").expect("reactor ran")
}

/// Spin until the pool gauge reports at least `want` parked sets.
fn wait_for_warmth(gauge: &AtomicUsize, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while gauge.load(Ordering::Acquire) < want {
        assert!(Instant::now() < deadline, "pool never warmed to {want}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Determinism pinned across the proxy: for the same explicit seeds, a
/// `--pool 0` proxy and a `--pool 2` proxy produce bit-identical voted
/// transcripts, identical per-connection outcomes, and identical
/// per-replica seed assignment — warmth changes *when* fork/exec happens,
/// never what the connection observes.
#[test]
fn proxy_transcripts_and_seeds_identical_pool_0_vs_pool_2() {
    const CONNS: usize = 4;
    let traces: Vec<Vec<ServerRequest>> = (0..CONNS)
        .map(|i| server::trace(0xD1E ^ (i as u64), 12))
        .collect();

    let run_with_depth = |depth: usize| -> (Vec<Vec<u8>>, ProxySummary) {
        let mut config = LaunchConfig::new(3, poisonable_server(), Vec::new());
        config.seeds = vec![1, 7, 2];
        let listener = Listener::bind_loopback(0).expect("bind");
        let mut proxy = Proxy::new(listener, config).expect("chunk valid");
        let gauge = proxy.pool_gauge();
        if depth > 0 {
            proxy = proxy.with_pool(depth);
        }
        let (port, stop, handle) = spawn_proxy(proxy);
        if depth > 0 {
            wait_for_warmth(&gauge, 1);
        }
        let responses: Vec<Vec<u8>> = traces
            .iter()
            .map(|requests| drive(port, requests, Pace::full()).expect("client I/O"))
            .collect();
        (responses, stop_and_join(&stop, handle))
    };

    let (cold_responses, cold_summary) = run_with_depth(0);
    let (warm_responses, warm_summary) = run_with_depth(2);

    for (i, requests) in traces.iter().enumerate() {
        assert_eq!(
            cold_responses[i],
            server::expected_output(requests),
            "connection {i}: cold transcript must be the voted protocol"
        );
        assert_eq!(
            warm_responses[i], cold_responses[i],
            "connection {i}: warm transcript must be bit-identical to cold"
        );
    }
    assert_eq!(cold_summary.accepted, CONNS as u64);
    assert_eq!(warm_summary.accepted, CONNS as u64);
    assert_eq!(warm_summary.diverged, cold_summary.diverged);
    // Sequential clients => completion order is accept order in both runs.
    for (cold, warm) in cold_summary.reports.iter().zip(&warm_summary.reports) {
        assert_eq!(
            warm.seeds, cold.seeds,
            "replica seed assignment must not depend on pool depth"
        );
        assert_eq!(warm.seeds, vec![1, 7, 2]);
        assert_eq!(
            warm.outcome, cold.outcome,
            "per-connection outcomes must match"
        );
    }
    // And the pool actually served warm sets (we waited for warmth before
    // the first connect, so at least that connection was a pool hit).
    assert_eq!(cold_summary.pool.handed_out, 0);
    assert_eq!(cold_summary.pool.cold_spawns, CONNS as u64);
    assert!(warm_summary.pool.handed_out >= 1, "{:?}", warm_summary.pool);
    assert_eq!(
        warm_summary.pool.handed_out + warm_summary.pool.cold_spawns,
        CONNS as u64
    );
}

/// A corrupt-seed replica handed out *warm* is still outvoted
/// mid-connection: the parked set's seed-7 member answers the poisoned
/// echo wrong, loses the chunk-0 barrier 2–1, and is SIGKILLed while the
/// survivors keep streaming the rest of the trace byte-exact.
#[test]
fn pooled_corrupt_replica_is_outvoted_mid_connection() {
    let mut config = LaunchConfig::new(3, poisonable_server(), Vec::new());
    config.seeds = vec![1, 7, 2];
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let gauge = proxy.pool_gauge();
    let proxy = proxy.with_pool(1);
    let (port, stop, handle) = spawn_proxy(proxy);
    wait_for_warmth(&gauge, 1);

    let requests = vec![
        ServerRequest::Echo("poison-trigger-0001".into()),
        ServerRequest::Produce(2000),
        ServerRequest::Quit,
    ];
    let response = drive(port, &requests, Pace::full()).expect("client I/O");
    let summary = stop_and_join(&stop, handle);

    assert_eq!(response, server::expected_output(&requests));
    assert_eq!(summary.accepted, 1);
    assert_eq!(
        summary.pool.handed_out, 1,
        "the set must come from the pool"
    );
    assert_eq!(summary.pool.cold_spawns, 0);
    let report = &summary.reports[0];
    assert_eq!(report.seeds, vec![1, 7, 2]);
    let outcome = report.outcome.as_ref().expect("session resolved");
    assert_eq!(
        outcome.killed,
        vec![1],
        "the warm seed-7 replica must be killed at the poisoned barrier"
    );
    assert!(!outcome.diverged);
}

/// Concurrent burst against a shallow pool: every connection beyond the
/// parked inventory cold-spawns transparently, and every transcript —
/// warm-served or cold-served — is byte-exact.
#[test]
fn proxy_pool_exhaustion_burst_stays_byte_exact() {
    let mut config = LaunchConfig::new(3, poisonable_server(), Vec::new());
    config.seeds = vec![1, 7, 2];
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let gauge = proxy.pool_gauge();
    let proxy = proxy.with_pool(1);
    let (port, stop, handle) = spawn_proxy(proxy);
    wait_for_warmth(&gauge, 1);

    const CLIENTS: usize = 4;
    let gate = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let requests = server::trace(0xB0B ^ (i as u64), 10);
                gate.wait(); // the whole burst lands together
                let response = drive(port, &requests, Pace::full()).expect("client I/O");
                (i, requests, response)
            })
        })
        .collect();
    for client in clients {
        let (i, requests, response) = client.join().expect("client thread");
        assert_eq!(
            response,
            server::expected_output(&requests),
            "connection {i}: exhaustion fallback must not change a byte"
        );
    }
    let summary = stop_and_join(&stop, handle);
    assert_eq!(summary.accepted, CLIENTS as u64);
    assert_eq!(summary.diverged, 0);
    assert!(
        summary.pool.handed_out >= 1,
        "the pre-warmed set must serve at least one connection: {:?}",
        summary.pool
    );
    assert_eq!(
        summary.pool.handed_out + summary.pool.cold_spawns,
        CLIENTS as u64,
        "every connection is served warm or cold, nothing dropped: {:?}",
        summary.pool
    );
}

/// A target binary that exits at startup must not turn the refill loop
/// into a fork bomb: parked deaths are reaped (never handed out) and the
/// respawn rate is clamped by exponential back-off, so a second of idle
/// reactor time spawns a bounded handful of sets, not thousands.
#[test]
fn crashing_target_is_reaped_with_backoff_not_respawned_hot() {
    let config = LaunchConfig::new(3, sh("exit 0"), Vec::new());
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let proxy = proxy.with_pool(2);
    let (_port, stop, handle) = spawn_proxy(proxy);

    std::thread::sleep(Duration::from_millis(1000));
    let summary = stop_and_join(&stop, handle);

    assert!(
        summary.pool.reaped_idle >= 1,
        "instantly-exiting sets must be detected and reaped: {:?}",
        summary.pool
    );
    assert_eq!(summary.pool.handed_out, 0);
    assert!(
        summary.pool.spawned <= 40,
        "back-off must bound the respawn rate (spawned {} sets in ~1 s)",
        summary.pool.spawned
    );
}

/// End-to-end through the launcher binary: `--pool 2` with an explicit
/// `--seed` produces byte-identical stdout/stderr and the same exit
/// status as the default cold path.
#[test]
fn launcher_pool_flag_is_byte_identical_to_cold() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_diehard"));
        cmd.args(["--seed", "42"])
            .args(extra)
            .args(["--", "/bin/sh", "-c", "tr a-z A-Z"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("launcher spawns");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(b"voted output, warm or cold\n")
            .expect("feed stdin");
        child.wait_with_output().expect("launcher runs")
    };

    let cold = run(&[]);
    let warm = run(&["--pool", "2"]);
    assert_eq!(cold.stdout, b"VOTED OUTPUT, WARM OR COLD\n");
    assert_eq!(warm.stdout, cold.stdout);
    assert_eq!(warm.stderr, cold.stderr);
    assert_eq!(warm.status.code(), cold.status.code());
    assert_eq!(warm.status.code(), Some(0));
}
