//! The runtime systems of Table 1, each as a configuration of allocator +
//! checking policy (+ recovery), runnable on any [`Program`].
//!
//! | Paper system | Emulation here |
//! |---|---|
//! | GNU libc (Lea) | `LeaSimAllocator`, no checking |
//! | BDW GC | `BdwGcSim`, no checking |
//! | CCured | `BdwGcSim` + fail-stop checking (CCured links the BDW collector and aborts on detected errors) |
//! | Rx | `LeaSimAllocator`; on crash/hang, one retry under [`rx::RxPaddedHeap`] |
//! | Failure-oblivious | `LeaSimAllocator` + drop-illegal-writes / manufacture-reads |
//! | DieHard | `DieHardSimHeap` (stand-alone or replicated via [`crate::replicas`]) |

pub mod rx;

use crate::exec::{oracle_output, run_program, CheckPolicy, ExecOptions, RunOutcome, Verdict};
use crate::ops::Program;
use diehard_baselines::{BdwGcSim, LeaSimAllocator, WindowsSimAllocator};
use diehard_core::config::HeapConfig;
use diehard_sim::{DieHardSimHeap, InfiniteHeap, SimAllocator};

/// Default simulated heap span for the baseline allocators.
pub const BASELINE_SPAN: usize = 256 << 20;

/// A runtime system under test.
#[derive(Debug, Clone)]
pub enum System {
    /// GNU libc's Lea-style allocator.
    Libc,
    /// The Windows-XP-style default allocator.
    WindowsDefault,
    /// The Boehm-Demers-Weiser-style conservative collector.
    BdwGc,
    /// Stand-alone DieHard with the given configuration and seed.
    DieHard {
        /// Heap configuration (multiplier, region size, fill policy).
        config: HeapConfig,
        /// RNG seed for this heap instance.
        seed: u64,
    },
    /// CCured-style fail-stop safe-C system (bounds + liveness + init
    /// checks, garbage collection for frees).
    CCured,
    /// Failure-oblivious computing.
    FailureOblivious,
    /// Rx-style rollback recovery.
    Rx,
    /// The infinite-heap oracle itself (sanity baseline).
    InfiniteOracle,
}

impl System {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            System::Libc => "GNU libc",
            System::WindowsDefault => "Windows default",
            System::BdwGc => "BDW GC",
            System::DieHard { .. } => "DieHard",
            System::CCured => "CCured",
            System::FailureOblivious => "Failure-oblivious",
            System::Rx => "Rx",
            System::InfiniteOracle => "Infinite heap",
        }
    }

    /// Runs `program` under this system, returning the raw outcome.
    #[must_use]
    pub fn run(&self, program: &Program) -> RunOutcome {
        match self {
            System::Libc => {
                let mut a = LeaSimAllocator::new(BASELINE_SPAN);
                run_program(&mut a, program, &ExecOptions::default())
            }
            System::WindowsDefault => {
                let mut a = WindowsSimAllocator::new(BASELINE_SPAN);
                run_program(&mut a, program, &ExecOptions::default())
            }
            System::BdwGc => {
                let mut a = BdwGcSim::new(BASELINE_SPAN);
                run_program(&mut a, program, &ExecOptions::default())
            }
            System::DieHard { config, seed } => {
                let mut a =
                    DieHardSimHeap::new(config.clone(), *seed).expect("valid DieHard config");
                run_program(&mut a, program, &ExecOptions::default())
            }
            System::CCured => {
                let mut a = BdwGcSim::new(BASELINE_SPAN);
                let opts = ExecOptions {
                    policy: CheckPolicy::FailStop,
                    ..Default::default()
                };
                run_program(&mut a, program, &opts)
            }
            System::FailureOblivious => {
                let mut a = LeaSimAllocator::new(BASELINE_SPAN);
                let opts = ExecOptions {
                    policy: CheckPolicy::Oblivious,
                    ..Default::default()
                };
                run_program(&mut a, program, &opts)
            }
            System::Rx => {
                let mut a = LeaSimAllocator::new(BASELINE_SPAN);
                let first = run_program(&mut a, program, &ExecOptions::default());
                match first {
                    RunOutcome::Crashed { .. } | RunOutcome::Hung { .. } => {
                        // Rollback to the checkpoint (program start) and
                        // re-execute in recovery mode.
                        let mut recovery = rx::RxPaddedHeap::new(BASELINE_SPAN);
                        run_program(&mut recovery, program, &ExecOptions::default())
                    }
                    done => done,
                }
            }
            System::InfiniteOracle => {
                let mut a = InfiniteHeap::new();
                run_program(&mut a, program, &ExecOptions::default())
            }
        }
    }

    /// Runs `program` and classifies the result against the infinite-heap
    /// oracle.
    #[must_use]
    pub fn evaluate(&self, program: &Program) -> Verdict {
        let oracle = oracle_output(program);
        crate::exec::verdict(&self.run(program), &oracle)
    }

    /// Runs `program` and returns `(verdict, allocator work units)` — the
    /// deterministic cost model used alongside wall-clock benches.
    #[must_use]
    pub fn evaluate_with_work(&self, program: &Program) -> (Verdict, u64) {
        let oracle = oracle_output(program);
        let (outcome, work) = match self {
            System::Libc => {
                let mut a = LeaSimAllocator::new(BASELINE_SPAN);
                let o = run_program(&mut a, program, &ExecOptions::default());
                (o, a.work())
            }
            System::WindowsDefault => {
                let mut a = WindowsSimAllocator::new(BASELINE_SPAN);
                let o = run_program(&mut a, program, &ExecOptions::default());
                (o, a.work())
            }
            System::BdwGc => {
                let mut a = BdwGcSim::new(BASELINE_SPAN);
                let o = run_program(&mut a, program, &ExecOptions::default());
                (o, a.work())
            }
            System::DieHard { config, seed } => {
                let mut a =
                    DieHardSimHeap::new(config.clone(), *seed).expect("valid DieHard config");
                let o = run_program(&mut a, program, &ExecOptions::default());
                let w = a.work();
                (o, w)
            }
            other => (other.run(program), 0),
        };
        (crate::exec::verdict(&outcome, &oracle), work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;

    fn clean_program() -> Program {
        let mut ops = Vec::new();
        for i in 0..50u32 {
            ops.push(Op::Alloc {
                id: i,
                size: 16 + (i as usize * 7) % 400,
            });
            ops.push(Op::Write {
                id: i,
                offset: 0,
                len: 16,
                seed: 1,
            });
            ops.push(Op::Read {
                id: i,
                offset: 0,
                len: 16,
            });
            if i >= 10 {
                ops.push(Op::Free { id: i - 10 });
                ops.push(Op::Forget { id: i - 10 });
            }
        }
        Program::new("clean", ops)
    }

    #[test]
    fn all_systems_correct_on_clean_program() {
        let prog = clean_program();
        for system in [
            System::Libc,
            System::WindowsDefault,
            System::BdwGc,
            System::DieHard {
                config: HeapConfig::default(),
                seed: 42,
            },
            System::CCured,
            System::FailureOblivious,
            System::Rx,
            System::InfiniteOracle,
        ] {
            let v = system.evaluate(&prog);
            assert!(v.is_correct(), "{} got {v:?}", system.name());
        }
    }

    #[test]
    fn rx_recovers_from_metadata_corruption() {
        // Overflow smashes the next chunk header; libc crashes on the free;
        // Rx rolls back and survives with padding.
        let prog = Program::new(
            "smash",
            vec![
                Op::Alloc { id: 0, size: 24 },
                Op::Alloc { id: 1, size: 24 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 32,
                    seed: 1,
                }, // +8 overflow
                Op::Free { id: 1 },
                Op::Forget { id: 1 },
                Op::Alloc { id: 2, size: 24 },
                Op::Write {
                    id: 2,
                    offset: 0,
                    len: 24,
                    seed: 2,
                },
                Op::Read {
                    id: 2,
                    offset: 0,
                    len: 24,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 24,
                },
            ],
        );
        let libc = System::Libc.evaluate(&prog);
        assert!(!libc.is_correct(), "libc should fail: {libc:?}");
        let rx = System::Rx.evaluate(&prog);
        assert!(rx.is_correct(), "Rx should recover: {rx:?}");
    }

    #[test]
    fn ccured_aborts_on_overflow() {
        let prog = Program::new(
            "of",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 12,
                    seed: 1,
                },
            ],
        );
        assert_eq!(System::CCured.evaluate(&prog), Verdict::Abort);
    }

    #[test]
    fn oblivious_survives_overflow_with_correct_output_here() {
        // Dropping the illegal tail loses data the program never reads
        // back, so this program stays correct — the unsound lucky case.
        let prog = Program::new(
            "of",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 12,
                    seed: 1,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 8,
                },
            ],
        );
        assert!(System::FailureOblivious.evaluate(&prog).is_correct());
    }

    #[test]
    fn oblivious_goes_wrong_when_dropped_data_is_read() {
        // The program legitimately reads bytes the oblivious system refused
        // to write (because the *write* strayed): output now differs.
        let prog = Program::new(
            "of2",
            vec![
                Op::Alloc { id: 0, size: 16 },
                // One overflowing write that also covers in-bounds bytes
                // 8..16; oblivious clips at 16, fine — so instead make the
                // write *start* out of bounds: entirely dropped.
                Op::Write {
                    id: 0,
                    offset: 12,
                    len: 8,
                    seed: 1,
                }, // 12..20: clipped to 12..16
                Op::Read {
                    id: 0,
                    offset: 12,
                    len: 4,
                }, // reads clipped-but-written bytes: ok
                Op::Write {
                    id: 0,
                    offset: 16,
                    len: 4,
                    seed: 2,
                }, // fully OOB: dropped
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 16,
                },
            ],
        );
        // Oracle (infinite heap) performs ALL writes (they're absorbed),
        // and its read of 0..16 sees bytes 12..16 from the first write; the
        // oblivious run agrees there. This program is correct under
        // oblivious; the difference shows in the *next* one.
        assert!(System::FailureOblivious.evaluate(&prog).is_correct());

        // Now read past the end: oracle sees the overflowed bytes, the
        // oblivious system manufactures zeros → silent divergence.
        let prog2 = Program::new(
            "of3",
            vec![
                Op::Alloc { id: 0, size: 16 },
                Op::Write {
                    id: 0,
                    offset: 8,
                    len: 16,
                    seed: 3,
                }, // 8..24 overflow
                Op::Read {
                    id: 0,
                    offset: 8,
                    len: 16,
                }, // reads 8..24
            ],
        );
        assert_eq!(
            System::FailureOblivious.evaluate(&prog2),
            Verdict::SilentCorruption
        );
    }

    #[test]
    fn diehard_and_gc_survive_what_kills_libc() {
        let prog = Program::new(
            "smash",
            vec![
                Op::Alloc { id: 0, size: 24 },
                Op::Alloc { id: 1, size: 24 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 32,
                    seed: 1,
                },
                Op::Free { id: 1 },
                Op::Forget { id: 1 },
                Op::Alloc { id: 2, size: 24 },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 24,
                },
            ],
        );
        assert!(!System::Libc.evaluate(&prog).is_correct());
        let dh = System::DieHard {
            config: HeapConfig::default(),
            seed: 9,
        };
        assert!(dh.evaluate(&prog).is_correct());
    }

    #[test]
    fn work_model_exposes_allocator_costs() {
        let prog = clean_program();
        let (_, dh_work) = System::DieHard {
            config: HeapConfig::default(),
            seed: 1,
        }
        .evaluate_with_work(&prog);
        let (_, lea_work) = System::Libc.evaluate_with_work(&prog);
        assert!(dh_work > 0);
        assert!(lea_work > 0);
    }
}
