//! Replicated execution of *real, unmodified binaries* under
//! `LD_PRELOAD=libdiehard.so` — the paper's full deployment stack: the
//! interposed randomized heap below, the §5 output voter above.
//!
//! The cdylib lands in `target/<profile>/libdiehard.so` when the
//! `diehard-preload` workspace member builds; tests locate it relative to
//! this test binary and skip with a notice if it is absent (CI builds it
//! explicitly first).

#![cfg(unix)]

use diehard_replicate::{run_replicated, LaunchConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// `target/<profile>/libdiehard.so`, if it has been built.
fn preload_path() -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir: PathBuf = exe.parent()?.parent()?.to_path_buf();
    let so = profile_dir.join("libdiehard.so");
    so.exists().then(|| so.to_string_lossy().into_owned())
}

macro_rules! require_so {
    () => {
        match preload_path() {
            Some(so) => so,
            None => {
                eprintln!("skipping: libdiehard.so not built in this profile");
                return;
            }
        }
    };
}

#[test]
fn three_preloaded_replicas_reach_quorum_on_a_real_binary() {
    let so = require_so!();
    let mut cfg = LaunchConfig::new(
        3,
        vec!["tr".into(), "a-z".into(), "A-Z".into()],
        b"every replica sees a different heap layout\n".to_vec(),
    );
    cfg.preload = Some(so);
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged, "correct binaries agree under any layout");
    assert!(exit.killed.is_empty());
    assert_eq!(exit.output, b"EVERY REPLICA SEES A DIFFERENT HEAP LAYOUT\n");
    assert_eq!(exit.exit_code, Some(0));
}

#[test]
fn replicas_receive_distinct_seeds_under_preload() {
    let so = require_so!();
    // Each replica prints its own DIEHARD_SEED — the same variable the
    // preloaded heap consumed at startup. Distinct seeds mean no two
    // ballots agree, which the voter must surface as divergence.
    let mut cfg = LaunchConfig::new(
        3,
        vec!["/bin/sh".into(), "-c".into(), "echo $DIEHARD_SEED".into()],
        Vec::new(),
    );
    cfg.preload = Some(so);
    let exit = run_replicated(&cfg).unwrap();
    assert!(
        exit.diverged,
        "identical seed outputs would mean replicas shared a seed"
    );
}

#[test]
fn corrupt_seed_replica_is_outvoted_under_preload() {
    let so = require_so!();
    // Replica 1 (seed 7) misbehaves; the seed-1 and seed-2 replicas form
    // the quorum. The shell itself runs on the preloaded heap throughout.
    let mut cfg = LaunchConfig::new(
        3,
        vec![
            "/bin/sh".into(),
            "-c".into(),
            "if [ \"$DIEHARD_SEED\" = \"7\" ]; then echo CORRUPT; else echo GOOD; fi".into(),
        ],
        Vec::new(),
    );
    cfg.seeds = vec![1, 7, 2];
    cfg.preload = Some(so);
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert_eq!(exit.output, b"GOOD\n");
    assert_eq!(exit.killed, vec![1], "the corrupt replica must be killed");
    assert_eq!(exit.exit_code, Some(0));
}

#[test]
fn launcher_binary_runs_preloaded_replicas_end_to_end() {
    let so = require_so!();
    // The installed CLI path: `diehard -n 3 --preload ... -- tr a-z A-Z`.
    let bin = env!("CARGO_BIN_EXE_diehard");
    let mut child = Command::new(bin)
        .args(["-n", "3", "--preload", &so, "--", "tr", "a-z", "A-Z"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn diehard launcher");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"vote on me\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(out.stdout, b"VOTE ON ME\n");
}

#[test]
fn allocation_heavy_binary_votes_cleanly_under_preload() {
    let so = require_so!();
    // sort(1) reallocs its way through the whole input before emitting a
    // byte — three independent randomized heaps must still agree exactly.
    let input: Vec<u8> = (0..2000u32)
        .rev()
        .flat_map(|i| format!("{i}\n").into_bytes())
        .collect();
    let mut cfg = LaunchConfig::new(3, vec!["sort".into(), "-n".into()], input);
    cfg.preload = Some(so);
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert!(exit.killed.is_empty());
    let text = String::from_utf8(exit.output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2000);
    assert_eq!(lines[0], "0");
    assert_eq!(lines[1999], "1999");
}
