//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! the API surface the workspace's five benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], [`BenchmarkId`],
//! per-group `sample_size`/`measurement_time`/`warm_up_time`, and
//! [`Bencher::iter`] — with honest but unsophisticated measurement: each
//! benchmark warms up, then runs timed samples and reports min/mean/max
//! nanoseconds per iteration to stdout.
//!
//! No statistical analysis, outlier detection, HTML reports, or baseline
//! comparison. Swap this for the real `criterion` by editing one line in
//! the workspace `Cargo.toml` when online; no bench source changes needed.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substr>` filters benchmarks, like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        if self.matches(&name) {
            run_benchmark(
                &name,
                10,
                Duration::from_secs(1),
                Duration::from_millis(300),
                &mut f,
            );
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| name.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        if self.criterion.matches(&name) {
            run_benchmark(
                &name,
                self.sample_size,
                self.measurement_time,
                self.warm_up_time,
                &mut f,
            );
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report separation only; measurement is eager).
    pub fn finish(self) {
        println!();
    }
}

/// Identifies one benchmark: a function name plus an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}/{}", func, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording one sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    // Warm-up: run single iterations until the budget is spent, measuring
    // the routine's rough cost to pick a batch size.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    while warm_start.elapsed() < warm_up_time && warm_iters < 1000 {
        f(&mut b);
        warm_iters += 1;
    }
    let per_iter = if warm_iters > 0 {
        warm_start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX)
    } else {
        Duration::from_millis(1)
    };

    // Batch so one sample costs ~ measurement_time / sample_size.
    let per_sample = measurement_time / u32::try_from(sample_size.max(1)).unwrap_or(1);
    let batch = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut bench = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: batch,
    };
    let deadline = Instant::now() + measurement_time * 2;
    for _ in 0..sample_size {
        f(&mut bench);
        if Instant::now() > deadline {
            break;
        }
    }

    let per_iter_ns: Vec<f64> = bench
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / batch as f64)
        .collect();
    if per_iter_ns.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().copied().fold(0.0, f64::max);
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
