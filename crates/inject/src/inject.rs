//! The fault injector (§7.3.1).
//!
//! "The fault injector triggers errors probabilistically, based on the
//! requested frequencies. To trigger an underflow, it requests less memory
//! from the underlying allocator than was requested by the application. To
//! trigger a dangling pointer error, it uses the log to invoke free on an
//! object before it is actually freed by the application, and ignores the
//! subsequent (actual) call to free. The fault injector only inserts
//! dangling pointer errors for small object requests (< 16K)."
//!
//! Because programs here are op streams, injection is a deterministic
//! program-to-program rewrite driven by the allocation log and a seeded
//! RNG — every campaign run is exactly reproducible.

use crate::trace::AllocLog;
use diehard_core::rng::Mwc;
use diehard_core::size_class::MAX_OBJECT_SIZE;
use diehard_runtime::ops::{Op, Program};

/// A fault-injection strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Injection {
    /// Under-allocate requests (§7.3.1's buffer-overflow injection): each
    /// `Alloc` of at least `min_size` bytes is shrunk by `shrink_by` with
    /// probability `rate`, while the program's accesses keep their original
    /// extent. The paper's experiment: rate 1%, `min_size` 32, shrink 4.
    Underflow {
        /// Probability an eligible allocation is shrunk.
        rate: f64,
        /// Only requests at least this large are shrunk.
        min_size: usize,
        /// Bytes removed from the request.
        shrink_by: usize,
    },
    /// Premature frees (§7.3.1's dangling-pointer injection): each freed
    /// small object is, with probability `frequency`, freed `distance`
    /// allocations early; the original free is dropped. The paper's
    /// experiment: frequency 50%, distance 10.
    Dangling {
        /// Probability an eligible object is freed early.
        frequency: f64,
        /// How many allocations early the free lands.
        distance: u64,
    },
    /// Double frees: each `Free` is immediately repeated with probability
    /// `rate`.
    DoubleFree {
        /// Probability a free is duplicated.
        rate: f64,
    },
    /// Invalid frees: with probability `rate`, a `free(p + delta)` of a
    /// non-pointer address is inserted right after an object's allocation.
    InvalidFree {
        /// Probability per allocation.
        rate: f64,
        /// Offset added to the object pointer.
        delta: isize,
    },
    /// Uninitialized reads: with probability `rate`, a read of an object's
    /// first bytes is inserted immediately after allocation, before any
    /// write, and its value propagates to output.
    UninitRead {
        /// Probability per allocation.
        rate: f64,
        /// Bytes read (B = 8·len bits in Theorem 3's terms).
        len: usize,
    },
}

/// Applies `injection` to `program`, deterministically under `seed`.
///
/// The returned program contains real memory errors; run it under any
/// [`diehard_runtime::System`] to observe that system's failure behaviour.
#[must_use]
pub fn inject(program: &Program, injection: &Injection, seed: u64) -> Program {
    match injection {
        Injection::Underflow {
            rate,
            min_size,
            shrink_by,
        } => inject_underflow(program, *rate, *min_size, *shrink_by, seed),
        Injection::Dangling {
            frequency,
            distance,
        } => inject_dangling(program, *frequency, *distance, seed),
        Injection::DoubleFree { rate } => inject_double_free(program, *rate, seed),
        Injection::InvalidFree { rate, delta } => inject_invalid_free(program, *rate, *delta, seed),
        Injection::UninitRead { rate, len } => inject_uninit_read(program, *rate, *len, seed),
    }
}

fn inject_underflow(
    program: &Program,
    rate: f64,
    min_size: usize,
    shrink_by: usize,
    seed: u64,
) -> Program {
    let mut rng = Mwc::seeded(seed);
    let ops = program
        .ops
        .iter()
        .map(|op| match op {
            Op::Alloc { id, size } if *size >= min_size && rng.chance(rate) => Op::Alloc {
                id: *id,
                size: size.saturating_sub(shrink_by).max(1),
            },
            other => other.clone(),
        })
        .collect();
    Program::new(format!("{}+underflow", program.name), ops)
}

fn inject_dangling(program: &Program, frequency: f64, distance: u64, seed: u64) -> Program {
    let mut rng = Mwc::seeded(seed);
    let log = AllocLog::trace(program);
    // Choose victims: freed, small (< 16 K), coin flip at `frequency`.
    let mut victims: Vec<(u32, u64, usize)> = Vec::new(); // (id, early_time, orig_free_op)
    for rec in &log.records {
        let (Some(free_time), Some(free_op)) = (rec.free_time, rec.free_op) else {
            continue;
        };
        if rec.size >= MAX_OBJECT_SIZE {
            continue; // "only ... for small object requests (< 16K)"
        }
        if !rng.chance(frequency) {
            continue;
        }
        // Freed `distance` allocations too early, clamped to just after its
        // own allocation.
        let early = free_time.saturating_sub(distance).max(rec.alloc_time + 1);
        victims.push((rec.id, early, free_op));
    }
    let dropped: std::collections::HashSet<usize> = victims.iter().map(|&(_, _, op)| op).collect();
    let mut early_by_time: std::collections::HashMap<u64, Vec<u32>> = Default::default();
    for &(id, t, _) in &victims {
        early_by_time.entry(t).or_default().push(id);
    }

    let mut ops = Vec::with_capacity(program.ops.len() + victims.len());
    let mut alloc_clock: u64 = 0;
    // Emit premature frees scheduled for time 0 (cannot happen: early >=
    // alloc_time + 1 >= 1, but keep the general pattern).
    for (op_idx, op) in program.ops.iter().enumerate() {
        match op {
            Op::Alloc { .. } => {
                ops.push(op.clone());
                alloc_clock += 1;
                // Any victim scheduled to be freed at this allocation time
                // is freed *now* — `distance` allocations before its
                // original free point.
                if let Some(ids) = early_by_time.get(&alloc_clock) {
                    for &id in ids {
                        ops.push(Op::Free { id });
                    }
                }
            }
            Op::Free { .. } if dropped.contains(&op_idx) => {
                // "ignores the subsequent (actual) call to free".
            }
            other => ops.push(other.clone()),
        }
    }
    Program::new(format!("{}+dangling", program.name), ops)
}

fn inject_double_free(program: &Program, rate: f64, seed: u64) -> Program {
    let mut rng = Mwc::seeded(seed);
    let mut ops = Vec::with_capacity(program.ops.len());
    for op in &program.ops {
        ops.push(op.clone());
        if let Op::Free { id } = op {
            if rng.chance(rate) {
                ops.push(Op::Free { id: *id });
            }
        }
    }
    Program::new(format!("{}+doublefree", program.name), ops)
}

fn inject_invalid_free(program: &Program, rate: f64, delta: isize, seed: u64) -> Program {
    let mut rng = Mwc::seeded(seed);
    let mut ops = Vec::with_capacity(program.ops.len());
    for op in &program.ops {
        ops.push(op.clone());
        if let Op::Alloc { id, .. } = op {
            if rng.chance(rate) {
                ops.push(Op::FreeRaw { id: *id, delta });
            }
        }
    }
    Program::new(format!("{}+invalidfree", program.name), ops)
}

fn inject_uninit_read(program: &Program, rate: f64, len: usize, seed: u64) -> Program {
    let mut rng = Mwc::seeded(seed);
    let mut ops = Vec::with_capacity(program.ops.len());
    for op in &program.ops {
        ops.push(op.clone());
        if let Op::Alloc { id, size } = op {
            if rng.chance(rate) {
                ops.push(Op::Read {
                    id: *id,
                    offset: 0,
                    len: len.min(*size),
                });
            }
        }
    }
    Program::new(format!("{}+uninit", program.name), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base_program() -> Program {
        let mut ops = Vec::new();
        for i in 0..40u32 {
            ops.push(Op::Alloc {
                id: i,
                size: 16 + (i as usize * 13) % 100,
            });
            ops.push(Op::Write {
                id: i,
                offset: 0,
                len: 16,
                seed: 1,
            });
            ops.push(Op::Read {
                id: i,
                offset: 0,
                len: 16,
            });
            if i >= 5 {
                ops.push(Op::Free { id: i - 5 });
                ops.push(Op::Forget { id: i - 5 });
            }
        }
        Program::new("base", ops)
    }

    #[test]
    fn underflow_shrinks_only_eligible_allocs() {
        let prog = base_program();
        let injected = inject(
            &prog,
            &Injection::Underflow {
                rate: 1.0,
                min_size: 32,
                shrink_by: 4,
            },
            1,
        );
        for (orig, new) in prog.ops.iter().zip(&injected.ops) {
            if let (Op::Alloc { size: s0, .. }, Op::Alloc { size: s1, .. }) = (orig, new) {
                if *s0 >= 32 {
                    assert_eq!(*s1, s0 - 4);
                } else {
                    assert_eq!(s1, s0);
                }
            }
        }
    }

    #[test]
    fn dangling_moves_frees_earlier_and_drops_originals() {
        let prog = base_program();
        let injected = inject(
            &prog,
            &Injection::Dangling {
                frequency: 1.0,
                distance: 3,
            },
            2,
        );
        // Same number of frees (each moved, none duplicated).
        let count_frees = |p: &Program| {
            p.ops
                .iter()
                .filter(|o| matches!(o, Op::Free { .. }))
                .count()
        };
        assert_eq!(count_frees(&prog), count_frees(&injected));
        // Every free now happens at least one allocation earlier (in op
        // order relative to the Forget that stayed put).
        let log_orig = AllocLog::trace(&prog);
        let log_new = AllocLog::trace(&injected);
        let mut moved = 0;
        for (a, b) in log_orig.records.iter().zip(&log_new.records) {
            assert_eq!(a.id, b.id);
            if let (Some(fa), Some(fb)) = (a.free_time, b.free_time) {
                assert!(fb <= fa, "id {} freed later than original", a.id);
                if fb < fa {
                    moved += 1;
                }
            }
        }
        assert!(moved > 0, "at least some frees must move");
    }

    #[test]
    fn dangling_distance_respected() {
        let prog = base_program();
        let injected = inject(
            &prog,
            &Injection::Dangling {
                frequency: 1.0,
                distance: 3,
            },
            3,
        );
        let log_orig = AllocLog::trace(&prog);
        let log_new = AllocLog::trace(&injected);
        for (a, b) in log_orig.records.iter().zip(&log_new.records) {
            if let (Some(fa), Some(fb)) = (a.free_time, b.free_time) {
                // Freed exactly `distance` early, clamped to just past its
                // own allocation.
                let expect = fa.saturating_sub(3).max(a.alloc_time + 1);
                assert_eq!(fb, expect, "id {}", a.id);
            }
        }
    }

    #[test]
    fn dangling_skips_large_objects() {
        let prog = Program::new(
            "large",
            vec![
                Op::Alloc {
                    id: 0,
                    size: 32 * 1024,
                },
                Op::Alloc { id: 1, size: 8 },
                Op::Alloc { id: 2, size: 8 },
                Op::Free { id: 0 },
                Op::Forget { id: 0 },
            ],
        );
        let injected = inject(
            &prog,
            &Injection::Dangling {
                frequency: 1.0,
                distance: 2,
            },
            4,
        );
        let log = AllocLog::trace(&injected);
        assert_eq!(
            log.records[0].free_time,
            AllocLog::trace(&prog).records[0].free_time,
            "large object's free must not move"
        );
    }

    #[test]
    fn double_free_duplicates() {
        let prog = base_program();
        let injected = inject(&prog, &Injection::DoubleFree { rate: 1.0 }, 5);
        let frees = |p: &Program| {
            p.ops
                .iter()
                .filter(|o| matches!(o, Op::Free { .. }))
                .count()
        };
        assert_eq!(frees(&injected), frees(&prog) * 2);
    }

    #[test]
    fn invalid_free_inserts_raw_frees() {
        let prog = base_program();
        let injected = inject(
            &prog,
            &Injection::InvalidFree {
                rate: 1.0,
                delta: 6,
            },
            6,
        );
        let raws = injected
            .ops
            .iter()
            .filter(|o| matches!(o, Op::FreeRaw { delta: 6, .. }))
            .count();
        assert_eq!(raws, prog.alloc_count());
    }

    #[test]
    fn uninit_read_inserted_before_writes() {
        let prog = base_program();
        let injected = inject(&prog, &Injection::UninitRead { rate: 1.0, len: 8 }, 7);
        // Each Alloc is now directly followed by a Read.
        for (i, op) in injected.ops.iter().enumerate() {
            if matches!(op, Op::Alloc { .. }) {
                assert!(
                    matches!(injected.ops[i + 1], Op::Read { .. }),
                    "op {} not followed by read",
                    i
                );
            }
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let prog = base_program();
        let inj = Injection::Underflow {
            rate: 0.5,
            min_size: 16,
            shrink_by: 4,
        };
        assert_eq!(inject(&prog, &inj, 42), inject(&prog, &inj, 42));
        assert_ne!(inject(&prog, &inj, 42), inject(&prog, &inj, 43));
    }

    proptest! {
        /// Rate zero is the identity transform (modulo the name).
        #[test]
        fn rate_zero_is_identity(seed in any::<u64>()) {
            let prog = base_program();
            for inj in [
                Injection::Underflow { rate: 0.0, min_size: 0, shrink_by: 4 },
                Injection::Dangling { frequency: 0.0, distance: 10 },
                Injection::DoubleFree { rate: 0.0 },
                Injection::InvalidFree { rate: 0.0, delta: 1 },
                Injection::UninitRead { rate: 0.0, len: 8 },
            ] {
                prop_assert_eq!(&inject(&prog, &inj, seed).ops, &prog.ops);
            }
        }

        /// Injected programs remain executable end to end on the oracle.
        #[test]
        fn oracle_absorbs_all_injections(seed in any::<u64>(), pick in 0usize..5) {
            let prog = base_program();
            let inj = match pick {
                0 => Injection::Underflow { rate: 0.5, min_size: 16, shrink_by: 4 },
                1 => Injection::Dangling { frequency: 0.5, distance: 5 },
                2 => Injection::DoubleFree { rate: 0.5 },
                3 => Injection::InvalidFree { rate: 0.5, delta: 4 },
                _ => Injection::UninitRead { rate: 0.5, len: 8 },
            };
            let bad = inject(&prog, &inj, seed);
            // The infinite heap tolerates everything except uninit reads
            // (whose oracle output is still deterministic zeros).
            let _ = diehard_runtime::oracle_output(&bad);
        }
    }
}
