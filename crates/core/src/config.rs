//! Heap configuration: the `M` multiplier and region geometry.
//!
//! The paper (§3.1): "We replace the infinite heap with one that is M times
//! larger than the maximum required to obtain an M-approximation to
//! infinite-heap semantics." Each of the twelve per-class regions is allowed
//! to become at most `1/M` full (§4.1).

use crate::size_class::{SizeClass, MAX_OBJECT_SIZE, NUM_CLASSES};

/// Whether newly served memory is filled with random values.
///
/// The replicated version of DieHard fills the heap and every allocated
/// object with random values so that uninitialized reads diverge across
/// replicas and are caught by the voter (§3.2, §4.2). The stand-alone
/// version skips the fill for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPolicy {
    /// Leave memory as the substrate provides it (stand-alone mode).
    #[default]
    None,
    /// Fill allocations (and, conceptually, the whole heap) with
    /// pseudo-random values drawn from the heap's RNG (replicated mode).
    Random,
}

/// Configuration for a DieHard heap.
///
/// # Examples
///
/// ```
/// use diehard_core::config::HeapConfig;
///
/// let cfg = HeapConfig::default();          // M = 2, 1 MB regions
/// assert_eq!(cfg.multiplier, 2.0);
/// let big = HeapConfig::paper_default();    // the paper's 384 MB heap
/// assert_eq!(big.region_bytes * 12, 384 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// The heap expansion factor `M`: each region may be at most `1/M` full.
    /// The paper's default configuration uses `M = 2` ("up to 1/2 is
    /// available for allocation", §7.1).
    pub multiplier: f64,
    /// Bytes reserved for each of the twelve size-class regions. Must be a
    /// power of two, at least [`min_region_bytes`](Self::min_region_bytes).
    pub region_bytes: usize,
    /// Random-fill policy for detecting uninitialized reads.
    pub fill: FillPolicy,
}

impl HeapConfig {
    /// Experiment-friendly default: `M = 2` with 1 MB regions (12 MB total),
    /// small enough that Monte Carlo campaigns run thousands of heaps.
    #[must_use]
    pub fn new() -> Self {
        Self {
            multiplier: 2.0,
            region_bytes: 1 << 20,
            fill: FillPolicy::None,
        }
    }

    /// The paper's evaluation configuration (§7.1): a 384 MB heap — twelve
    /// 32 MB regions — of which up to half is available for allocation.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            multiplier: 2.0,
            region_bytes: 32 << 20,
            fill: FillPolicy::None,
        }
    }

    /// Sets the expansion factor `M` (builder style).
    #[must_use]
    pub fn with_multiplier(mut self, m: f64) -> Self {
        self.multiplier = m;
        self
    }

    /// Sets the per-class region size in bytes (builder style).
    #[must_use]
    pub fn with_region_bytes(mut self, bytes: usize) -> Self {
        self.region_bytes = bytes;
        self
    }

    /// Sets the fill policy (builder style).
    #[must_use]
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Smallest legal region size for a given multiplier: the largest size
    /// class (16 KB) must be able to hold at least one live object below the
    /// `1/M` threshold.
    #[must_use]
    pub fn min_region_bytes(multiplier: f64) -> usize {
        let needed = (multiplier.max(1.0) * MAX_OBJECT_SIZE as f64).ceil() as usize;
        needed.next_power_of_two()
    }

    /// Number of object slots in the region for `class`.
    #[must_use]
    #[inline]
    pub fn capacity(&self, class: SizeClass) -> usize {
        self.region_bytes >> class.shift()
    }

    /// Maximum live objects allowed in `class`'s region: `capacity / M`
    /// (§4.1: "Each region is allowed to become at most 1/M full").
    #[must_use]
    #[inline]
    pub fn threshold(&self, class: SizeClass) -> usize {
        (self.capacity(class) as f64 / self.multiplier) as usize
    }

    /// Total bytes spanned by the twelve small-object regions.
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.region_bytes * NUM_CLASSES
    }

    /// Byte offset of the start of `class`'s region within the heap span.
    ///
    /// The twelve regions are laid out back to back; converting a heap
    /// offset to (class, slot) is two shifts and a mask, matching the
    /// paper's bit-shifting arithmetic (§4.1).
    #[must_use]
    #[inline]
    pub fn region_base(&self, class: SizeClass) -> usize {
        class.index() * self.region_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `M < 1`, the region size is not a power
    /// of two, or the region is too small to host the largest size class
    /// under the `1/M` cap.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(ConfigError::BadMultiplier(self.multiplier));
        }
        if !self.region_bytes.is_power_of_two() {
            return Err(ConfigError::RegionNotPowerOfTwo(self.region_bytes));
        }
        if self.region_bytes < Self::min_region_bytes(self.multiplier) {
            return Err(ConfigError::RegionTooSmall {
                got: self.region_bytes,
                need: Self::min_region_bytes(self.multiplier),
            });
        }
        Ok(())
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// An invalid [`HeapConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `M` must be a finite value of at least 1.
    BadMultiplier(f64),
    /// Region sizes must be powers of two so offset arithmetic stays
    /// shift/mask only.
    RegionNotPowerOfTwo(usize),
    /// The region cannot hold even one largest-class object under `1/M`.
    RegionTooSmall {
        /// The configured region size.
        got: usize,
        /// The minimum region size for the configured multiplier.
        need: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMultiplier(m) => write!(f, "heap multiplier {m} must be finite and >= 1"),
            Self::RegionNotPowerOfTwo(b) => {
                write!(f, "region size {b} is not a power of two")
            }
            Self::RegionTooSmall { got, need } => {
                write!(f, "region size {got} below minimum {need}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HeapConfig::default().validate().unwrap();
        HeapConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_default_is_384_mb_m2() {
        let cfg = HeapConfig::paper_default();
        assert_eq!(cfg.heap_span(), 384 << 20);
        assert_eq!(cfg.multiplier, 2.0);
    }

    #[test]
    fn capacity_and_threshold() {
        let cfg = HeapConfig::new(); // 1 MB regions, M = 2
        let c0 = SizeClass::from_index(0); // 8 B
        assert_eq!(cfg.capacity(c0), (1 << 20) / 8);
        assert_eq!(cfg.threshold(c0), (1 << 20) / 16);
        let c11 = SizeClass::from_index(11); // 16 KB
        assert_eq!(cfg.capacity(c11), 64);
        assert_eq!(cfg.threshold(c11), 32);
    }

    #[test]
    fn threshold_scales_with_multiplier() {
        let cfg = HeapConfig::new().with_multiplier(4.0);
        let c0 = SizeClass::from_index(0);
        assert_eq!(cfg.threshold(c0), cfg.capacity(c0) / 4);
    }

    #[test]
    fn fractional_multiplier_supported() {
        // M = 4/3 leaves the heap up to 3/4 full, used by Fig 4(a)'s
        // "1/2 full" ... "1/8 full" sweeps via other values.
        let cfg = HeapConfig::new().with_multiplier(4.0 / 3.0);
        cfg.validate().unwrap();
        let c0 = SizeClass::from_index(0);
        let frac = cfg.threshold(c0) as f64 / cfg.capacity(c0) as f64;
        assert!((frac - 0.75).abs() < 0.001);
    }

    #[test]
    fn rejects_multiplier_below_one() {
        let cfg = HeapConfig::new().with_multiplier(0.5);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadMultiplier(_))));
    }

    #[test]
    fn rejects_non_power_of_two_region() {
        let cfg = HeapConfig::new().with_region_bytes(1_000_000);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::RegionNotPowerOfTwo(_))
        ));
    }

    #[test]
    fn rejects_too_small_region() {
        let cfg = HeapConfig::new().with_region_bytes(16 * 1024);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::RegionTooSmall { .. }));
        // Error message is human-readable.
        assert!(err.to_string().contains("below minimum"));
    }

    #[test]
    fn min_region_bytes_tracks_multiplier() {
        assert_eq!(HeapConfig::min_region_bytes(2.0), 32 * 1024);
        assert_eq!(HeapConfig::min_region_bytes(8.0), 128 * 1024);
        // M < 1 clamps to 1.
        assert_eq!(HeapConfig::min_region_bytes(0.5), 16 * 1024);
    }

    #[test]
    fn region_bases_are_contiguous() {
        let cfg = HeapConfig::new();
        let mut expect = 0;
        for c in SizeClass::all() {
            assert_eq!(cfg.region_base(c), expect);
            expect += cfg.region_bytes;
        }
        assert_eq!(expect, cfg.heap_span());
    }
}
