//! Thin safe wrappers over the `libc` TCP socket surface.
//!
//! The [`crate::proxy`] transport needs exactly five socket operations —
//! create/bind/listen, accept, connect, local-port recovery, and write-half
//! shutdown — and this module is that surface, audited once: every raw fd
//! is owned (closed on drop or handed to `TcpStream::from_raw_fd`), every
//! accepted or created socket gets `FD_CLOEXEC` **before** any replica can
//! be spawned (a client socket leaked into a replica child would hold the
//! connection open and the client would never see EOF), and the listener
//! runs non-blocking so one reactor can multiplex accepts with session
//! I/O. Addresses are IPv4 loopback only — the proxy is a voted front end
//! for local experiments, not a hardened network daemon.
//!
//! Accepted and connected streams are returned as `std::net::TcpStream`
//! so transports reuse std's `Read`/`Write`/`shutdown` implementations on
//! a descriptor this module configured.

use std::io;
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

/// Loopback in network byte order (127.0.0.1).
const LOOPBACK_BE: u32 = u32::from_be_bytes([127, 0, 0, 1]).to_be();

/// Checks a C return value, mapping `-1` to the current `errno`.
fn cvt(rc: libc::c_int) -> io::Result<libc::c_int> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

/// Marks `fd` close-on-exec so spawned replicas never inherit it.
fn set_cloexec(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a descriptor we own; no memory is passed.
    let flags = cvt(unsafe { libc::fcntl(fd, libc::F_GETFD) })?;
    // SAFETY: as above; third argument is the int F_SETFD expects.
    cvt(unsafe { libc::fcntl(fd, libc::F_SETFD, flags | libc::FD_CLOEXEC) })?;
    Ok(())
}

/// A loopback IPv4 socket address for `port` (0 = kernel-assigned).
fn loopback_addr(port: u16) -> libc::sockaddr_in {
    libc::sockaddr_in {
        sin_family: libc::AF_INET as libc::sa_family_t,
        sin_port: port.to_be(),
        sin_addr: libc::in_addr {
            s_addr: LOOPBACK_BE,
        },
        sin_zero: [0; 8],
    }
}

/// A new `FD_CLOEXEC` TCP socket.
fn tcp_socket() -> io::Result<RawFd> {
    // SAFETY: plain socket(2); no memory is passed.
    let fd = cvt(unsafe { libc::socket(libc::AF_INET, libc::SOCK_STREAM, 0) })?;
    if let Err(e) = set_cloexec(fd) {
        // SAFETY: fd came from socket(2) above and is otherwise unused.
        unsafe { libc::close(fd) };
        return Err(e);
    }
    Ok(fd)
}

/// A non-blocking loopback TCP listener whose accepted sockets are
/// `FD_CLOEXEC` and non-blocking from birth.
#[derive(Debug)]
pub struct Listener {
    fd: RawFd,
}

impl Listener {
    /// Binds `127.0.0.1:port` (`SO_REUSEADDR`; port 0 asks the kernel for
    /// an ephemeral port — recover it with [`local_port`](Self::local_port))
    /// and starts listening, non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates socket/bind/listen/fcntl failures.
    pub fn bind_loopback(port: u16) -> io::Result<Self> {
        let fd = tcp_socket();
        let fd = fd?;
        let this = Self { fd }; // Drop closes on any error below
        let one: libc::c_int = 1;
        // SAFETY: optval points at a live c_int of the declared length.
        cvt(unsafe {
            libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                libc::SO_REUSEADDR,
                (&raw const one).cast(),
                core::mem::size_of::<libc::c_int>() as libc::socklen_t,
            )
        })?;
        let addr = loopback_addr(port);
        // SAFETY: addr is a live sockaddr_in of the declared length; the
        // sockaddr cast is the POSIX calling convention.
        cvt(unsafe {
            libc::bind(
                fd,
                (&raw const addr).cast(),
                core::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
            )
        })?;
        // SAFETY: plain listen(2) on a bound socket.
        cvt(unsafe { libc::listen(fd, 128) })?;
        crate::reactor::set_nonblocking(fd)?;
        Ok(this)
    }

    /// The locally bound port (the kernel's pick after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname(2)` failures.
    pub fn local_port(&self) -> io::Result<u16> {
        let mut addr = loopback_addr(0);
        let mut len = core::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t;
        // SAFETY: addr/len are live outputs of the declared size.
        cvt(unsafe { libc::getsockname(self.fd, (&raw mut addr).cast(), &raw mut len) })?;
        Ok(u16::from_be(addr.sin_port))
    }

    /// Accepts one pending connection, or `None` when nothing is queued
    /// (the listener is non-blocking). The returned stream is non-blocking
    /// and `FD_CLOEXEC`.
    ///
    /// # Errors
    ///
    /// Propagates `accept(2)`/`fcntl(2)` failures other than `EAGAIN`
    /// (`ECONNABORTED` — a client that gave up while queued — is folded
    /// into `None`).
    pub fn accept(&self) -> io::Result<Option<TcpStream>> {
        // SAFETY: null addr/len is the POSIX "don't care" form of accept(2).
        let fd = unsafe { libc::accept(self.fd, core::ptr::null_mut(), core::ptr::null_mut()) };
        if fd < 0 {
            let e = io::Error::last_os_error();
            return match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::ConnectionAborted => Ok(None),
                _ => Err(e),
            };
        }
        let configure = set_cloexec(fd).and_then(|()| crate::reactor::set_nonblocking(fd));
        if let Err(e) = configure {
            // SAFETY: fd came from accept(2) above and is otherwise unused.
            unsafe { libc::close(fd) };
            return Err(e);
        }
        // SAFETY: fd is a fresh connected socket we exclusively own.
        Ok(Some(unsafe { TcpStream::from_raw_fd(fd) }))
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        // SAFETY: fd was created by socket(2) and is owned by this struct.
        unsafe { libc::close(self.fd) };
    }
}

/// Connects to `127.0.0.1:port`, blocking, returning a `FD_CLOEXEC`
/// stream in its default blocking mode (client drivers want plain
/// blocking reads; callers multiplexing it set non-blocking themselves).
///
/// # Errors
///
/// Propagates socket/connect failures.
pub fn connect_loopback(port: u16) -> io::Result<TcpStream> {
    let fd = tcp_socket()?;
    let addr = loopback_addr(port);
    // SAFETY: addr is a live sockaddr_in of the declared length.
    let rc = unsafe {
        libc::connect(
            fd,
            (&raw const addr).cast(),
            core::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        )
    };
    if rc < 0 {
        let e = io::Error::last_os_error();
        // SAFETY: fd came from tcp_socket() and is otherwise unused.
        unsafe { libc::close(fd) };
        return Err(e);
    }
    // SAFETY: fd is a fresh connected socket we exclusively own.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Closes the write half of `stream` (`shutdown(SHUT_WR)`), delivering EOF
/// to the peer while leaving the read half open — how a client says "full
/// request sent, now streaming your response".
///
/// # Errors
///
/// Propagates `shutdown(2)` failures.
pub fn shutdown_write(stream: &TcpStream) -> io::Result<()> {
    // SAFETY: plain shutdown(2) on a descriptor the stream owns.
    cvt(unsafe { libc::shutdown(stream.as_raw_fd(), libc::SHUT_WR) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn bind_accept_connect_roundtrip() {
        let listener = Listener::bind_loopback(0).unwrap();
        let port = listener.local_port().unwrap();
        assert_ne!(port, 0, "kernel must assign a real port");
        assert!(
            listener.accept().unwrap().is_none(),
            "no client yet: non-blocking accept must not block"
        );
        let mut client = connect_loopback(port).unwrap();
        // The connection may still be in the listener's queue for an
        // instant; poll for it rather than assuming instant readiness.
        let mut server = None;
        for _ in 0..1000 {
            if let Some(s) = listener.accept().unwrap() {
                server = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let server = server.expect("queued connection must be accepted");
        client.write_all(b"ping").unwrap();
        shutdown_write(&client).unwrap();
        server.set_nonblocking(false).unwrap();
        let mut got = Vec::new();
        let mut server = server;
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"ping", "bytes and the EOF from SHUT_WR must arrive");
    }

    #[test]
    fn accepted_sockets_are_cloexec_and_nonblocking() {
        let listener = Listener::bind_loopback(0).unwrap();
        let port = listener.local_port().unwrap();
        let _client = connect_loopback(port).unwrap();
        let mut server = None;
        for _ in 0..1000 {
            if let Some(s) = listener.accept().unwrap() {
                server = Some(s);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut server = server.expect("queued connection must be accepted");
        let fd = server.as_raw_fd();
        // SAFETY: fcntl queries on a descriptor the stream owns.
        let fdflags = unsafe { libc::fcntl(fd, libc::F_GETFD) };
        assert_ne!(fdflags & libc::FD_CLOEXEC, 0, "replicas must not inherit");
        let mut buf = [0u8; 1];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "non-blocking");
    }
}
