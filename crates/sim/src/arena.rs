//! The simulated address space: a sparse, paged, byte-addressed arena.
//!
//! Allocators place objects at addresses inside the arena; application reads
//! and writes go through it. Crucially, **in-bounds writes always succeed**,
//! even when they land on another object or on allocator metadata — that is
//! precisely how buffer overflows corrupt real heaps, and the whole
//! evaluation hinges on reproducing it. Faults arise only at *unmapped*
//! addresses (beyond the arena limit, like touching past the program break)
//! or inside explicit guard ranges (DieHard's large-object guard pages).
//!
//! Pages are materialized lazily, so a 384 MB DieHard heap costs only the
//! pages actually touched. Untouched memory reads as the arena's *fill
//! pattern*: zeros by default, or position-dependent pseudo-random bytes
//! when the owning heap runs in replicated mode (the lazy analogue of
//! DieHard filling the heap with random values at init, §4.1).

use crate::fault::Fault;
use diehard_core::rng::splitmix;
use std::collections::BTreeMap;

/// Simulated page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// How untouched memory reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPattern {
    /// Untouched memory reads as zero (mmap semantics; stand-alone mode).
    #[default]
    Zero,
    /// Untouched memory reads as pseudo-random bytes derived from the given
    /// seed and the address (replicated mode's random heap fill, made lazy).
    Random(u64),
}

impl FillPattern {
    #[inline]
    fn byte_at(self, addr: usize) -> u8 {
        match self {
            FillPattern::Zero => 0,
            FillPattern::Random(seed) => {
                // One splitmix round per 8-byte lane keeps this cheap and
                // deterministic in the address alone.
                let lane = splitmix(seed ^ (addr as u64 >> 3));
                (lane >> ((addr as u64 & 7) * 8)) as u8
            }
        }
    }

    fn fill_page(self, base: usize, page: &mut [u8; PAGE_SIZE]) {
        match self {
            FillPattern::Zero => {}
            FillPattern::Random(seed) => {
                // One splitmix per 8-byte lane, written as a whole word —
                // bit-identical to `byte_at` over the page (pages are
                // 8-aligned, and `byte_at`'s per-byte shift is exactly
                // little-endian lane order), at an eighth of the hashing.
                debug_assert_eq!(base % 8, 0, "pages are word-aligned");
                let first_lane = base as u64 >> 3;
                for (k, lane_bytes) in page.chunks_exact_mut(8).enumerate() {
                    let lane = splitmix(seed ^ (first_lane + k as u64));
                    lane_bytes.copy_from_slice(&lane.to_le_bytes());
                }
            }
        }
    }
}

/// A sparse simulated memory.
#[derive(Debug)]
pub struct PagedArena {
    pages: BTreeMap<usize, Box<[u8; PAGE_SIZE]>>,
    /// Exclusive upper bound of accessible addresses (the "program break").
    limit: usize,
    /// Half-open guard ranges; any access inside faults.
    guards: Vec<(usize, usize)>,
    fill: FillPattern,
}

impl PagedArena {
    /// Creates an arena whose accessible range is `[0, limit)`.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            pages: BTreeMap::new(),
            limit,
            guards: Vec::new(),
            fill: FillPattern::Zero,
        }
    }

    /// Creates an arena with a fill pattern for untouched memory.
    #[must_use]
    pub fn with_fill(limit: usize, fill: FillPattern) -> Self {
        Self {
            pages: BTreeMap::new(),
            limit,
            guards: Vec::new(),
            fill,
        }
    }

    /// Current accessible limit (exclusive).
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Extends (or shrinks) the accessible range, like `sbrk`/`mmap`.
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit;
    }

    /// Registers `[start, end)` as a guard range; accesses fault.
    pub fn add_guard(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end);
        self.guards.push((start, end));
    }

    /// Removes a previously registered guard range (exact match).
    pub fn remove_guard(&mut self, start: usize, end: usize) {
        self.guards.retain(|&(s, e)| (s, e) != (start, end));
    }

    /// Number of materialized pages (the sim's resident-set analogue).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Checks that `[addr, addr + len)` is accessible.
    fn check(&self, addr: usize, len: usize) -> Result<(), Fault> {
        let end = addr.checked_add(len).ok_or(Fault::Segv { addr })?;
        if end > self.limit {
            return Err(Fault::Segv {
                addr: self.limit.max(addr),
            });
        }
        for &(gs, ge) in &self.guards {
            if addr < ge && gs < end {
                return Err(Fault::Segv { addr: addr.max(gs) });
            }
        }
        Ok(())
    }

    #[inline]
    fn page_mut(&mut self, page_base: usize) -> &mut [u8; PAGE_SIZE] {
        let fill = self.fill;
        self.pages.entry(page_base).or_insert_with(|| {
            let mut page = Box::new([0u8; PAGE_SIZE]);
            fill.fill_page(page_base, &mut page);
            page
        })
    }

    /// Writes `data` at `addr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte of the range is unmapped or guarded; no
    /// partial write occurs.
    pub fn write(&mut self, addr: usize, data: &[u8]) -> Result<(), Fault> {
        self.check(addr, data.len())?;
        let mut cursor = addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = cursor - page_base;
            let n = remaining.len().min(PAGE_SIZE - in_page);
            self.page_mut(page_base)[in_page..in_page + n].copy_from_slice(&remaining[..n]);
            cursor += n;
            remaining = &remaining[n..];
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes from `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte of the range is unmapped or guarded.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> Result<(), Fault> {
        self.check(addr, buf.len())?;
        let mut cursor = addr;
        let mut out = &mut buf[..];
        while !out.is_empty() {
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = cursor - page_base;
            let n = out.len().min(PAGE_SIZE - in_page);
            match self.pages.get(&page_base) {
                Some(page) => out[..n].copy_from_slice(&page[in_page..in_page + n]),
                None => {
                    for (i, b) in out[..n].iter_mut().enumerate() {
                        *b = self.fill.byte_at(cursor + i);
                    }
                }
            }
            cursor += n;
            out = &mut out[n..];
        }
        Ok(())
    }

    /// Fills `[addr, addr + len)` with `byte`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] as for [`write`](Self::write).
    pub fn fill_bytes(&mut self, addr: usize, byte: u8, len: usize) -> Result<(), Fault> {
        self.check(addr, len)?;
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page_base = cursor & !(PAGE_SIZE - 1);
            let in_page = cursor - page_base;
            let n = remaining.min(PAGE_SIZE - in_page);
            self.page_mut(page_base)[in_page..in_page + n].fill(byte);
            cursor += n;
            remaining -= n;
        }
        Ok(())
    }

    /// Reads a native-endian `u64` (allocator metadata words).
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] as for [`read`](Self::read).
    pub fn read_u64(&self, addr: usize) -> Result<u64, Fault> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_ne_bytes(buf))
    }

    /// Writes a native-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] as for [`write`](Self::write).
    pub fn write_u64(&mut self, addr: usize, value: u64) -> Result<(), Fault> {
        self.write(addr, &value.to_ne_bytes())
    }

    /// Iterates over materialized pages as `(base_address, bytes)`, in
    /// address order — the substrate for heap differencing (§9).
    pub fn resident(&self) -> impl Iterator<Item = (usize, &[u8; PAGE_SIZE])> {
        self.pages.iter().map(|(&base, page)| (base, &**page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_read_roundtrip() {
        let mut a = PagedArena::new(1 << 20);
        a.write(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        a.read(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cross_page_access() {
        let mut a = PagedArena::new(1 << 20);
        let addr = PAGE_SIZE - 3;
        a.write(addr, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        a.read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        assert_eq!(a.resident_pages(), 2);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let a = PagedArena::new(1 << 20);
        let mut buf = [0xFFu8; 16];
        a.read(5000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(a.resident_pages(), 0, "reads must not commit pages");
    }

    #[test]
    fn random_fill_is_deterministic_and_nonzero() {
        let a = PagedArena::with_fill(1 << 20, FillPattern::Random(42));
        let b = PagedArena::with_fill(1 << 20, FillPattern::Random(42));
        let c = PagedArena::with_fill(1 << 20, FillPattern::Random(43));
        let mut ba = [0u8; 64];
        let mut bb = [0u8; 64];
        let mut bc = [0u8; 64];
        a.read(777, &mut ba).unwrap();
        b.read(777, &mut bb).unwrap();
        c.read(777, &mut bc).unwrap();
        assert_eq!(ba, bb, "same seed, same fill");
        assert_ne!(ba, bc, "different seed, different fill");
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    fn random_fill_survives_partial_writes() {
        let mut a = PagedArena::with_fill(1 << 20, FillPattern::Random(42));
        let probe = 8192;
        let mut before = [0u8; 32];
        a.read(probe, &mut before).unwrap();
        // Committing the page by writing *elsewhere on it* must not change
        // what the untouched bytes read.
        a.write(probe + 100, b"x").unwrap();
        let mut after = [0u8; 32];
        a.read(probe, &mut after).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn out_of_limit_faults() {
        let mut a = PagedArena::new(1000);
        assert!(matches!(a.write(999, b"ab"), Err(Fault::Segv { .. })));
        assert!(a.write(998, b"ab").is_ok());
        let mut buf = [0u8; 1];
        assert!(matches!(a.read(1000, &mut buf), Err(Fault::Segv { .. })));
    }

    #[test]
    fn limit_can_grow_like_sbrk() {
        let mut a = PagedArena::new(100);
        assert!(a.write(200, b"x").is_err());
        a.set_limit(400);
        assert!(a.write(200, b"x").is_ok());
    }

    #[test]
    fn guard_ranges_fault() {
        let mut a = PagedArena::new(1 << 20);
        a.add_guard(4096, 8192);
        assert!(a.write(4096, b"x").is_err());
        assert!(a.write(8191, b"x").is_err());
        let mut buf = [0u8; 4];
        assert!(a.read(5000, &mut buf).is_err());
        // Straddling accesses fault too.
        assert!(a.write(4094, b"abcd").is_err());
        // Outside the guard: fine.
        assert!(a.write(8192, b"x").is_ok());
        a.remove_guard(4096, 8192);
        assert!(a.write(5000, b"x").is_ok());
    }

    #[test]
    fn fill_bytes_spans_pages() {
        let mut a = PagedArena::new(1 << 20);
        a.fill_bytes(PAGE_SIZE - 10, 0xCD, 20).unwrap();
        let mut buf = [0u8; 20];
        a.read(PAGE_SIZE - 10, &mut buf).unwrap();
        assert_eq!(buf, [0xCD; 20]);
    }

    #[test]
    fn u64_roundtrip() {
        let mut a = PagedArena::new(1 << 20);
        a.write_u64(123, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(a.read_u64(123).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn resident_iterates_in_order() {
        let mut a = PagedArena::new(1 << 24);
        a.write(3 * PAGE_SIZE, b"x").unwrap();
        a.write(PAGE_SIZE, b"y").unwrap();
        let bases: Vec<usize> = a.resident().map(|(b, _)| b).collect();
        assert_eq!(bases, vec![PAGE_SIZE, 3 * PAGE_SIZE]);
    }

    proptest! {
        /// Arena writes/reads agree with a flat model vector.
        #[test]
        fn model_equivalence(
            writes in proptest::collection::vec(
                (0usize..60_000, proptest::collection::vec(any::<u8>(), 1..200)),
                1..40,
            ),
        ) {
            let mut arena = PagedArena::new(1 << 16);
            let mut model = vec![0u8; 1 << 16];
            for (addr, data) in writes {
                let res = arena.write(addr, &data);
                if addr + data.len() <= model.len() {
                    prop_assert!(res.is_ok());
                    model[addr..addr + data.len()].copy_from_slice(&data);
                } else {
                    prop_assert!(res.is_err());
                }
            }
            let mut buf = vec![0u8; 1 << 16];
            arena.read(0, &mut buf).unwrap();
            prop_assert_eq!(buf, model);
        }
    }
}
