//! The per-case random source: a splitmix64 stream.

/// Deterministic RNG driving strategy sampling for one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` of 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift: unbiased enough for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
