//! Replication-cost bench (§7.2.3 companion): one program, k ∈ {1, 3, 16}
//! replicas, serial vs parallel execution of the replica set, the voting
//! machinery in isolation, the §5 subprocess engine streaming
//! multi-megabyte voted output — a stream length the old buffer-everything
//! voter held entirely in memory (replicas × stream bytes) and the
//! event-driven engine bounds at replicas × 4 KB — and the TCP proxy
//! front end multiplexing concurrent voted sessions over one reactor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_core::config::HeapConfig;
use diehard_replicate::{run_replicated, LaunchConfig, CHUNK};
use diehard_runtime::ReplicaSet;
use diehard_workloads::{profile_by_name, server};

fn bench_replica_counts(c: &mut Criterion) {
    let prog = profile_by_name("espresso")
        .expect("espresso")
        .generate(0.02, 0x9E9);
    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [1usize, 3, 16] {
        let set = ReplicaSet::new(k, 0xFEED, HeapConfig::default());
        group.bench_with_input(BenchmarkId::new("serial", k), &set, |b, set| {
            b.iter(|| set.run(&prog));
        });
        group.bench_with_input(BenchmarkId::new("parallel", k), &set, |b, set| {
            b.iter(|| set.run_parallel(&prog));
        });
    }
    group.finish();
}

fn bench_random_fill_cost(c: &mut Criterion) {
    use diehard_core::config::FillPolicy;
    use diehard_sim::{DieHardSimHeap, SimAllocator};

    // The replicated allocator's extra cost: filling allocations with
    // random values (§4.2).
    let mut group = c.benchmark_group("fill_policy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, fill) in [("none", FillPolicy::None), ("random", FillPolicy::Random)] {
        group.bench_function(name, |b| {
            let cfg = HeapConfig::default().with_fill(fill);
            let mut heap = DieHardSimHeap::new(cfg, 5).unwrap();
            b.iter(|| {
                let p = heap.malloc(256, &[]).unwrap().unwrap();
                heap.free(p).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_streamed_subprocess_vote(c: &mut Criterion) {
    if !cfg!(unix) {
        return;
    }
    // Three real /bin/sh replicas producing an identical byte stream, voted
    // at 4 KB barriers as it flows. Scaling the stream from 1 MB to 4 MB
    // scales wall time but NOT engine memory — the workload the buffering
    // design could not bound.
    let mut group = c.benchmark_group("streamed_vote");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for mb in [1usize, 4] {
        let cfg = LaunchConfig::new(
            3,
            vec![
                "/bin/sh".into(),
                "-c".into(),
                format!("yes 0123456789abcde | head -c {}", mb * 1_000_000),
            ],
            Vec::new(),
        );
        group.bench_with_input(BenchmarkId::new("mb", mb), &cfg, |b, cfg| {
            b.iter(|| {
                let exit = run_replicated(cfg).expect("replicated run");
                assert!(!exit.diverged);
                assert_eq!(exit.output.len(), mb * 1_000_000);
            });
        });
    }
    group.finish();
}

fn bench_replica_scaling(c: &mut Criterion) {
    if !cfg!(unix) {
        return;
    }
    // The ROADMAP's multicore-host measurement harness: N real subprocess
    // replicas voting a fixed 1 MB stream at 4 KB barriers. In this
    // single-CPU container the replicas time-slice, so wall time grows
    // roughly linearly in N; on a multicore host the replicas run in
    // parallel and the curve should flatten toward the per-stream cost plus
    // voting overhead. Two replicas are a legitimate *scaling* point even
    // though `LaunchConfig::new` rejects them for production use (a 1-1
    // disagreement cannot be outvoted, §6) — identical replicas never
    // disagree, so the config is built directly.
    let mut group = c.benchmark_group("replica_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for replicas in [2usize, 3, 5] {
        let cfg = LaunchConfig {
            replicas,
            command: vec![
                "/bin/sh".into(),
                "-c".into(),
                "yes 0123456789abcde | head -c 1000000".into(),
            ],
            input: Vec::new(),
            seeds: Vec::new(),
            preload: None,
            chunk: CHUNK,
        };
        group.bench_with_input(BenchmarkId::new("replicas", replicas), &cfg, |b, cfg| {
            b.iter(|| {
                let exit = run_replicated(cfg).expect("replicated run");
                assert!(!exit.diverged);
                assert_eq!(exit.output.len(), 1_000_000);
            });
        });
    }
    group.finish();
}

fn bench_streamed_server_trace(c: &mut Criterion) {
    if !cfg!(unix) {
        return;
    }
    // The interactive shape: requests broadcast through the bounded input
    // window while produce bursts stream back through the voter.
    let requests = server::trace(0xBE7C4, 150);
    let input = server::request_stream(&requests);
    let expected_len = server::expected_output(&requests).len();
    let cfg = LaunchConfig::new(
        3,
        vec!["/bin/sh".into(), "-c".into(), server::SERVER_SCRIPT.into()],
        input,
    );
    let mut group = c.benchmark_group("streamed_server");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("echo_produce_trace", |b| {
        b.iter(|| {
            let exit = run_replicated(&cfg).expect("replicated run");
            assert!(!exit.diverged);
            assert_eq!(exit.output.len(), expected_len);
        });
    });
    group.finish();
}

fn bench_proxy_grid(c: &mut Criterion) {
    if !cfg!(unix) {
        return;
    }
    use diehard_replicate::net::Listener;
    use diehard_replicate::proxy::Proxy;
    use diehard_workloads::client::{drive, Pace};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // The proxy's scaling surface: `conns` concurrent clients, each served
    // by its own `replicas`-way voted server set, all multiplexed over one
    // reactor thread. One iteration = every client's full
    // connect → trace → voted-response cycle; per-connection memory stays
    // at the session bound regardless of either axis. In this single-CPU
    // container the replica processes time-slice, so wall time grows with
    // conns × replicas; on a multicore host the sessions run in parallel
    // and the conns axis should flatten.
    let requests = server::trace(0x0091_2077, 20);
    let expected = server::expected_output(&requests);
    let mut group = c.benchmark_group("proxy_grid");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for replicas in [3usize, 5] {
        for conns in [1usize, 4, 8] {
            let config = LaunchConfig::new(
                replicas,
                vec!["/bin/sh".into(), "-c".into(), server::SERVER_SCRIPT.into()],
                Vec::new(),
            );
            let listener = Listener::bind_loopback(0).expect("loopback bind");
            let mut proxy = Proxy::new(listener, config).expect("default chunk");
            let port = proxy.local_port().expect("bound port");
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let server_thread = std::thread::spawn(move || proxy.run(&flag));

            let id = BenchmarkId::new(format!("replicas_{replicas}"), conns);
            group.bench_function(id, |b| {
                b.iter(|| {
                    let clients: Vec<_> = (0..conns)
                        .map(|_| {
                            let requests = requests.clone();
                            std::thread::spawn(move || {
                                drive(port, &requests, Pace::full()).expect("client I/O")
                            })
                        })
                        .collect();
                    for client in clients {
                        let response = client.join().expect("client thread");
                        assert_eq!(response, expected, "voted transcript must be exact");
                    }
                });
            });

            stop.store(true, Ordering::Release);
            server_thread
                .join()
                .expect("proxy thread")
                .expect("reactor ran clean");
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replica_counts,
    bench_random_fill_cost,
    bench_streamed_subprocess_vote,
    bench_replica_scaling,
    bench_streamed_server_trace,
    bench_proxy_grid
);
criterion_main!(benches);
