//! A single size-class region: bitmap, fullness accounting, random probing.
//!
//! Implements the per-region half of `DieHardMalloc`/`DieHardFree`
//! (Figure 2 of the paper): hash-table-style probing for a free slot,
//! the `1/M` fullness threshold, and the allocated-bit bookkeeping.
//!
//! Each partition owns its own [`Mwc`] stream, so a partition is a complete,
//! independently-lockable *shard* of the heap: no shared RNG (or any other
//! shared mutable state) couples allocations in different size classes.

use crate::bitmap::{Bitmap, SlotState, SlotStateMap};
use crate::rng::{AtomicMwc, Mwc};
use crate::size_class::SizeClass;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One size-class region of the DieHard heap.
///
/// The partition works purely in slot indices; converting indices to byte
/// offsets (or machine pointers) is the enclosing heap's job. This lets the
/// simulated heap and the real `mmap`-backed heap share the exact same
/// placement logic.
#[derive(Debug)]
pub struct Partition {
    class: SizeClass,
    bitmap: Bitmap,
    capacity: usize,
    threshold: usize,
    in_use: usize,
    rng: Mwc,
    /// `64 - log2(capacity)` when the capacity is a power of two (every
    /// region the heap geometry builds): a probe index is then drawn as
    /// `next_u64() >> draw_shift`, which is **bit-identical** to the
    /// widening-multiply [`Mwc::below`] for a power-of-two bound —
    /// `(r * 2^k) >> 64 == r >> (64 - k)` — but costs a shift instead of a
    /// 128-bit multiply. `0` means the capacity is not a power of two (the
    /// adaptive variant's odd start sizes) and probes fall back to `below`.
    draw_shift: u32,
    /// Total probes performed by `alloc`, for validating the paper's
    /// E[probes] = 1/(1 - 1/M) claim (§4.2).
    probes: u64,
    allocs: u64,
}

/// The strength-reduced draw shift for `capacity`, or the `0` sentinel when
/// only the general widening-multiply draw is exact.
#[inline]
fn draw_shift_for(capacity: usize) -> u32 {
    if capacity.is_power_of_two() && capacity > 1 {
        64 - capacity.trailing_zeros()
    } else {
        // capacity == 1 draws index 0 either way; `below` handles it.
        0
    }
}

impl Partition {
    /// Creates an empty partition with `capacity` slots of which at most
    /// `threshold` may be live at once, probing with its own RNG stream
    /// seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > capacity` or `capacity == 0`.
    #[must_use]
    pub fn new(class: SizeClass, capacity: usize, threshold: usize, seed: u64) -> Self {
        assert!(capacity > 0, "partition capacity must be positive");
        assert!(
            threshold <= capacity,
            "threshold {threshold} exceeds capacity {capacity}"
        );
        Self {
            class,
            bitmap: Bitmap::new(capacity),
            capacity,
            threshold,
            in_use: 0,
            rng: Mwc::seeded(seed),
            draw_shift: draw_shift_for(capacity),
            probes: 0,
            allocs: 0,
        }
    }

    /// As [`new`](Self::new) but over caller-provided zeroed bitmap words,
    /// for allocators that cannot allocate (the global allocator's metadata
    /// arena).
    ///
    /// # Safety
    ///
    /// Same contract as [`Bitmap::from_storage`].
    #[must_use]
    pub unsafe fn from_storage(
        class: SizeClass,
        capacity: usize,
        threshold: usize,
        seed: u64,
        words: *mut u64,
    ) -> Self {
        assert!(capacity > 0, "partition capacity must be positive");
        assert!(
            threshold <= capacity,
            "threshold {threshold} exceeds capacity {capacity}"
        );
        Self {
            class,
            // SAFETY: forwarded caller contract.
            bitmap: unsafe { Bitmap::from_storage(words, capacity) },
            capacity,
            threshold,
            in_use: 0,
            rng: Mwc::seeded(seed),
            draw_shift: draw_shift_for(capacity),
            probes: 0,
            allocs: 0,
        }
    }

    /// The size class this partition serves.
    #[must_use]
    pub fn class(&self) -> SizeClass {
        self.class
    }

    /// Total slots in the region.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum simultaneously-live slots (`capacity / M`).
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Currently live slots (the paper's `inUse[c]`).
    #[must_use]
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Fraction of the region currently live.
    #[must_use]
    pub fn fullness(&self) -> f64 {
        self.in_use as f64 / self.capacity as f64
    }

    /// `true` when the region has hit its `1/M` cap.
    #[must_use]
    #[inline]
    pub fn at_threshold(&self) -> bool {
        self.in_use >= self.threshold
    }

    /// Picks a uniformly random free slot, marks it live, and returns its
    /// index; `None` when the region is at its threshold (the paper returns
    /// `NULL` here — "At threshold: no more memory").
    ///
    /// Probing repeats until an empty slot is found, exactly like probing an
    /// open hash table (§4.2). Because at most `1/M` of the region is ever
    /// live, the expected probe count is `1/(1 - 1/M)`. Indices are drawn
    /// from the partition's private RNG stream.
    #[inline]
    pub fn alloc(&mut self) -> Option<usize> {
        if self.at_threshold() {
            return None;
        }
        self.allocs += 1;
        loop {
            self.probes += 1;
            // Power-of-two capacities (every geometry-built region) draw
            // with one shift; the result is bit-identical to `below`, so
            // placement sequences are stable across the two paths.
            let index = if self.draw_shift != 0 {
                (self.rng.next_u64() >> self.draw_shift) as usize
            } else {
                self.rng.below(self.capacity)
            };
            if self.bitmap.try_set(index) {
                self.in_use += 1;
                return Some(index);
            }
        }
    }

    /// Frees `index` if it is currently live; returns `false` (ignoring the
    /// request, §4.3) when the slot is already free — a double or invalid
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` — the enclosing heap validates range
    /// and alignment before calling in, so this indicates a heap bug.
    #[inline]
    pub fn free(&mut self, index: usize) -> bool {
        if self.bitmap.get(index) {
            self.bitmap.clear(index);
            self.in_use -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `index` is currently live.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[must_use]
    #[inline]
    pub fn is_live(&self, index: usize) -> bool {
        self.bitmap.get(index)
    }

    /// Iterates over the indices of live slots.
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.bitmap.iter_ones()
    }

    /// Mean number of free slots between consecutive live slots, used to
    /// check the paper's E[minimum separation] = M − 1 claim (§3.1).
    /// Returns `None` with fewer than two live slots.
    #[must_use]
    pub fn mean_live_gap(&self) -> Option<f64> {
        let live: Vec<usize> = self.bitmap.iter_ones().collect();
        if live.len() < 2 {
            return None;
        }
        let gaps: usize = live.windows(2).map(|w| w[1] - w[0] - 1).sum();
        Some(gaps as f64 / (live.len() - 1) as f64)
    }

    /// Lifetime probe statistics: `(allocations, total probes)`.
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.allocs, self.probes)
    }

    /// Grows the region's slot count to `new_capacity`, rescaling the
    /// threshold proportionally. Supports the adaptive variant sketched in
    /// the paper's future work (§9). Existing live slots keep their indices.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity < capacity`, or when the partition was built
    /// over raw storage (the fixed-size global allocator never grows).
    pub fn grow(&mut self, new_capacity: usize, new_threshold: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot shrink partition from {} to {new_capacity}",
            self.capacity
        );
        assert!(new_threshold <= new_capacity);
        let mut bigger = Bitmap::new(new_capacity);
        for idx in self.bitmap.iter_ones() {
            bigger.set(idx);
        }
        self.bitmap = bigger;
        self.capacity = new_capacity;
        self.threshold = new_threshold;
        self.draw_shift = draw_shift_for(new_capacity);
    }
}

/// A lock-free [`Partition`]: the same size-class region, probed and claimed
/// entirely with atomics so allocation and free never take a lock.
///
/// This is the per-shard type behind [`crate::sharded::ShardedHeap`]'s fast
/// path. Slot state lives in a paired-bit [`SlotStateMap`], probe indices
/// come from a CAS-advanced [`AtomicMwc`] on the same stream a locked
/// [`Partition`] would draw, and the `1/M` cap is enforced by a ticket on an
/// atomic `in_use` counter. The determinism contract:
///
/// * **Single-threaded alloc-only sequences are bit-identical to
///   [`Partition`]** for the same seed — the RNG stream, the shift draw, and
///   the win/lose outcome of each claim are all the same.
/// * **Under contention the placement *sequence* may diverge** from any
///   serial execution (two threads' draws interleave one RNG stream, and a
///   lost claim redraws), but every placement is still a uniformly random
///   free slot and all accounting stays exact. This is the pinned
///   contended-retry divergence rule: determinism is per-thread-serialized
///   history, not cross-thread.
///
/// Probe accounting matches the locked path exactly: one RNG draw is one
/// probe, whether the claim then loses to an already-occupied slot (locked
/// path: `try_set` false) or to a racing claimant (CAS path only). Both
/// show up identically in `probe_stats`, keeping the §4.2
/// E[probes] = 1/(1 − 1/M) assertions honest.
///
/// # Why the probe loop terminates
///
/// A probing thread holds a ticket, so `in_use ≤ threshold` among successful
/// holders, and every occupied slot's owner holds a ticket, so
/// `occupied ≤ in_use ≤ threshold < capacity`: at least
/// `capacity − threshold` slots stay free while anyone probes, and each
/// probe hits a free slot with probability ≥ `1 − 1/M`. Growth only widens
/// that margin: the probe loop re-reads the packed active word every
/// iteration, so a concurrent doubling (which can raise the threshold past
/// the *old* capacity) immediately widens the draw range too — probing a
/// stale, now-fillable range can never persist for more than one draw.
///
/// # Elastic growth
///
/// An elastic partition ([`new_elastic`](Self::new_elastic)) sizes its slot
/// map for `max_capacity` up front but starts serving a smaller
/// power-of-two *active* capacity. [`grow_to`](Self::grow_to) — called with
/// the enclosing heap's per-class maintenance lock held, so writes are
/// serialized — publishes a larger capacity with two relaxed stores; readers
/// need no lock. Two packed words make lock-free reads tear-proof:
///
/// * `active` = `draw_shift << 58 | threshold`: one load yields a mutually
///   consistent (draw range, `1/M` cap) pair. Shift `0` is the non-pow2
///   sentinel (falls back to [`AtomicMwc::below`]); elastic capacities are
///   always pow2, so the hot path never takes it.
/// * `tickets` = `allocs << 32 | in_use`: the `1/M` ticket and the telemetry
///   allocation counter advance in **one** `fetch_add` (the ROADMAP's
///   one-RMW dial; the alloc counter narrows to 32 bits, wrapping mod 2³²).
#[derive(Debug)]
pub struct AtomicPartition {
    class: SizeClass,
    /// Slot states for the *maximum* capacity: growth never moves a slot,
    /// so indices, offsets, and live state are stable across doublings.
    map: SlotStateMap,
    max_capacity: usize,
    /// Currently active slot count (≤ `max_capacity`); written only under
    /// the enclosing heap's maintenance lock, read lock-free.
    capacity: AtomicUsize,
    /// Packed `draw_shift << 58 | threshold`; see the type docs.
    active: AtomicU64,
    /// Packed `allocs << 32 | in_use`. The low half is the occupancy
    /// *ticket*: alloc adds [`TICKET`] (one RMW bumps both halves) before
    /// claiming a slot and backs the whole ticket out on denial, free
    /// decrements the low half after releasing a slot — so `in_use`
    /// transiently overcounts, never undercounts, real occupancy. The
    /// conservative direction: the `1/M` cap can deny an allocation a racing
    /// free was about to make room for, but can never admit one past the cap.
    tickets: AtomicU64,
    rng: AtomicMwc,
    probes: AtomicU64,
}

/// Bit position of the packed draw shift inside `active`.
const ACTIVE_SHIFT_BITS: u32 = 58;
/// Low 58 bits of `active`: the `1/M` threshold.
const ACTIVE_THRESHOLD_MASK: u64 = (1 << ACTIVE_SHIFT_BITS) - 1;
/// Bit position of the packed alloc counter inside `tickets`.
const TICKET_ALLOC_SHIFT: u32 = 32;
/// Low 32 bits of `tickets`: the occupancy ticket (`in_use`).
const TICKET_IN_USE_MASK: u64 = u32::MAX as u64;
/// One allocation ticket: bumps `in_use` and `allocs` in a single RMW.
const TICKET: u64 = 1 | (1 << TICKET_ALLOC_SHIFT);

/// Packs a draw shift and threshold into one `active` word.
#[inline]
fn pack_active(draw_shift: u32, threshold: usize) -> u64 {
    ((draw_shift as u64) << ACTIVE_SHIFT_BITS) | threshold as u64
}

impl AtomicPartition {
    /// Creates an empty lock-free partition; same parameters and panics as
    /// [`Partition::new`]. The partition is *fixed-size*: it never grows.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > capacity` or `capacity == 0`.
    #[must_use]
    pub fn new(class: SizeClass, capacity: usize, threshold: usize, seed: u64) -> Self {
        Self::new_elastic(class, capacity, capacity, threshold, seed)
    }

    /// Creates an empty *elastic* partition: the slot map covers
    /// `max_capacity`, but only `initial_capacity` slots are active until
    /// [`grow_to`](Self::grow_to) widens the range.
    ///
    /// # Panics
    ///
    /// Panics if `initial_capacity == 0`, `initial_capacity > max_capacity`,
    /// `initial_threshold > initial_capacity`, or `max_capacity` does not
    /// fit the 32-bit packed ticket word.
    #[must_use]
    pub fn new_elastic(
        class: SizeClass,
        max_capacity: usize,
        initial_capacity: usize,
        initial_threshold: usize,
        seed: u64,
    ) -> Self {
        Self::check_geometry(max_capacity, initial_capacity, initial_threshold);
        Self {
            class,
            map: SlotStateMap::new(max_capacity),
            max_capacity,
            capacity: AtomicUsize::new(initial_capacity),
            active: AtomicU64::new(pack_active(
                draw_shift_for(initial_capacity),
                initial_threshold,
            )),
            tickets: AtomicU64::new(0),
            rng: AtomicMwc::seeded(seed),
            probes: AtomicU64::new(0),
        }
    }

    /// As [`new`](Self::new) but over caller-provided zeroed storage of
    /// [`Self::words_needed`]`(capacity)` u64 words.
    ///
    /// # Safety
    ///
    /// Same contract as [`SlotStateMap::from_storage`].
    #[must_use]
    pub unsafe fn from_storage(
        class: SizeClass,
        capacity: usize,
        threshold: usize,
        seed: u64,
        words: *mut u64,
    ) -> Self {
        // SAFETY: forwarded caller contract.
        unsafe { Self::from_storage_elastic(class, capacity, capacity, threshold, seed, words) }
    }

    /// As [`new_elastic`](Self::new_elastic) but over caller-provided zeroed
    /// storage of [`Self::words_needed`]`(max_capacity)` u64 words — the
    /// slot map is always sized for the maximum, so the metadata footprint
    /// is identical for fixed and elastic partitions.
    ///
    /// # Safety
    ///
    /// Same contract as [`SlotStateMap::from_storage`].
    #[must_use]
    pub unsafe fn from_storage_elastic(
        class: SizeClass,
        max_capacity: usize,
        initial_capacity: usize,
        initial_threshold: usize,
        seed: u64,
        words: *mut u64,
    ) -> Self {
        Self::check_geometry(max_capacity, initial_capacity, initial_threshold);
        Self {
            class,
            // SAFETY: forwarded caller contract.
            map: unsafe { SlotStateMap::from_storage(words, max_capacity) },
            max_capacity,
            capacity: AtomicUsize::new(initial_capacity),
            active: AtomicU64::new(pack_active(
                draw_shift_for(initial_capacity),
                initial_threshold,
            )),
            tickets: AtomicU64::new(0),
            rng: AtomicMwc::seeded(seed),
            probes: AtomicU64::new(0),
        }
    }

    fn check_geometry(max_capacity: usize, initial_capacity: usize, initial_threshold: usize) {
        assert!(initial_capacity > 0, "partition capacity must be positive");
        assert!(
            initial_capacity <= max_capacity,
            "initial capacity {initial_capacity} exceeds maximum {max_capacity}"
        );
        assert!(
            initial_threshold <= initial_capacity,
            "threshold {initial_threshold} exceeds capacity {initial_capacity}"
        );
        assert!(
            (max_capacity as u64) <= TICKET_IN_USE_MASK >> 1,
            "max capacity {max_capacity} overflows the packed 32-bit ticket word"
        );
    }

    /// Words of metadata storage a partition of `capacity` slots needs
    /// (two bits per slot). Elastic partitions size storage for their
    /// *maximum* capacity.
    #[must_use]
    pub const fn words_needed(capacity: usize) -> usize {
        SlotStateMap::words_needed(capacity)
    }

    /// Publishes a larger active capacity and threshold, lock-free for
    /// readers. The caller must serialize writers (the enclosing heap holds
    /// its per-class maintenance lock). Existing live and reserved slots
    /// keep their indices — the map was sized for `max_capacity` up front.
    ///
    /// The two relaxed stores (capacity, then the packed active word) are
    /// individually consistent for concurrent allocators: an old `active`
    /// with the new capacity just probes the old range under the old cap,
    /// and the probe loop re-reads `active` every draw, so the new range
    /// becomes visible within one iteration.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` shrinks the partition, exceeds
    /// `max_capacity`, or `new_threshold > new_capacity`.
    pub fn grow_to(&self, new_capacity: usize, new_threshold: usize) {
        let current = self.capacity.load(Ordering::Relaxed);
        assert!(
            new_capacity >= current,
            "cannot shrink partition from {current} to {new_capacity}"
        );
        assert!(
            new_capacity <= self.max_capacity,
            "capacity {new_capacity} exceeds maximum {}",
            self.max_capacity
        );
        assert!(
            new_threshold <= new_capacity,
            "threshold {new_threshold} exceeds capacity {new_capacity}"
        );
        self.capacity.store(new_capacity, Ordering::Relaxed);
        self.active.store(
            pack_active(draw_shift_for(new_capacity), new_threshold),
            Ordering::Relaxed,
        );
    }

    /// The size class this partition serves.
    #[must_use]
    pub fn class(&self) -> SizeClass {
        self.class
    }

    /// Currently active slots in the region (grows toward
    /// [`max_capacity`](Self::max_capacity)).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// The capacity ceiling the slot map was sized for; fixed partitions
    /// sit at it from construction.
    #[must_use]
    pub fn max_capacity(&self) -> usize {
        self.max_capacity
    }

    /// Maximum simultaneously-occupied slots (`capacity / M`).
    #[must_use]
    pub fn threshold(&self) -> usize {
        (self.active.load(Ordering::Relaxed) & ACTIVE_THRESHOLD_MASK) as usize
    }

    /// Currently occupied slots — live plus magazine-reserved (the paper's
    /// `inUse[c]`, with reservations counting conservatively toward the cap).
    #[must_use]
    #[inline]
    pub fn in_use(&self) -> usize {
        (self.tickets.load(Ordering::Relaxed) & TICKET_IN_USE_MASK) as usize
    }

    /// Fraction of the region currently occupied.
    #[must_use]
    pub fn fullness(&self) -> f64 {
        self.in_use() as f64 / self.capacity() as f64
    }

    /// `true` when the region has hit its `1/M` cap.
    #[must_use]
    #[inline]
    pub fn at_threshold(&self) -> bool {
        self.in_use() >= self.threshold()
    }

    /// Draws one probe index for the range described by a loaded `active`
    /// word (the packed shift keeps the draw and the threshold mutually
    /// consistent without locking).
    #[inline]
    fn draw(&self, active: u64) -> usize {
        let shift = (active >> ACTIVE_SHIFT_BITS) as u32;
        if shift != 0 {
            (self.rng.next_u64() >> shift) as usize
        } else {
            self.rng.below(self.capacity.load(Ordering::Relaxed))
        }
    }

    /// Takes a ticket against the `1/M` cap; `false` means at-threshold and
    /// the ticket was returned. One `fetch_add` advances both the occupancy
    /// ticket and the telemetry alloc counter; denial backs both out.
    #[inline]
    fn take_ticket(&self) -> bool {
        let threshold = (self.active.load(Ordering::Relaxed) & ACTIVE_THRESHOLD_MASK) as usize;
        let prev = self.tickets.fetch_add(TICKET, Ordering::Relaxed);
        if (prev & TICKET_IN_USE_MASK) as usize >= threshold {
            self.tickets.fetch_sub(TICKET, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// The lock-free `DieHardMalloc` fast path: take a ticket, then probe
    /// random slots with `fetch_or` claims until one is won. `None` when the
    /// region is at its threshold ("At threshold: no more memory").
    #[inline]
    pub fn alloc(&self) -> Option<usize> {
        self.probe_claim(|index| self.map.claim_live(index))
    }

    /// The magazine refill's lock-free twin of [`alloc`](Self::alloc):
    /// claims the slot as *reserved* (`00 → 11`) instead of live. Probe and
    /// allocation accounting are identical, so refills keep the same
    /// E[probes] statistics as direct allocations.
    #[inline]
    pub fn reserve_one(&self) -> Option<usize> {
        self.probe_claim(|index| self.map.reserve(index))
    }

    #[inline]
    fn probe_claim(&self, claim: impl Fn(usize) -> bool) -> Option<usize> {
        if !self.take_ticket() {
            return None;
        }
        let mut probes = 0u64;
        loop {
            probes += 1;
            // Re-read the packed active word every draw: a concurrent grow
            // can raise the threshold past the *old* capacity, and probing
            // only the stale range could then spin on a full region. The
            // relaxed reload of a rarely-written line is free next to the
            // draw itself, and single-threaded it always reads the same
            // word — determinism is untouched.
            let index = self.draw(self.active.load(Ordering::Relaxed));
            if claim(index) {
                // One deferred add per allocation, not per probe: same
                // totals as the locked path's per-probe increment.
                self.probes.fetch_add(probes, Ordering::Relaxed);
                return Some(index);
            }
        }
    }

    /// Reserves up to `out.len()` slots with **batched accounting**: one
    /// ticket `fetch_add` covers the whole request (clamped to the `1/M`
    /// cap, the overshoot returned in one `fetch_sub`) and the probe/alloc
    /// counters are updated once at the end — the magazine refill's bulk
    /// twin of [`reserve_one`](Self::reserve_one). Each slot is still an
    /// independent uniform draw from the shared stream through the same
    /// probe loop, so placement distribution, draw order, and probe/alloc
    /// totals are identical to `out.len()` sequential `reserve_one` calls;
    /// only the number of atomic read-modify-writes shrinks. Returns how
    /// many slots were reserved (0 at the cap); `out[..n]` holds them in
    /// draw order.
    pub fn reserve_batch(&self, out: &mut [usize]) -> usize {
        let want = out.len();
        if want == 0 {
            return 0;
        }
        let threshold = (self.active.load(Ordering::Relaxed) & ACTIVE_THRESHOLD_MASK) as usize;
        // One bulk ticket covers the batch's occupancy *and* its alloc
        // telemetry; returning the ungranted part of both in one RMW nets
        // `allocs += granted`, exactly as sequential tickets would.
        let bulk = ((want as u64) << TICKET_ALLOC_SHIFT) | want as u64;
        let prev = (self.tickets.fetch_add(bulk, Ordering::Relaxed) & TICKET_IN_USE_MASK) as usize;
        let granted = if prev >= threshold {
            0
        } else {
            want.min(threshold - prev)
        };
        if granted < want {
            let ungranted = (want - granted) as u64;
            self.tickets.fetch_sub(
                (ungranted << TICKET_ALLOC_SHIFT) | ungranted,
                Ordering::Relaxed,
            );
        }
        if granted == 0 {
            return 0;
        }
        let mut probes = 0u64;
        for slot in &mut out[..granted] {
            loop {
                probes += 1;
                let index = self.draw(self.active.load(Ordering::Relaxed));
                if self.map.reserve(index) {
                    *slot = index;
                    break;
                }
            }
        }
        self.probes.fetch_add(probes, Ordering::Relaxed);
        granted
    }

    /// Frees a batch of slots with one ticket return — the magazine
    /// free-buffer flush's bulk twin of [`free`](Self::free). Every slot
    /// still resolves through its own validating CAS (live → freed; free or
    /// reserved → ignored, §4.3), but the `in_use` decrement happens once
    /// for the whole batch. Clear-then-decrement keeps the conservative
    /// transient overcount of the single-slot path. Returns
    /// `(freed, ignored)`.
    pub fn free_batch(&self, indices: &[usize]) -> (u64, u64) {
        let mut freed = 0u64;
        for &index in indices {
            if self.map.free(index) == SlotState::Live {
                freed += 1;
            }
        }
        if freed > 0 {
            // Low half only: frees return occupancy tickets, never alloc
            // telemetry.
            self.tickets.fetch_sub(freed, Ordering::Relaxed);
        }
        (freed, indices.len() as u64 - freed)
    }

    /// Hands a reserved slot to the application (`11 → 01`), lock-free. The
    /// ticket taken at reservation time simply becomes the live slot's.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` (always), or if the slot was not
    /// reserved (debug builds).
    #[inline]
    pub fn commit(&self, index: usize) {
        self.map.commit(index);
    }

    /// Returns an unhanded reservation (`11 → 00`) and its ticket; `true`
    /// when this call released it.
    pub fn release_reservation(&self, index: usize) -> bool {
        if self.map.release_reservation(index) {
            self.tickets.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The lock-free `DieHardFree` fast path. Returns the state the slot was
    /// in: [`SlotState::Live`] means it was freed (and the ticket returned);
    /// `Free` and `Reserved` mean the request was ignored (§4.3 — a double,
    /// invalid, or premature free).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` — the enclosing heap validates range
    /// and alignment before calling in, so this indicates a heap bug.
    #[inline]
    pub fn free(&self, index: usize) -> SlotState {
        let was = self.map.free(index);
        if was == SlotState::Live {
            // Clear-then-decrement: between the two, `in_use` overcounts,
            // which only ever errs toward denying an allocation. A live slot
            // guarantees the low half is ≥ 1, so the subtraction cannot
            // borrow into the packed alloc counter.
            self.tickets.fetch_sub(1, Ordering::Relaxed);
        }
        was
    }

    /// Whether `index` is currently live (reserved slots are not).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[must_use]
    #[inline]
    pub fn is_live(&self, index: usize) -> bool {
        self.map.is_live(index)
    }

    /// Whether `index` is occupied (live or reserved).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[must_use]
    #[inline]
    pub fn is_occupied(&self, index: usize) -> bool {
        self.map.is_occupied(index)
    }

    /// Iterates the indices of occupied slots (live or reserved) — the
    /// placement set the separation statistics are computed over, matching
    /// the locked stack where reservations also set the partition bit.
    pub fn occupied_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.map.iter_occupied()
    }

    /// Iterates the indices of live slots only.
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.map.iter_live()
    }

    /// Number of magazine-reserved (occupied but not live) slots.
    #[must_use]
    pub fn reserved_count(&self) -> usize {
        self.map.reserved_count()
    }

    /// Mean free gap between consecutive occupied slots; see
    /// [`Partition::mean_live_gap`]. Computed over occupied slots so the
    /// statistic is unchanged from the locked stack (where a reservation
    /// also set the placement bit).
    #[must_use]
    pub fn mean_live_gap(&self) -> Option<f64> {
        let occupied: Vec<usize> = self.map.iter_occupied().collect();
        if occupied.len() < 2 {
            return None;
        }
        let gaps: usize = occupied.windows(2).map(|w| w[1] - w[0] - 1).sum();
        Some(gaps as f64 / (occupied.len() - 1) as f64)
    }

    /// Lifetime probe statistics: `(allocations, total probes)`. Reads are
    /// relaxed; exact at quiescence (each successful allocation's probes are
    /// added as one batch). The allocation count lives in the high half of
    /// the packed ticket word, so it is 32-bit telemetry (wraps mod 2³²) —
    /// the price of the one-RMW ticket fast path.
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        (
            self.tickets.load(Ordering::Relaxed) >> TICKET_ALLOC_SHIFT,
            self.probes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn part_seeded(cap: usize, thresh: usize, seed: u64) -> Partition {
        Partition::new(SizeClass::from_index(0), cap, thresh, seed)
    }

    fn part(cap: usize, thresh: usize) -> Partition {
        part_seeded(cap, thresh, 0xDEED)
    }

    #[test]
    fn alloc_until_threshold() {
        let mut p = part_seeded(64, 32, 1);
        let mut seen = HashSet::new();
        for _ in 0..32 {
            let idx = p.alloc().expect("below threshold");
            assert!(seen.insert(idx), "duplicate slot handed out");
            assert!(idx < 64);
        }
        assert!(p.at_threshold());
        assert_eq!(p.alloc(), None, "at threshold: no more memory");
        assert_eq!(p.in_use(), 32);
    }

    #[test]
    fn free_returns_slot_for_reuse() {
        let mut p = part_seeded(16, 8, 2);
        let idx = p.alloc().unwrap();
        assert!(p.is_live(idx));
        assert!(p.free(idx));
        assert!(!p.is_live(idx));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn double_free_is_ignored() {
        let mut p = part_seeded(16, 8, 3);
        let idx = p.alloc().unwrap();
        assert!(p.free(idx));
        assert!(!p.free(idx), "second free must be ignored");
        assert_eq!(p.in_use(), 0, "accounting unchanged by double free");
    }

    #[test]
    fn invalid_free_of_never_allocated_slot_ignored() {
        let mut p = part(16, 8);
        assert!(!p.free(5));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn fullness_tracks_in_use() {
        let mut p = part_seeded(64, 32, 4);
        assert_eq!(p.fullness(), 0.0);
        for _ in 0..16 {
            p.alloc();
        }
        assert!((p.fullness() - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn expected_probes_near_formula() {
        // M = 2 ⇒ the heap is at most half full ⇒ E[probes] ≤ 2; measured
        // over a region driven to its threshold, the mean probe count from
        // an occupancy ramping 0 → 1/2 must be well under 2.
        let mut p = part_seeded(4096, 2048, 5);
        while p.alloc().is_some() {}
        let (allocs, probes) = p.probe_stats();
        assert_eq!(allocs, 2048);
        let mean = probes as f64 / allocs as f64;
        assert!(
            mean > 1.0 && mean < 2.0,
            "mean probes {mean} outside (1, 2) for ramp to half full"
        );
    }

    #[test]
    fn probes_at_steady_state_half_full() {
        // Hold the region exactly at threshold−1 and measure steady-state
        // probing: should approach 1/(1 − 1/M) = 2 for M = 2.
        let mut p = part_seeded(4096, 2048, 6);
        let mut victim_rng = Mwc::seeded(60);
        for _ in 0..2047 {
            p.alloc();
        }
        let (a0, p0) = p.probe_stats();
        let mut freed: Vec<usize> = Vec::new();
        for _ in 0..20_000 {
            let idx = p.alloc().unwrap();
            freed.push(idx);
            let victim = freed.swap_remove(victim_rng.below(freed.len()));
            p.free(victim);
        }
        let (a1, p1) = p.probe_stats();
        let mean = (p1 - p0) as f64 / (a1 - a0) as f64;
        assert!(
            (mean - 2.0).abs() < 0.15,
            "steady-state probes {mean}, expected ≈ 2"
        );
    }

    #[test]
    fn mean_gap_none_when_sparse() {
        let mut p = part_seeded(64, 32, 7);
        assert_eq!(p.mean_live_gap(), None);
        p.alloc();
        assert_eq!(p.mean_live_gap(), None);
        p.alloc();
        assert!(p.mean_live_gap().is_some());
    }

    #[test]
    fn grow_preserves_live_slots() {
        let mut p = part_seeded(32, 16, 8);
        let mut live = HashSet::new();
        for _ in 0..16 {
            live.insert(p.alloc().unwrap());
        }
        assert!(p.at_threshold());
        p.grow(64, 32);
        assert!(!p.at_threshold());
        let after: HashSet<usize> = p.live_slots().collect();
        assert_eq!(after, live);
        // Freshly unlocked capacity is allocatable.
        assert!(p.alloc().is_some());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        part(32, 16).grow(16, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn new_rejects_threshold_above_capacity() {
        part(8, 9);
    }

    fn atomic_seeded(cap: usize, thresh: usize, seed: u64) -> AtomicPartition {
        AtomicPartition::new(SizeClass::from_index(0), cap, thresh, seed)
    }

    #[test]
    fn atomic_matches_locked_partition_serially() {
        // The determinism contract: single-threaded, the lock-free partition
        // replays the locked one bit for bit — placements, accounting, and
        // probe statistics all identical for the same seed.
        let mut locked = part_seeded(4096, 2048, 0xA70A1C);
        let atomic = atomic_seeded(4096, 2048, 0xA70A1C);
        let mut victim_rng = Mwc::seeded(99);
        let mut live: Vec<usize> = Vec::new();
        for step in 0..20_000 {
            if live.is_empty() || victim_rng.chance(0.6) {
                let a = locked.alloc();
                let b = atomic.alloc();
                assert_eq!(a, b, "placement diverged at step {step}");
                if let Some(idx) = a {
                    live.push(idx);
                }
            } else {
                let victim = live.swap_remove(victim_rng.below(live.len()));
                assert!(locked.free(victim));
                assert_eq!(atomic.free(victim), SlotState::Live);
            }
            assert_eq!(locked.in_use(), atomic.in_use());
        }
        assert_eq!(locked.probe_stats(), atomic.probe_stats());
        let a: Vec<usize> = locked.live_slots().collect();
        let b: Vec<usize> = atomic.occupied_slots().collect();
        assert_eq!(a, b);
        assert_eq!(locked.mean_live_gap(), atomic.mean_live_gap());
    }

    #[test]
    fn atomic_free_validation() {
        let p = atomic_seeded(64, 32, 5);
        let idx = p.alloc().expect("below threshold");
        assert!(p.is_live(idx));
        assert_eq!(p.free(idx), SlotState::Live);
        assert!(!p.is_live(idx));
        assert_eq!(p.free(idx), SlotState::Free, "double free ignored");
        assert_eq!(p.in_use(), 0, "accounting unchanged by double free");
        let never = (idx + 1) % 64;
        assert_eq!(p.free(never), SlotState::Free, "invalid free ignored");
    }

    #[test]
    fn atomic_reserve_commit_release_lifecycle() {
        let p = atomic_seeded(64, 32, 6);
        let r = p.reserve_one().expect("below threshold");
        assert!(!p.is_live(r), "reserved is not live");
        assert!(p.is_occupied(r));
        assert_eq!(p.in_use(), 1, "reservations count toward 1/M");
        assert_eq!(p.free(r), SlotState::Reserved, "free of reserved ignored");
        p.commit(r);
        assert!(p.is_live(r));
        assert_eq!(p.free(r), SlotState::Live);
        assert_eq!(p.in_use(), 0);
        // Release path: reservation returned without ever going live.
        let r2 = p.reserve_one().unwrap();
        assert!(p.release_reservation(r2));
        assert!(!p.release_reservation(r2));
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.occupied_slots().count(), 0);
    }

    #[test]
    fn reserve_batch_matches_sequential_reserve_one() {
        // Same seed, two partitions: one batched request must produce the
        // same slots in the same draw order, with identical ticket and
        // probe/alloc accounting, as sequential single reservations.
        let one = atomic_seeded(128, 64, 0xBA7C);
        let batch = atomic_seeded(128, 64, 0xBA7C);
        let singles: Vec<usize> = (0..8).map(|_| one.reserve_one().unwrap()).collect();
        let mut out = [usize::MAX; 8];
        assert_eq!(batch.reserve_batch(&mut out), 8);
        assert_eq!(out.to_vec(), singles);
        assert_eq!(batch.in_use(), one.in_use());
        assert_eq!(batch.probe_stats(), one.probe_stats());
    }

    #[test]
    fn reserve_batch_clamps_to_threshold_and_frees_batch_reconcile() {
        let p = atomic_seeded(64, 5, 0x0B47);
        let mut out = [usize::MAX; 8];
        assert_eq!(p.reserve_batch(&mut out), 5, "clamped at the 1/M cap");
        assert_eq!(p.in_use(), 5, "overshoot tickets returned");
        assert_eq!(p.reserve_batch(&mut out), 0, "at threshold");
        assert_eq!(p.in_use(), 5);
        for &i in &out[..5] {
            p.commit(i);
        }
        // Batch free: 5 live slots, one double (ignored), one never
        // allocated (ignored).
        let never = (0..64).find(|i| !p.is_occupied(*i)).unwrap();
        let mut to_free: Vec<usize> = out[..5].to_vec();
        to_free.push(out[0]);
        to_free.push(never);
        assert_eq!(p.free_batch(&to_free), (5, 2));
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.occupied_slots().count(), 0);
    }

    #[test]
    fn atomic_threshold_ticket_is_exact_under_contention() {
        // 4 threads hammer a small region far past its cap; the ticket
        // protocol must never admit more than `threshold` occupants and must
        // reconcile exactly after a full drain.
        use std::sync::Arc;
        let p = Arc::new(atomic_seeded(256, 128, 0xCA5));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let mut rng = Mwc::seeded(t as u64 + 1);
                    let mut mine: Vec<usize> = Vec::new();
                    for _ in 0..5_000 {
                        if mine.is_empty() || rng.chance(0.55) {
                            if let Some(idx) = p.alloc() {
                                assert!(p.in_use() <= p.threshold(), "cap breached");
                                mine.push(idx);
                            }
                        } else {
                            let victim = mine.swap_remove(rng.below(mine.len()));
                            assert_eq!(p.free(victim), SlotState::Live);
                        }
                    }
                    for idx in mine {
                        assert_eq!(p.free(idx), SlotState::Live);
                    }
                });
            }
        });
        assert_eq!(p.in_use(), 0, "tickets reconcile after drain");
        assert_eq!(p.occupied_slots().count(), 0);
        let (allocs, probes) = p.probe_stats();
        assert!(probes >= allocs, "each allocation costs at least one probe");
    }

    #[test]
    fn elastic_partition_grows_in_place() {
        let p = AtomicPartition::new_elastic(SizeClass::from_index(0), 64, 8, 4, 0xE1A);
        assert_eq!(p.capacity(), 8);
        assert_eq!(p.max_capacity(), 64);
        assert_eq!(p.threshold(), 4);
        let mut held = Vec::new();
        for _ in 0..4 {
            let idx = p.alloc().expect("below threshold");
            assert!(idx < 8, "draws confined to the active range");
            held.push(idx);
        }
        assert_eq!(p.alloc(), None, "at the initial 1/M cap");
        p.grow_to(16, 8);
        assert_eq!(p.capacity(), 16);
        assert_eq!(p.threshold(), 8);
        for &idx in &held {
            assert!(p.is_live(idx), "growth never moves a live slot");
        }
        for _ in 0..4 {
            let idx = p.alloc().expect("grown capacity is allocatable");
            assert!(idx < 16);
            held.push(idx);
        }
        assert_eq!(p.alloc(), None, "at the grown 1/M cap");
        let (allocs, probes) = p.probe_stats();
        assert_eq!(allocs, 8, "denied tickets leave no alloc telemetry");
        assert!(probes >= allocs);
        for idx in held {
            assert_eq!(p.free(idx), SlotState::Live);
        }
        assert_eq!(p.in_use(), 0, "tickets reconcile across growth");
    }

    #[test]
    fn elastic_partition_matches_fixed_twin_at_full_size() {
        // An elastic partition grown to max before any traffic draws the
        // exact sequence of a fixed partition: growth itself consumes no
        // RNG state.
        let fixed = atomic_seeded(256, 128, 0x90F7);
        let elastic = AtomicPartition::new_elastic(SizeClass::from_index(0), 256, 4, 2, 0x90F7);
        elastic.grow_to(256, 128);
        for _ in 0..128 {
            assert_eq!(fixed.alloc(), elastic.alloc());
        }
        assert_eq!(fixed.probe_stats(), elastic.probe_stats());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn atomic_grow_rejects_shrinking() {
        let p = AtomicPartition::new_elastic(SizeClass::from_index(0), 64, 32, 16, 1);
        p.grow_to(16, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn atomic_grow_rejects_overflowing_the_map() {
        let p = AtomicPartition::new_elastic(SizeClass::from_index(0), 64, 32, 16, 1);
        p.grow_to(128, 64);
    }

    proptest! {
        /// No two live allocations ever share a slot, and accounting matches
        /// the bitmap exactly under arbitrary interleavings.
        #[test]
        fn no_overlap_and_consistent_accounting(
            seed in any::<u64>(),
            ops in proptest::collection::vec(any::<bool>(), 1..400),
        ) {
            let mut p = part_seeded(256, 128, seed);
            let mut rng = Mwc::seeded(seed);
            let mut model: Vec<usize> = Vec::new();
            for op in ops {
                if op || model.is_empty() {
                    if let Some(idx) = p.alloc() {
                        prop_assert!(!model.contains(&idx), "slot {} double-booked", idx);
                        model.push(idx);
                    } else {
                        prop_assert!(p.at_threshold());
                    }
                } else {
                    let victim = model.swap_remove(rng.below(model.len()));
                    prop_assert!(p.free(victim));
                }
                prop_assert_eq!(p.in_use(), model.len());
                let bitmap_live: HashSet<usize> = p.live_slots().collect();
                let model_live: HashSet<usize> = model.iter().copied().collect();
                prop_assert_eq!(bitmap_live, model_live);
            }
        }

        /// Freeing everything returns the partition to pristine state.
        #[test]
        fn drain_restores_empty(seed in any::<u64>(), n in 1usize..100) {
            let mut p = part_seeded(256, 128, seed);
            let mut live = Vec::new();
            for _ in 0..n {
                if let Some(idx) = p.alloc() {
                    live.push(idx);
                }
            }
            for idx in live {
                prop_assert!(p.free(idx));
            }
            prop_assert_eq!(p.in_use(), 0);
            prop_assert_eq!(p.live_slots().count(), 0);
        }
    }
}
