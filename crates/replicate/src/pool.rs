//! Warm replica-set pool: pre-spawned, pre-seeded replica sets.
//!
//! `BENCH_9.json` put the TCP front end's per-connection cost at ~3.5 ms
//! (`proxy_conn_latency`), dominated by the fork/exec of N replicas at
//! accept time. A [`Pool`] moves that work off the accept path: complete
//! N-replica [`Session`]s — each member with its own distinct
//! `DIEHARD_SEED`, the `--preload` env applied, and non-blocking pipes
//! already set up — are spawned *ahead of demand* and parked. An accepted
//! connection then takes a ready set in O(1) ([`Pool::take`]) and the pool
//! refills asynchronously toward its depth target, at most one spawn per
//! reactor tick ([`Pool::refill_step`]).
//!
//! Three invariants make pooling invisible to everything above it:
//!
//! * **Seed discipline** — a pooled set draws its seeds from *exactly* the
//!   stream the cold path would have used (the same
//!   `resolve_seeds(config)` call, one per set, in spawn order, FIFO
//!   handout), so for a fixed master seed the vote outcomes and
//!   per-replica seed assignment are bit-identical with and without the
//!   pool. Pinned by `tests/pool.rs`.
//! * **Never hand out the dead** — a replica that exits while parked makes
//!   its whole set worthless (the vote would start a member down). Parked
//!   stdouts are registered with the transport's reactor
//!   ([`Pool::register_interest`]); a `POLLHUP` or an exited member
//!   condemns the set ([`Pool::service`]), which is reaped and counted in
//!   [`PoolStats::reaped_idle`] — and [`Pool::take`] re-probes at handoff
//!   time as a last line of defense.
//! * **No spin on a broken command** — a missing or crash-looping target
//!   binary must not turn the refill loop into a 100%-CPU fork bomb.
//!   Spawns are capped at one per tick, and every bad event (spawn
//!   failure *or* a set dying while parked) doubles an exponential
//!   tick backoff (capped), logged once per bad streak. A successful
//!   handoff resets the streak.
//!
//! Depth 0 (the default) disables pre-spawning entirely:
//! [`Pool::acquire`] then always cold-spawns through the byte-identical
//! legacy path.

use crate::session::{resolve_seeds, Session, SessionInput};
use crate::{reactor, LaunchConfig};
use std::collections::VecDeque;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Backoff ceiling, in reactor ticks (idle ticks are ~100 ms in the proxy,
/// so the worst-case retry interval is a handful of seconds).
const MAX_BACKOFF_TICKS: u32 = 64;

/// Lifetime counters for one pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Replica sets pre-spawned into the pool (warm spawns only).
    pub spawned: u64,
    /// Warm sets handed to connections — pool hits.
    pub handed_out: u64,
    /// Parked sets reaped because a member died before handoff.
    pub reaped_idle: u64,
    /// Sessions spawned on demand because the pool was empty or disabled —
    /// pool misses (`--pool 0` makes every connection one of these).
    pub cold_spawns: u64,
    /// Warm spawn attempts that failed outright (missing binary, fd
    /// limits); each failure feeds the backoff.
    pub spawn_failures: u64,
}

/// One parked, ready-to-hand-out replica set.
#[derive(Debug)]
struct Parked {
    /// Stable identity for reactor tokens — indices into the queue would go
    /// stale the moment a take/reap reshuffles it mid-round.
    id: u64,
    session: Session,
    /// Idle-liveness polling enabled. Cleared when the parked set shows
    /// stdout activity while every member is still alive (a startup
    /// banner): the bytes stay queued in the kernel pipe for the eventual
    /// owner, and deregistering stops the level-triggered `POLLIN` from
    /// spinning the reactor.
    watch: bool,
}

/// A warm pool of pre-spawned replica [`Session`]s (see module docs).
#[derive(Debug)]
pub struct Pool {
    config: LaunchConfig,
    target: usize,
    idle: VecDeque<Parked>,
    next_set_id: u64,
    stats: PoolStats,
    /// Published copy of `idle.len()` for observers on other threads
    /// (benches spin on it to guarantee a warm hit before timing).
    gauge: Arc<AtomicUsize>,
    /// Ticks to skip before the next spawn attempt.
    backoff_ticks: u32,
    /// Bad events (spawn failure or parked death) since the last handoff.
    consecutive_bad: u32,
    /// The current bad streak has been logged; reset on handoff.
    streak_logged: bool,
}

impl Pool {
    /// A pool that pre-spawns up to `target` replica sets of
    /// `config.command`. Depth 0 never pre-spawns — [`acquire`]
    /// (`Self::acquire`) then always takes the cold path.
    ///
    /// # Errors
    ///
    /// Rejects an invalid `config.chunk` up front (the same validation a
    /// cold spawn would apply later).
    pub fn new(config: LaunchConfig, target: usize) -> io::Result<Self> {
        let _ = config.validated_chunk()?;
        Ok(Self {
            config,
            target,
            idle: VecDeque::new(),
            next_set_id: 0,
            stats: PoolStats::default(),
            gauge: Arc::new(AtomicUsize::new(0)),
            backoff_ticks: 0,
            consecutive_bad: 0,
            streak_logged: false,
        })
    }

    /// Changes the depth target. Shrinking does not reap already-parked
    /// sets — they drain through normal handoffs.
    pub fn set_target(&mut self, target: usize) {
        self.target = target;
    }

    /// The configured depth target.
    #[must_use]
    pub fn target(&self) -> usize {
        self.target
    }

    /// How many warm sets are parked right now.
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.len()
    }

    /// The lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// A shared handle on the parked-set count, updated on every change.
    /// Lets another thread (a bench, the pool smoke test) wait for warmth
    /// without locking the pool.
    #[must_use]
    pub fn fill_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.gauge)
    }

    /// Whether the next reactor wait should return immediately so
    /// [`refill_step`](Self::refill_step) can run again: below target and
    /// not backing off. Transports use this to pick their poll timeout.
    #[must_use]
    pub fn wants_spawn(&self) -> bool {
        self.idle.len() < self.target && self.backoff_ticks == 0
    }

    fn sync_gauge(&self) {
        self.gauge.store(self.idle.len(), Ordering::Release);
    }

    /// One bad event (spawn failure or parked death): grow the backoff and
    /// log the streak once.
    fn note_bad(&mut self, what: &str) {
        self.consecutive_bad = self.consecutive_bad.saturating_add(1);
        self.backoff_ticks = (1u32 << self.consecutive_bad.min(6)).min(MAX_BACKOFF_TICKS);
        if !self.streak_logged {
            self.streak_logged = true;
            eprintln!(
                "diehard pool: {what}; backing off (command: {:?})",
                self.config.command.first().map_or("", |s| s.as_str())
            );
        }
    }

    /// Spawns one complete replica set exactly as the cold path would:
    /// same seed stream, same env, same non-blocking pipe setup.
    fn spawn_set(&mut self) -> io::Result<Session> {
        let seeds = resolve_seeds(&self.config)?;
        Session::spawn(&self.config, &seeds, SessionInput::Streamed)
    }

    /// One refill tick: spawn at most one set toward the target. Returns
    /// whether a set was spawned. A tick spent below target in backoff
    /// counts the backoff down instead of spawning; a failed spawn is
    /// recorded ([`PoolStats::spawn_failures`]) and grows the backoff.
    pub fn refill_step(&mut self) -> bool {
        if self.idle.len() >= self.target {
            return false;
        }
        if self.backoff_ticks > 0 {
            self.backoff_ticks -= 1;
            return false;
        }
        match self.spawn_set() {
            Ok(session) => {
                let id = self.next_set_id;
                self.next_set_id += 1;
                self.idle.push_back(Parked {
                    id,
                    session,
                    watch: true,
                });
                self.stats.spawned += 1;
                self.sync_gauge();
                true
            }
            Err(e) => {
                self.stats.spawn_failures += 1;
                self.note_bad(&format!("warm spawn failed ({e})"));
                false
            }
        }
    }

    /// Fills the pool synchronously: refill until the target is reached or
    /// a spawn fails (the failure is recorded and backs off as usual — the
    /// caller's next [`acquire`](Self::acquire) surfaces the error on the
    /// cold path). The pipe launcher primes its warm start with this.
    pub fn prime(&mut self) {
        while self.refill_step() {}
    }

    /// Registers every *watched* parked set's stdout descriptors with the
    /// transport's reactor (`POLLIN`), keyed by the set's stable id for
    /// [`service`](Self::service).
    pub fn register_interest(&self, mut register: impl FnMut(RawFd, libc::c_short, u64)) {
        for p in &self.idle {
            if p.watch {
                p.session
                    .park_interest(|fd| register(fd, libc::POLLIN, p.id));
            }
        }
    }

    /// Dispatches a readiness event on a parked set. `POLLHUP`/`POLLERR`
    /// or an exited member condemns the whole set — it is aborted, counted
    /// in [`PoolStats::reaped_idle`], and never handed out. Plain `POLLIN`
    /// from a set whose members are all alive is early output (a startup
    /// banner): the set stays parked (bytes wait in the kernel pipe for
    /// its eventual owner) but stops being idle-polled so the
    /// level-triggered readiness cannot spin the reactor. Unknown ids
    /// (set already taken or reaped this round) are ignored.
    pub fn service(&mut self, set_id: u64, revents: libc::c_short) {
        let Some(pos) = self.idle.iter().position(|p| p.id == set_id) else {
            return;
        };
        let dead = revents & (libc::POLLHUP | libc::POLLERR) != 0
            || self.idle[pos].session.any_member_exited();
        if dead {
            let mut parked = self.idle.remove(pos).expect("position just found");
            parked.session.abort();
            self.stats.reaped_idle += 1;
            self.sync_gauge();
            self.note_bad("parked replica exited before handoff; set reaped");
        } else {
            self.idle[pos].watch = false;
        }
    }

    /// Last-instant liveness probe at handoff: any exited member, or
    /// `POLLHUP`/`POLLERR` already pending on a parked stdout.
    fn set_is_dead(session: &mut Session) -> bool {
        if session.any_member_exited() {
            return true;
        }
        let mut hup = false;
        session.park_interest(|fd| {
            if let Ok(rev) = reactor::poll_fd(fd, libc::POLLIN, 0) {
                if rev & (libc::POLLHUP | libc::POLLERR) != 0 {
                    hup = true;
                }
            }
        });
        hup
    }

    /// Takes the oldest warm set, or `None` when the pool is empty (the
    /// caller falls back to a cold spawn). Sets found dead at handoff are
    /// reaped here — a dead set is *never* handed out — and the next one
    /// is tried. A successful handoff resets the bad-event backoff.
    pub fn take(&mut self) -> Option<Session> {
        while let Some(mut parked) = self.idle.pop_front() {
            if Self::set_is_dead(&mut parked.session) {
                parked.session.abort();
                self.stats.reaped_idle += 1;
                self.sync_gauge();
                self.note_bad("parked replica exited before handoff; set reaped");
                continue;
            }
            self.stats.handed_out += 1;
            self.consecutive_bad = 0;
            self.backoff_ticks = 0;
            self.streak_logged = false;
            self.sync_gauge();
            return Some(parked.session);
        }
        None
    }

    /// A ready session, warm if possible: [`take`](Self::take) on a hit,
    /// otherwise a cold spawn through the exact legacy path (counted in
    /// [`PoolStats::cold_spawns`]). With depth 0 this *is* the legacy
    /// path plus one counter.
    ///
    /// # Errors
    ///
    /// Cold-spawn failures propagate exactly as they always have
    /// (seed-count validation, process spawn, `fcntl`).
    pub fn acquire(&mut self) -> io::Result<Session> {
        if let Some(session) = self.take() {
            return Ok(session);
        }
        self.stats.cold_spawns += 1;
        let seeds = resolve_seeds(&self.config)?;
        Session::spawn(&self.config, &seeds, SessionInput::Streamed)
    }

    /// The one-line stats summary transports print (`--pool` enables it):
    /// warm hits are `handed_out`, misses are `cold`.
    #[must_use]
    pub fn stats_line(&self) -> String {
        format!(
            "pool depth={} idle={} spawned={} handed_out={} reaped_idle={} spawn_failures={} cold={}",
            self.target,
            self.idle.len(),
            self.stats.spawned,
            self.stats.handed_out,
            self.stats.reaped_idle,
            self.stats.spawn_failures,
            self.stats.cold_spawns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_config(depth_seeds: &[u64]) -> LaunchConfig {
        let mut cfg = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
        cfg.seeds = depth_seeds.to_vec();
        cfg
    }

    #[test]
    fn depth_zero_acquire_is_always_cold() {
        let mut pool = Pool::new(cat_config(&[1, 2, 3]), 0).unwrap();
        assert!(!pool.wants_spawn());
        assert!(!pool.refill_step());
        let mut s = pool.acquire().unwrap();
        assert_eq!(s.seeds(), &[1, 2, 3]);
        s.abort();
        assert_eq!(pool.stats().cold_spawns, 1);
        assert_eq!(pool.stats().spawned, 0);
        assert_eq!(pool.stats().handed_out, 0);
    }

    #[test]
    fn refill_parks_up_to_target_and_take_is_fifo_warm() {
        let mut pool = Pool::new(cat_config(&[7, 8, 9]), 2).unwrap();
        let gauge = pool.fill_gauge();
        assert!(pool.wants_spawn());
        assert!(pool.refill_step());
        assert!(pool.refill_step());
        assert!(!pool.refill_step(), "at target: no further spawns");
        assert_eq!(pool.idle_len(), 2);
        assert_eq!(gauge.load(Ordering::Acquire), 2);
        let mut s = pool.take().expect("warm set parked");
        assert_eq!(
            s.seeds(),
            &[7, 8, 9],
            "pooled seeds match the config stream"
        );
        s.abort();
        assert_eq!(gauge.load(Ordering::Acquire), 1);
        assert_eq!(pool.stats().handed_out, 1);
        assert_eq!(pool.stats().spawned, 2);
        assert_eq!(pool.stats().cold_spawns, 0);
    }

    #[test]
    fn spawn_failure_backs_off_and_logs_not_spins() {
        let cfg = LaunchConfig::new(3, vec!["/nonexistent/diehard-target".into()], Vec::new());
        let mut pool = Pool::new(cfg, 2).unwrap();
        let mut spawned = 0;
        // Many ticks: without backoff every tick would attempt a spawn.
        for _ in 0..100 {
            if pool.refill_step() {
                spawned += 1;
            }
        }
        assert_eq!(spawned, 0);
        assert_eq!(pool.idle_len(), 0);
        let failures = pool.stats().spawn_failures;
        assert!(failures >= 1, "the failure must be counted");
        assert!(
            failures <= 8,
            "backoff must cap attempts (got {failures} in 100 ticks)"
        );
    }

    #[test]
    fn dead_parked_set_is_reaped_not_handed_out() {
        // Replicas that exit immediately: the set dies while parked.
        let cfg = LaunchConfig::new(
            3,
            vec!["/bin/sh".into(), "-c".into(), "exit 0".into()],
            Vec::new(),
        );
        let mut pool = Pool::new(cfg, 1).unwrap();
        assert!(pool.refill_step());
        // Wait for the members to actually exit.
        std::thread::sleep(std::time::Duration::from_millis(200));
        assert!(pool.take().is_none(), "a dead set must never be handed out");
        assert_eq!(pool.stats().reaped_idle, 1);
        assert_eq!(pool.stats().handed_out, 0);
    }

    #[test]
    fn service_reaps_on_hup_and_unwatches_on_banner() {
        let mut pool = Pool::new(cat_config(&[1, 2, 3]), 1).unwrap();
        assert!(pool.refill_step());
        let mut ids = Vec::new();
        pool.register_interest(|_fd, ev, id| {
            assert_eq!(ev, libc::POLLIN);
            ids.push(id);
        });
        assert_eq!(ids.len(), 3, "one stdout per replica, all watched");
        let id = ids[0];
        // Plain POLLIN with everyone alive = startup banner: stays parked,
        // stops being watched.
        pool.service(id, libc::POLLIN);
        assert_eq!(pool.idle_len(), 1);
        let mut watched = 0;
        pool.register_interest(|_, _, _| watched += 1);
        assert_eq!(watched, 0, "banner set must drop out of idle polling");
        // POLLHUP condemns the set.
        pool.service(id, libc::POLLHUP);
        assert_eq!(pool.idle_len(), 0);
        assert_eq!(pool.stats().reaped_idle, 1);
        // Unknown id after the reap: no-op.
        pool.service(id, libc::POLLHUP);
        assert_eq!(pool.stats().reaped_idle, 1);
    }
}
