//! §4.2 probe-cost bench: allocation cost as a function of region fullness
//! (the `1/(1 − fullness)` expectation) and of the expansion factor `M` —
//! the ablation behind DieHard's space/time dial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_core::partition::Partition;
use diehard_core::size_class::SizeClass;
use std::hint::black_box;

const CAPACITY: usize = 1 << 14;

fn bench_probe_by_fullness(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_by_fullness");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for denom in [8usize, 4, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("1/{denom}_full")),
            &denom,
            |b, &denom| {
                let mut part = Partition::new(SizeClass::from_index(0), CAPACITY, CAPACITY, 7);
                for _ in 0..CAPACITY / denom {
                    part.alloc();
                }
                // Steady-state alloc/free pair at this fullness.
                b.iter(|| {
                    let idx = part.alloc().expect("has space");
                    part.free(black_box(idx));
                });
            },
        );
    }
    group.finish();
}

fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    use diehard_core::adaptive::AdaptiveHeap;
    use diehard_core::config::HeapConfig;
    use diehard_core::engine::HeapCore;

    let mut group = c.benchmark_group("adaptive_vs_fixed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("fixed_heap_1000_allocs", |b| {
        b.iter(|| {
            let mut h = HeapCore::new(HeapConfig::default(), 1).unwrap();
            for i in 0..1000usize {
                black_box(h.alloc(8 + (i % 512)));
            }
        });
    });
    group.bench_function("adaptive_heap_1000_allocs", |b| {
        b.iter(|| {
            let mut h = AdaptiveHeap::new(HeapConfig::default(), 1).unwrap();
            for i in 0..1000usize {
                black_box(h.alloc(8 + (i % 512)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probe_by_fullness, bench_adaptive_vs_fixed);
criterion_main!(benches);
