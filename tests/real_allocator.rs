//! Integration tests for the *real* mmap-backed DieHard allocator and the
//! subprocess replication launcher — the production-facing artifacts.

#![cfg(unix)]

use diehard::core::global::DieHard;
use diehard::core::HeapConfig;
use std::alloc::{GlobalAlloc, Layout};

fn test_heap(seed: u64) -> DieHard {
    // 1 MB regions via an instance-scoped config: no process-global env
    // mutation, so parallel test threads stay isolated.
    DieHard::with_config(HeapConfig::default(), seed)
}

#[test]
fn churn_through_all_size_classes() {
    let heap = test_heap(1);
    let mut ptrs = Vec::new();
    for shift in 0..12u32 {
        let size = 8usize << shift;
        for _ in 0..4 {
            let p = heap.malloc(size);
            assert!(!p.is_null(), "size {size}");
            // Touch first and last byte of the rounded object.
            // SAFETY: p is a live object of at least `size` bytes.
            unsafe {
                *p = 0xAB;
                *p.add(size - 1) = 0xCD;
            }
            ptrs.push(p);
        }
    }
    assert_eq!(heap.live_objects(), ptrs.len());
    for p in ptrs {
        heap.free(p);
    }
    assert_eq!(heap.live_objects(), 0);
}

#[test]
fn mixed_rust_collections_on_diehard() {
    // Instance-level (not #[global_allocator]) exercise of the Layout API.
    let heap = test_heap(2);
    for align in [1usize, 2, 4, 8, 16, 64, 256, 4096] {
        let layout = Layout::from_size_align(align.max(24), align).unwrap();
        // SAFETY: valid non-zero layout; dealloc receives the same layout.
        unsafe {
            let p = heap.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(p as usize % align, 0);
            p.write_bytes(0x11, layout.size());
            heap.dealloc(p, layout);
        }
    }
}

#[test]
fn erroneous_frees_never_corrupt_live_data() {
    let heap = test_heap(3);
    let victim = heap.malloc(64);
    // SAFETY: victim is live for 64 bytes.
    unsafe { victim.write_bytes(0x77, 64) };
    // A storm of bogus frees.
    for delta in [1usize, 7, 9, 33, 63] {
        // SAFETY: stays within the live object.
        heap.free(unsafe { victim.add(delta) });
    }
    heap.free(0x1000 as *mut u8);
    heap.free(usize::MAX as *mut u8);
    let freed_then_double = heap.malloc(64);
    heap.free(freed_then_double);
    heap.free(freed_then_double);
    // The victim is untouched.
    // SAFETY: victim is still live.
    unsafe {
        for i in 0..64 {
            assert_eq!(*victim.add(i), 0x77, "byte {i}");
        }
    }
    heap.free(victim);
}

#[test]
fn large_object_lifecycle() {
    let heap = test_heap(4);
    let sizes = [17_000usize, 65_536, 300_000];
    let mut ptrs = Vec::new();
    for &size in &sizes {
        let p = heap.malloc(size);
        assert!(!p.is_null());
        // SAFETY: live for `size` bytes.
        unsafe {
            *p = 1;
            *p.add(size - 1) = 2;
        }
        ptrs.push(p);
    }
    for p in ptrs {
        heap.free(p);
        heap.free(p); // double free of an unmapped large object: ignored
    }
}

#[test]
fn seeded_heaps_reproduce_layouts() {
    let a = test_heap(99);
    let b = test_heap(99);
    let base_a = a.malloc(64) as isize;
    let base_b = b.malloc(64) as isize;
    for _ in 0..100 {
        assert_eq!(
            a.malloc(64) as isize - base_a,
            b.malloc(64) as isize - base_b
        );
    }
}

mod launcher {
    use diehard::replicate::{run_replicated, LaunchConfig};

    fn sh(script: &str) -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), script.into()]
    }

    #[test]
    fn pipeline_filters_agree() {
        let cfg = LaunchConfig::new(3, sh("wc -c"), vec![b'x'; 10_000]);
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(String::from_utf8_lossy(&exit.output).trim(), "10000");
    }

    #[test]
    fn multi_chunk_agreement_with_one_corrupt_replica() {
        // ~20 KB of output; the seed-7 replica corrupts its middle chunk.
        let mut cfg = LaunchConfig::new(
            3,
            sh(r#"
                i=0
                while [ $i -lt 600 ]; do
                    if [ $i -eq 300 ] && [ "$DIEHARD_SEED" = "7" ]; then
                        echo "CORRUPTED-LINE-FROM-A-BAD-REPLICA"
                    else
                        echo "deterministic output line $i"
                    fi
                    i=$((i+1))
                done
            "#),
            Vec::new(),
        );
        cfg.seeds = vec![1, 7, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert!(
            exit.killed.contains(&1),
            "the corrupt replica must be killed"
        );
        assert!(!String::from_utf8_lossy(&exit.output).contains("CORRUPTED"));
    }
}
