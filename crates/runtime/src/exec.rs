//! The executor: replays a [`Program`] against any simulated allocator and
//! classifies what happened.
//!
//! Correctness follows the paper's §3 definition operationally: the same
//! program is run once against the [`InfiniteHeap`](diehard_sim::InfiniteHeap)
//! oracle (where memory errors are benign by construction) and its output is
//! the ground truth. A run under any real allocator is **correct** iff it
//! completes with identical output; otherwise it crashed, hung, aborted, or
//! silently produced wrong output — the five cells of Table 1.

use crate::ops::{Op, Program};
use crate::output::Output;
use diehard_sim::{Addr, Fault, InfiniteHeap, SimAllocator};
use std::collections::HashMap;

/// How accesses are checked, selecting which §8 system family the executor
/// emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// No checking: raw C semantics (libc, GC, DieHard, Windows runs).
    #[default]
    None,
    /// Fail-stop (CCured-style): abort on the first out-of-bounds access,
    /// use-after-free, or read of uninitialized data.
    FailStop,
    /// Failure-oblivious computing: drop illegal writes, manufacture values
    /// for illegal reads, and keep going.
    Oblivious,
}

/// What a single execution did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Ran to completion; the output still needs oracle comparison.
    Completed(Output),
    /// Died on a fault (SIGSEGV / metadata-corruption crash).
    Crashed {
        /// The fault that killed the run.
        fault: Fault,
        /// Index of the op that faulted.
        at_op: usize,
    },
    /// Spun forever inside the allocator (cycled free list).
    Hung {
        /// Index of the op that hung.
        at_op: usize,
    },
    /// A fail-stop checker terminated the program deliberately.
    Aborted {
        /// Index of the offending op.
        at_op: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl RunOutcome {
    /// The output, when the run completed.
    #[must_use]
    pub fn output(&self) -> Option<&Output> {
        match self {
            RunOutcome::Completed(o) => Some(o),
            _ => None,
        }
    }
}

/// The Table 1 verdict after oracle comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Completed with oracle-identical output: correct execution (✓).
    Correct,
    /// Completed but output differs: undefined behaviour, silent corruption.
    SilentCorruption,
    /// Crashed (undefined behaviour, observable).
    Crash,
    /// Hung (undefined behaviour, observable).
    Hang,
    /// Deliberate fail-stop termination.
    Abort,
}

impl Verdict {
    /// `true` for the paper's ✓ cell.
    #[must_use]
    pub fn is_correct(self) -> bool {
        self == Verdict::Correct
    }

    /// Collapses to the paper's three Table 1 cell values:
    /// `"✓"`, `"undefined"`, or `"abort"`.
    #[must_use]
    pub fn table_cell(self) -> &'static str {
        match self {
            Verdict::Correct => "✓",
            Verdict::SilentCorruption | Verdict::Crash | Verdict::Hang => "undefined",
            Verdict::Abort => "abort",
        }
    }
}

impl core::fmt::Display for Verdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Verdict::Correct => "correct",
            Verdict::SilentCorruption => "silent corruption",
            Verdict::Crash => "crash",
            Verdict::Hang => "hang",
            Verdict::Abort => "abort",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
struct ObjState {
    addr: Option<Addr>,
    granted: usize,
    freed: bool,
    /// Initialized-byte bitmap, tracked only under a checking policy.
    init: Option<Vec<bool>>,
}

/// Executor options beyond the checking policy.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Route `Strcpy` ops through the allocator's `usable_size` bound —
    /// DieHard's replaced library functions (§4.4). The paper's §7
    /// experiments disable this to isolate randomization, so it defaults
    /// to off.
    pub bounded_strcpy: bool,
    /// Checking policy (fail-stop / failure-oblivious emulation).
    pub policy: CheckPolicy,
}

/// Replays `program` against `alloc`.
///
/// Deterministic: the same allocator state, program, and options always
/// produce the same outcome.
pub fn run_program<A: SimAllocator + ?Sized>(
    alloc: &mut A,
    program: &Program,
    options: &ExecOptions,
) -> RunOutcome {
    let mut objects: HashMap<u32, ObjState> = HashMap::new();
    let mut roots: Vec<Addr> = Vec::new();
    let mut output = Output::new();
    let policy = options.policy;
    let track_init = policy != CheckPolicy::None;

    macro_rules! fault_to_outcome {
        ($fault:expr, $at:expr) => {
            match $fault {
                Fault::Livelock => return RunOutcome::Hung { at_op: $at },
                f => {
                    return RunOutcome::Crashed {
                        fault: f,
                        at_op: $at,
                    }
                }
            }
        };
    }

    let rebuild_roots = |objects: &HashMap<u32, ObjState>, roots: &mut Vec<Addr>| {
        roots.clear();
        roots.extend(objects.values().filter_map(|s| s.addr));
    };

    for (at_op, op) in program.ops.iter().enumerate() {
        match op {
            Op::Alloc { id, size } => match alloc.malloc(*size, &roots) {
                Ok(opt) => {
                    objects.insert(
                        *id,
                        ObjState {
                            addr: opt,
                            granted: *size,
                            freed: false,
                            init: track_init.then(|| vec![false; *size]),
                        },
                    );
                    if let Some(a) = opt {
                        roots.push(a);
                    }
                }
                Err(f) => fault_to_outcome!(f, at_op),
            },
            Op::Free { id } => {
                let Some(state) = objects.get_mut(id) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                state.freed = true;
                if let Err(f) = alloc.free(addr) {
                    fault_to_outcome!(f, at_op);
                }
            }
            Op::FreeRaw { id, delta } => {
                let Some(state) = objects.get(id) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                let target = addr.wrapping_add_signed(*delta);
                if let Err(f) = alloc.free(target) {
                    fault_to_outcome!(f, at_op);
                }
            }
            Op::Forget { id } => {
                objects.remove(id);
                rebuild_roots(&objects, &mut roots);
            }
            Op::Write {
                id,
                offset,
                len,
                seed,
            } => {
                let Some(state) = objects.get_mut(id) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                let mut data: Vec<u8> = (0..*len)
                    .map(|i| Program::pattern_byte(*id, *seed, offset + i))
                    .collect();
                let mut write_len = *len;
                match policy {
                    CheckPolicy::None => {}
                    CheckPolicy::FailStop => {
                        // Freed objects stay valid: the fail-stop system is
                        // GC-backed (CCured links the BDW collector), so a
                        // dangling access hits intact memory (Table 1: ✓).
                        if offset + len > state.granted {
                            return RunOutcome::Aborted {
                                at_op,
                                reason: "out-of-bounds write",
                            };
                        }
                    }
                    CheckPolicy::Oblivious => {
                        if state.freed {
                            continue; // drop the illegal write entirely
                        }
                        write_len = (*len).min(state.granted.saturating_sub(*offset));
                        data.truncate(write_len);
                    }
                }
                if write_len > 0 {
                    if let Err(f) = alloc.memory_mut().write(addr + offset, &data) {
                        fault_to_outcome!(f, at_op);
                    }
                }
                if let Some(init) = state.init.as_mut() {
                    for i in *offset..(*offset + write_len).min(init.len()) {
                        init[i] = true;
                    }
                }
            }
            Op::WritePtr { dst, offset, src } => {
                let Some(src_addr) = objects.get(src).and_then(|s| s.addr) else {
                    continue;
                };
                let Some(state) = objects.get_mut(dst) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                match policy {
                    CheckPolicy::FailStop if offset + 8 > state.granted => {
                        return RunOutcome::Aborted {
                            at_op,
                            reason: "out-of-bounds pointer store",
                        };
                    }
                    CheckPolicy::Oblivious if state.freed || offset + 8 > state.granted => {
                        continue;
                    }
                    _ => {}
                }
                if let Err(f) = alloc.memory_mut().write_u64(addr + offset, src_addr as u64) {
                    fault_to_outcome!(f, at_op);
                }
                if let Some(init) = state.init.as_mut() {
                    for i in *offset..(offset + 8).min(init.len()) {
                        init[i] = true;
                    }
                }
            }
            Op::Read { id, offset, len } => {
                let Some(state) = objects.get(id) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                let mut buf = vec![0u8; *len];
                match policy {
                    CheckPolicy::None => {
                        if let Err(f) = alloc.memory().read(addr + offset, &mut buf) {
                            fault_to_outcome!(f, at_op);
                        }
                    }
                    CheckPolicy::FailStop => {
                        if offset + len > state.granted {
                            return RunOutcome::Aborted {
                                at_op,
                                reason: "out-of-bounds read",
                            };
                        }
                        let init = state.init.as_ref().expect("tracked under FailStop");
                        if init[*offset..offset + len].iter().any(|&b| !b) {
                            return RunOutcome::Aborted {
                                at_op,
                                reason: "uninitialized read",
                            };
                        }
                        if let Err(f) = alloc.memory().read(addr + offset, &mut buf) {
                            fault_to_outcome!(f, at_op);
                        }
                    }
                    CheckPolicy::Oblivious => {
                        // Manufacture values (zeros) for any illegal portion.
                        if !state.freed {
                            let legal = (*len).min(state.granted.saturating_sub(*offset));
                            if legal > 0
                                && alloc
                                    .memory()
                                    .read(addr + offset, &mut buf[..legal])
                                    .is_err()
                            {
                                buf[..legal].fill(0);
                            }
                        }
                    }
                }
                output.push_read(&buf);
            }
            Op::ReadThroughPtr { dst, offset, len } => {
                let Some(state) = objects.get(dst) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                let ptr = match alloc.memory().read_u64(addr + offset) {
                    Ok(v) => v as usize,
                    Err(f) => fault_to_outcome!(f, at_op),
                };
                match policy {
                    CheckPolicy::FailStop => {
                        let valid = objects.values().any(|s| {
                            s.addr
                                .is_some_and(|a| ptr >= a && ptr + len <= a + s.granted)
                        });
                        if !valid {
                            return RunOutcome::Aborted {
                                at_op,
                                reason: "invalid pointer dereference",
                            };
                        }
                    }
                    CheckPolicy::Oblivious => {
                        let valid = objects.values().any(|s| {
                            !s.freed
                                && s.addr
                                    .is_some_and(|a| ptr >= a && ptr + len <= a + s.granted)
                        });
                        if !valid {
                            output.push_read(&vec![0u8; *len]); // manufactured
                            continue;
                        }
                    }
                    CheckPolicy::None => {}
                }
                let mut buf = vec![0u8; *len];
                if let Err(f) = alloc.memory().read(ptr, &mut buf) {
                    fault_to_outcome!(f, at_op);
                }
                output.push_read(&buf);
            }
            Op::Strcpy { id, payload } => {
                let Some(state) = objects.get_mut(id) else {
                    continue;
                };
                let Some(addr) = state.addr else { continue };
                let mut data = payload.clone();
                data.push(0);
                let copy_len = if options.bounded_strcpy {
                    // DieHard's replaced strcpy: clamp to the object's true
                    // remaining space (§4.4).
                    match alloc.usable_size(addr) {
                        Some(space) => data.len().min(space),
                        None => data.len(),
                    }
                } else {
                    match policy {
                        CheckPolicy::FailStop if data.len() > state.granted => {
                            return RunOutcome::Aborted {
                                at_op,
                                reason: "strcpy overflow",
                            };
                        }
                        CheckPolicy::Oblivious => data.len().min(state.granted),
                        _ => data.len(),
                    }
                };
                if copy_len > 0 {
                    if let Err(f) = alloc.memory_mut().write(addr, &data[..copy_len]) {
                        fault_to_outcome!(f, at_op);
                    }
                }
                if let Some(init) = state.init.as_mut() {
                    for i in 0..copy_len.min(init.len()) {
                        init[i] = true;
                    }
                }
            }
            Op::Compute { units } => {
                // Deterministic busy work (LCG steps), opaque to the optimizer.
                let mut acc = u64::from(*units) | 1;
                for _ in 0..*units {
                    acc = acc
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                }
                std::hint::black_box(acc);
            }
            Op::Print { bytes } => output.push(bytes),
        }
    }
    RunOutcome::Completed(output)
}

/// Runs `program` under the infinite-heap oracle, yielding the ground-truth
/// output (§3: memory errors are benign there by construction).
///
/// # Panics
///
/// Panics if the oracle itself faults — impossible for programs whose
/// accesses stay within [`diehard_sim::infinite::OBJECT_SPACING`] of an
/// object, which all generated workloads do.
#[must_use]
pub fn oracle_output(program: &Program) -> Output {
    let mut oracle = InfiniteHeap::new();
    match run_program(&mut oracle, program, &ExecOptions::default()) {
        RunOutcome::Completed(out) => out,
        other => panic!("infinite-heap oracle cannot fail, got {other:?}"),
    }
}

/// Classifies a run against the oracle output.
#[must_use]
pub fn verdict(outcome: &RunOutcome, oracle: &Output) -> Verdict {
    match outcome {
        RunOutcome::Completed(out) if out == oracle => Verdict::Correct,
        RunOutcome::Completed(_) => Verdict::SilentCorruption,
        RunOutcome::Crashed { .. } => Verdict::Crash,
        RunOutcome::Hung { .. } => Verdict::Hang,
        RunOutcome::Aborted { .. } => Verdict::Abort,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diehard_baselines::LeaSimAllocator;
    use diehard_core::config::HeapConfig;
    use diehard_sim::DieHardSimHeap;

    fn simple_program() -> Program {
        Program::new(
            "simple",
            vec![
                Op::Print {
                    bytes: b"start".to_vec(),
                },
                Op::Alloc { id: 0, size: 64 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 64,
                    seed: 1,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 64,
                },
                Op::Alloc { id: 1, size: 200 },
                Op::Write {
                    id: 1,
                    offset: 10,
                    len: 100,
                    seed: 2,
                },
                Op::Read {
                    id: 1,
                    offset: 10,
                    len: 100,
                },
                Op::Free { id: 0 },
                Op::Forget { id: 0 },
                Op::Compute { units: 10 },
                Op::Read {
                    id: 1,
                    offset: 10,
                    len: 100,
                },
            ],
        )
    }

    #[test]
    fn clean_program_is_correct_everywhere() {
        let prog = simple_program();
        let oracle = oracle_output(&prog);
        assert!(!oracle.is_empty());

        let mut dh = DieHardSimHeap::new(HeapConfig::default(), 1).unwrap();
        let out = run_program(&mut dh, &prog, &ExecOptions::default());
        assert_eq!(verdict(&out, &oracle), Verdict::Correct);

        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &ExecOptions::default());
        assert_eq!(verdict(&out, &oracle), Verdict::Correct);

        let fail_stop = ExecOptions {
            policy: CheckPolicy::FailStop,
            ..Default::default()
        };
        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &fail_stop);
        assert_eq!(
            verdict(&out, &oracle),
            Verdict::Correct,
            "clean run must not abort"
        );
    }

    #[test]
    fn determinism() {
        let prog = simple_program();
        let mut a = DieHardSimHeap::new(HeapConfig::default(), 7).unwrap();
        let mut b = DieHardSimHeap::new(HeapConfig::default(), 7).unwrap();
        let oa = run_program(&mut a, &prog, &ExecOptions::default());
        let ob = run_program(&mut b, &prog, &ExecOptions::default());
        assert_eq!(oa, ob);
    }

    #[test]
    fn overflow_program_fail_stop_aborts() {
        // Allocated 8, writes 16: a buffer overflow.
        let prog = Program::new(
            "overflow",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 16,
                    seed: 1,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 8,
                },
            ],
        );
        let opts = ExecOptions {
            policy: CheckPolicy::FailStop,
            ..Default::default()
        };
        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &opts);
        assert!(matches!(
            out,
            RunOutcome::Aborted {
                reason: "out-of-bounds write",
                ..
            }
        ));
    }

    #[test]
    fn overflow_program_oblivious_drops_and_continues() {
        let prog = Program::new(
            "overflow",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 16,
                    seed: 1,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 8,
                },
            ],
        );
        let opts = ExecOptions {
            policy: CheckPolicy::Oblivious,
            ..Default::default()
        };
        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &opts);
        assert!(matches!(out, RunOutcome::Completed(_)));
    }

    #[test]
    fn uninit_read_fail_stop_aborts() {
        let prog = Program::new(
            "uninit",
            vec![
                Op::Alloc { id: 0, size: 32 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 16,
                    seed: 1,
                },
                Op::Read {
                    id: 0,
                    offset: 8,
                    len: 16,
                }, // bytes 16..24 uninit
            ],
        );
        let opts = ExecOptions {
            policy: CheckPolicy::FailStop,
            ..Default::default()
        };
        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &opts);
        assert!(matches!(
            out,
            RunOutcome::Aborted {
                reason: "uninitialized read",
                ..
            }
        ));
    }

    #[test]
    fn dangling_write_on_lea_corrupts_or_crashes() {
        // Free id 0, allocate id 1 (which reuses the chunk under first-fit),
        // then write through the stale pointer and read id 1's data back.
        let prog = Program::new(
            "dangling",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Alloc { id: 9, size: 64 }, // guard against coalescing
                Op::Free { id: 0 },
                Op::Alloc { id: 1, size: 64 },
                Op::Write {
                    id: 1,
                    offset: 0,
                    len: 64,
                    seed: 3,
                },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 64,
                    seed: 4,
                }, // stale!
                Op::Read {
                    id: 1,
                    offset: 0,
                    len: 64,
                },
                Op::Forget { id: 0 },
            ],
        );
        let oracle = oracle_output(&prog);
        let mut lea = LeaSimAllocator::new(64 << 20);
        let out = run_program(&mut lea, &prog, &ExecOptions::default());
        let v = verdict(&out, &oracle);
        assert_ne!(v, Verdict::Correct, "first-fit reuse must corrupt: {v:?}");
    }

    #[test]
    fn dangling_write_on_diehard_usually_masked() {
        let prog = Program::new(
            "dangling",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Free { id: 0 },
                Op::Alloc { id: 1, size: 64 },
                Op::Write {
                    id: 1,
                    offset: 0,
                    len: 64,
                    seed: 3,
                },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 64,
                    seed: 4,
                },
                Op::Read {
                    id: 1,
                    offset: 0,
                    len: 64,
                },
                Op::Forget { id: 0 },
            ],
        );
        let oracle = oracle_output(&prog);
        let mut correct = 0;
        for seed in 0..20 {
            let mut dh = DieHardSimHeap::new(HeapConfig::default(), seed).unwrap();
            let out = run_program(&mut dh, &prog, &ExecOptions::default());
            if verdict(&out, &oracle).is_correct() {
                correct += 1;
            }
        }
        // Reuse probability is 1/free-slots ≈ 1/16384 per allocation; all
        // 20 seeds masking it is overwhelmingly likely.
        assert!(correct >= 19, "only {correct}/20 masked");
    }

    #[test]
    fn null_allocation_skips_dependents() {
        // Exhaust the 16 KB class (tiny heap), then keep going: ops on the
        // failed handle are skipped, like a C program checking for NULL.
        let cfg = HeapConfig::default().with_region_bytes(32 * 1024);
        let mut dh = DieHardSimHeap::new(cfg, 3).unwrap();
        let prog = Program::new(
            "oom",
            vec![
                Op::Alloc {
                    id: 0,
                    size: 16_000,
                }, // cap = 1: serves
                Op::Alloc {
                    id: 1,
                    size: 16_000,
                }, // NULL
                Op::Write {
                    id: 1,
                    offset: 0,
                    len: 8,
                    seed: 1,
                },
                Op::Read {
                    id: 1,
                    offset: 0,
                    len: 8,
                },
                Op::Print {
                    bytes: b"done".to_vec(),
                },
            ],
        );
        let out = run_program(&mut dh, &prog, &ExecOptions::default());
        match out {
            RunOutcome::Completed(o) => assert_eq!(o.as_bytes(), b"done"),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn pointer_chasing_through_heap() {
        let prog = Program::new(
            "ptr",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Alloc { id: 1, size: 64 },
                Op::Write {
                    id: 1,
                    offset: 0,
                    len: 64,
                    seed: 9,
                },
                Op::WritePtr {
                    dst: 0,
                    offset: 0,
                    src: 1,
                },
                Op::ReadThroughPtr {
                    dst: 0,
                    offset: 0,
                    len: 64,
                },
            ],
        );
        let mut dh = DieHardSimHeap::new(HeapConfig::default(), 5).unwrap();
        let out = run_program(&mut dh, &prog, &ExecOptions::default());
        let RunOutcome::Completed(o) = out else {
            panic!("{out:?}")
        };
        // The bytes read through the pointer are id 1's pattern.
        let expect: Vec<u8> = (0..64).map(|i| Program::pattern_byte(1, 9, i)).collect();
        assert_eq!(&o.as_bytes()[..32], &expect[..32]);
    }

    #[test]
    fn corrupted_pointer_crashes_unchecked() {
        // id 0 holds a pointer; an overflow from id 2 smashes it; the read
        // through it then dereferences garbage.
        let prog = Program::new(
            "ptr-smash",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Alloc { id: 1, size: 64 },
                Op::WritePtr {
                    dst: 0,
                    offset: 0,
                    src: 1,
                },
                // Overwrite id 0's pointer slot with pattern bytes — these
                // almost never form a mapped address.
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 8,
                    seed: 0xEE,
                },
                Op::ReadThroughPtr {
                    dst: 0,
                    offset: 0,
                    len: 64,
                },
            ],
        );
        let mut lea = LeaSimAllocator::new(1 << 20);
        let out = run_program(&mut lea, &prog, &ExecOptions::default());
        assert!(
            matches!(out, RunOutcome::Crashed { .. }),
            "wild dereference expected, got {out:?}"
        );
    }

    #[test]
    fn bounded_strcpy_contains_overflowing_copy() {
        let prog = Program::new(
            "strcpy",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Alloc { id: 1, size: 8 },
                Op::Write {
                    id: 1,
                    offset: 0,
                    len: 8,
                    seed: 5,
                },
                Op::Strcpy {
                    id: 0,
                    payload: vec![b'A'; 100],
                },
                Op::Read {
                    id: 1,
                    offset: 0,
                    len: 8,
                },
            ],
        );
        let oracle = {
            // Oracle with bounded copy as well, for a fair comparison of
            // the *neighbour's* bytes.
            let mut inf = InfiniteHeap::new();
            let opts = ExecOptions {
                bounded_strcpy: true,
                ..Default::default()
            };
            match run_program(&mut inf, &prog, &opts) {
                RunOutcome::Completed(o) => o,
                other => panic!("{other:?}"),
            }
        };
        let mut lea_unbounded = LeaSimAllocator::new(1 << 20);
        let out = run_program(&mut lea_unbounded, &prog, &ExecOptions::default());
        let v = verdict(&out, &oracle);
        assert_ne!(
            v,
            Verdict::Correct,
            "unbounded strcpy must clobber the neighbour"
        );

        let mut dh = DieHardSimHeap::new(HeapConfig::default(), 8).unwrap();
        let opts = ExecOptions {
            bounded_strcpy: true,
            ..Default::default()
        };
        let out = run_program(&mut dh, &prog, &opts);
        // Note: the read-back of id 1 must match the oracle (untouched).
        assert_eq!(verdict(&out, &oracle), Verdict::Correct);
    }
}
