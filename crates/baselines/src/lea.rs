//! A Lea-allocator (dlmalloc) style baseline with **in-band boundary tags**.
//!
//! The paper compares DieHard against "the default GNU libc allocator, a
//! variant of the Lea allocator" (§7.2.1), whose defining weakness DieHard
//! removes: "Many allocators, including the Lea allocator ... store heap
//! metadata in areas immediately adjacent to allocated objects ('boundary
//! tags'). A buffer overflow of just one byte past an allocated space can
//! corrupt the heap, leading to program crashes, unpredictable behavior, or
//! security vulnerabilities" (§4.1).
//!
//! This implementation therefore stores its metadata exactly where dlmalloc
//! does — **inside the simulated arena**:
//!
//! * every chunk has an 8-byte header word (`size | flags`) directly before
//!   the user data;
//! * free chunks carry doubly-linked free-list pointers (`fd`, `bk`) in
//!   their payload bytes.
//!
//! Overflows that smash a neighbouring header or a free chunk's links
//! produce the authentic failure modes: wild unlink writes, segfault-valued
//! [`Fault`]s when a corrupted pointer leaves the heap, and
//! [`Fault::Livelock`] when a double free cycles a bin. Nothing here
//! checks more than 2006-era dlmalloc did — that is the point.
//!
//! Simplifications relative to dlmalloc, none of which change the failure
//! model: forward-only coalescing (no prev-footer walk), first-fit binning
//! without a top-chunk cache, and bin heads held out-of-band (dlmalloc keeps
//! them in `malloc_state`, also out of the chunk stream).

use diehard_sim::arena::PagedArena;
use diehard_sim::fault::Fault;
use diehard_sim::traits::{Addr, SimAllocator};

/// Chunk header flag: the chunk is allocated.
const IN_USE: u64 = 0x1;
/// Mask clearing the flag bits from a header word.
const SIZE_MASK: u64 = !0xF;
/// Minimum chunk size: header + fd + bk, aligned.
const MIN_CHUNK: usize = 32;
/// Chunk alignment.
const ALIGN: usize = 16;
/// Steps an operation may take before the livelock detector fires
/// (a cycled bin would otherwise spin forever, as real dlmalloc does).
const STEP_BUDGET: u64 = 200_000;

/// Number of small bins (exact-size, stride 16, covering up to 1 KB) plus
/// log-spaced large bins.
const SMALL_BINS: usize = 62;
const LARGE_BINS: usize = 24;
const NUM_BINS: usize = SMALL_BINS + LARGE_BINS;

/// The dlmalloc-style baseline allocator.
#[derive(Debug)]
pub struct LeaSimAllocator {
    arena: PagedArena,
    /// First chunk address of each bin's free list (0 = empty). Bin heads
    /// live out-of-band like dlmalloc's `malloc_state`; the *links* live in
    /// the arena, which is what overflows corrupt.
    bins: [Addr; NUM_BINS],
    /// Program break: chunks are carved below this.
    brk: usize,
    max_span: usize,
    live_bytes: usize,
    steps: u64,
    /// Step count at the start of the current operation; the livelock
    /// detector is per-operation, like a watchdog on a single malloc/free.
    op_start: u64,
}

impl LeaSimAllocator {
    /// Creates an allocator with a maximum heap span of `max_span` bytes.
    #[must_use]
    pub fn new(max_span: usize) -> Self {
        let mut arena = PagedArena::new(0);
        // Address 0 is reserved so "0" can mean "no chunk" in links.
        arena.set_limit(ALIGN);
        Self {
            arena,
            bins: [0; NUM_BINS],
            brk: ALIGN,
            max_span,
            live_bytes: 0,
            steps: 0,
            op_start: 0,
        }
    }

    /// Current program break (diagnostics).
    #[must_use]
    pub fn brk(&self) -> usize {
        self.brk
    }

    fn bin_index(size: usize) -> usize {
        if size < MIN_CHUNK + SMALL_BINS * ALIGN {
            (size - MIN_CHUNK) / ALIGN
        } else {
            let extra = (size / (MIN_CHUNK + SMALL_BINS * ALIGN)).ilog2() as usize;
            (SMALL_BINS + extra).min(NUM_BINS - 1)
        }
    }

    fn chunk_size_for(request: usize) -> usize {
        ((request + 8 + ALIGN - 1) & !(ALIGN - 1)).max(MIN_CHUNK)
    }

    fn step(&mut self) -> Result<(), Fault> {
        self.steps += 1;
        if self.steps - self.op_start > STEP_BUDGET {
            // A single malloc/free burned the whole budget: only a cycled
            // free list (e.g. from a double free) can do that.
            return Err(Fault::Livelock);
        }
        Ok(())
    }

    /// Reads and sanity-checks a chunk header, exactly as far as dlmalloc
    /// implicitly does by using the value: the *address* must be readable;
    /// an insane *size* crashes only once arithmetic walks somewhere
    /// unmapped.
    fn read_header(&self, chunk: Addr) -> Result<u64, Fault> {
        self.arena.read_u64(chunk)
    }

    fn header_size(header: u64) -> usize {
        (header & SIZE_MASK) as usize
    }

    /// Validates a link target the way a pointer dereference would: it must
    /// be readable (within the break) — not that it is a *sensible* chunk.
    fn check_link(&self, addr: Addr) -> Result<(), Fault> {
        if addr >= self.brk || addr < ALIGN {
            return Err(Fault::Segv { addr });
        }
        Ok(())
    }

    /// Unlinks `chunk` from bin `bin`: the classic `unlink` macro, writes
    /// and all. Corrupted `fd`/`bk` values turn this into the famous
    /// wild-write primitive or a crash.
    fn unlink(&mut self, bin: usize, chunk: Addr) -> Result<(), Fault> {
        let fd = self.arena.read_u64(chunk + 8)? as usize;
        let bk = self.arena.read_u64(chunk + 16)? as usize;
        if bk == 0 {
            self.bins[bin] = fd;
        } else {
            self.check_link(bk)?;
            self.arena.write_u64(bk + 8, fd as u64)?; // bk->fd = fd
        }
        if fd != 0 {
            self.check_link(fd)?;
            self.arena.write_u64(fd + 16, bk as u64)?; // fd->bk = bk
        }
        Ok(())
    }

    /// Pushes a free chunk onto its bin's list, threading `fd`/`bk` through
    /// the arena.
    fn push_free(&mut self, chunk: Addr, size: usize) -> Result<(), Fault> {
        let bin = Self::bin_index(size);
        let head = self.bins[bin];
        self.arena.write_u64(chunk, size as u64)?; // header, IN_USE clear
        self.arena.write_u64(chunk + 8, head as u64)?; // fd
        self.arena.write_u64(chunk + 16, 0)?; // bk (list front)
        if head != 0 {
            self.check_link(head)?;
            self.arena.write_u64(head + 16, chunk as u64)?; // head->bk
        }
        self.bins[bin] = chunk;
        Ok(())
    }

    /// First-fit search through `bin` for a chunk of at least `need` bytes.
    fn search_bin(&mut self, bin: usize, need: usize) -> Result<Option<Addr>, Fault> {
        let mut chunk = self.bins[bin];
        while chunk != 0 {
            self.step()?;
            self.check_link(chunk)?;
            let header = self.read_header(chunk)?;
            let size = Self::header_size(header);
            if size >= need && chunk.checked_add(size).is_some_and(|e| e <= self.brk) {
                self.unlink(bin, chunk)?;
                return Ok(Some(chunk));
            }
            chunk = self.arena.read_u64(chunk + 8)? as usize; // fd
        }
        Ok(None)
    }

    fn extend_brk(&mut self, need: usize) -> Option<Addr> {
        if self.brk + need > self.max_span {
            return None;
        }
        let chunk = self.brk;
        self.brk += need;
        self.arena.set_limit(self.brk);
        Some(chunk)
    }
}

impl SimAllocator for LeaSimAllocator {
    fn name(&self) -> &'static str {
        "lea-malloc"
    }

    fn malloc(&mut self, size: usize, _roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        self.op_start = self.steps;
        if size == 0 {
            return Ok(None);
        }
        let need = Self::chunk_size_for(size);
        // Exact bin, then successively larger bins.
        for bin in Self::bin_index(need)..NUM_BINS {
            self.step()?;
            if let Some(chunk) = self.search_bin(bin, need)? {
                let header = self.read_header(chunk)?;
                let found = Self::header_size(header);
                // Split when the remainder can stand alone as a chunk.
                if found >= need + MIN_CHUNK {
                    let rest = chunk + need;
                    self.push_free(rest, found - need)?;
                    self.arena.write_u64(chunk, need as u64 | IN_USE)?;
                } else {
                    self.arena.write_u64(chunk, found as u64 | IN_USE)?;
                }
                self.live_bytes += size;
                return Ok(Some(chunk + 8));
            }
        }
        // Wilderness: extend the break.
        match self.extend_brk(need) {
            Some(chunk) => {
                self.arena.write_u64(chunk, need as u64 | IN_USE)?;
                self.live_bytes += size;
                Ok(Some(chunk + 8))
            }
            None => Ok(None),
        }
    }

    fn free(&mut self, addr: Addr) -> Result<(), Fault> {
        self.op_start = self.steps;
        if addr == 0 {
            return Ok(());
        }
        // dlmalloc trusts the boundary tag it finds 8 bytes before the
        // pointer — misdirected or double frees do whatever the bytes say.
        let chunk = addr.wrapping_sub(8);
        if chunk < ALIGN || chunk >= self.brk {
            return Err(Fault::Segv { addr: chunk });
        }
        let header = self.read_header(chunk)?;
        let mut size = Self::header_size(header);
        // The only checks dlmalloc effectively performs are the ones that
        // crash it: an insane size walks somewhere unmapped.
        if size < MIN_CHUNK || chunk.checked_add(size).is_none_or(|e| e > self.brk) {
            return Err(Fault::CorruptMetadata {
                addr: chunk,
                what: "free(): invalid chunk size",
            });
        }
        // Forward coalescing: if the next chunk is free, absorb it. dlmalloc
        // unconditionally walks to the chunk *after* next (for its
        // prev-inuse bit), so an insane next-size means a wild dereference —
        // the §4.1 one-byte-overflow crash.
        let next = chunk + size;
        if next + 8 <= self.brk {
            let next_header = self.read_header(next)?;
            let next_size = Self::header_size(next_header);
            if next_size < MIN_CHUNK || next.checked_add(next_size).is_none_or(|e| e > self.brk) {
                return Err(Fault::CorruptMetadata {
                    addr: next,
                    what: "free(): corrupt adjacent chunk header",
                });
            }
            if next_header & IN_USE == 0 {
                self.unlink(Self::bin_index(next_size), next)?;
                size += next_size;
            }
        }
        self.push_free(chunk, size)?;
        self.live_bytes = self.live_bytes.saturating_sub(size - 8);
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        &self.arena
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        let chunk = addr.checked_sub(8)?;
        if chunk < ALIGN || chunk >= self.brk {
            return None;
        }
        let header = self.read_header(chunk).ok()?;
        if header & IN_USE == 0 {
            return None;
        }
        Self::header_size(header).checked_sub(8)
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    fn work(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diehard_core::rng::Mwc;
    use proptest::prelude::*;

    fn lea() -> LeaSimAllocator {
        LeaSimAllocator::new(64 << 20)
    }

    #[test]
    fn alloc_write_read_free() {
        let mut a = lea();
        let p = a.malloc(100, &[]).unwrap().unwrap();
        a.memory_mut().write(p, &[9u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        a.memory().read(p, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 100]);
        assert!(a.usable_size(p).unwrap() >= 100);
        a.free(p).unwrap();
        assert_eq!(a.usable_size(p), None, "freed chunk is not in use");
    }

    #[test]
    fn freed_memory_is_reused() {
        let mut a = lea();
        let p = a.malloc(64, &[]).unwrap().unwrap();
        a.free(p).unwrap();
        let q = a.malloc(64, &[]).unwrap().unwrap();
        assert_eq!(p, q, "first-fit must reuse the freed chunk immediately");
    }

    #[test]
    fn adjacent_allocations_are_contiguous() {
        // The defining contrast with DieHard: fresh chunks sit side by side,
        // separated only by an 8-byte boundary tag.
        let mut a = lea();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let q = a.malloc(24, &[]).unwrap().unwrap();
        assert_eq!(q - p, 32, "24-byte request rounds to one 32-byte chunk");
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let mut a = lea();
        let big = a.malloc(1024, &[]).unwrap().unwrap();
        a.free(big).unwrap();
        let small = a.malloc(32, &[]).unwrap().unwrap();
        assert_eq!(small, big, "split head of the freed chunk");
        let small2 = a.malloc(32, &[]).unwrap().unwrap();
        assert!(small2 > small && small2 < big + 1040, "remainder reused");
    }

    #[test]
    fn forward_coalescing_merges_neighbours() {
        let mut a = lea();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let q = a.malloc(24, &[]).unwrap().unwrap();
        let _guard = a.malloc(24, &[]).unwrap().unwrap();
        a.free(q).unwrap();
        a.free(p).unwrap(); // p coalesces with q → 64-byte chunk
        let merged = a.malloc(56, &[]).unwrap().unwrap();
        assert_eq!(merged, p, "coalesced chunk serves a larger request");
    }

    #[test]
    fn overflow_corrupting_next_header_crashes_on_free() {
        // §4.1's one-byte-overflow scenario, scaled to a full header smash:
        // the victim's size field becomes garbage and free() walks into it.
        let mut a = lea();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let q = a.malloc(24, &[]).unwrap().unwrap();
        // Overflow p: wipe q's boundary tag with 0xFF.
        a.memory_mut().write(p + 24, &[0xFF; 8]).unwrap();
        let err = a.free(q).unwrap_err();
        assert!(
            matches!(err, Fault::CorruptMetadata { .. } | Fault::Segv { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn overflow_corrupting_free_list_links_crashes_or_wild_writes() {
        let mut a = lea();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let q = a.malloc(24, &[]).unwrap().unwrap();
        let _guard = a.malloc(24, &[]).unwrap().unwrap();
        a.free(q).unwrap(); // q now carries fd/bk links in its payload
                            // Overflow p with pointer-looking garbage over q's header AND links.
        let evil = (64u64 << 32) | 0xFFFF_FFF0;
        let mut payload = Vec::new();
        payload.extend_from_slice(&(64u64).to_ne_bytes()); // plausible size, free
        payload.extend_from_slice(&evil.to_ne_bytes()); // fd
        payload.extend_from_slice(&evil.to_ne_bytes()); // bk
        a.memory_mut().write(p + 24, &payload).unwrap();
        // Malloc that reuses q must unlink through the smashed pointers.
        let result = a.malloc(24, &[]);
        assert!(
            result.is_err(),
            "unlink through garbage must fault, got {result:?}"
        );
    }

    #[test]
    fn double_free_cycles_the_bin() {
        // "Repeated calls to free of objects that have already been freed
        // cause freelist-based allocators to fail" (§1).
        let mut a = lea();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let _guard = a.malloc(24, &[]).unwrap().unwrap();
        a.free(p).unwrap();
        a.free(p).unwrap(); // inserts p twice → self-cycle via head->bk
                            // Walking the bin now either livelocks or serves the same chunk
                            // twice; allocate repeatedly and require a detected failure or an
                            // aliased allocation.
        let first = a.malloc(24, &[]);
        let second = a.malloc(24, &[]);
        let aliased = matches!((&first, &second), (Ok(Some(x)), Ok(Some(y))) if x == y);
        let faulted = first.is_err() || second.is_err();
        assert!(
            aliased || faulted,
            "double free must corrupt: {first:?} then {second:?}"
        );
    }

    #[test]
    fn invalid_free_of_wild_pointer_faults() {
        let mut a = lea();
        let _p = a.malloc(24, &[]).unwrap().unwrap();
        assert!(a.free(0x4000_0000).is_err(), "beyond the break");
        // An in-heap but misaligned free reads a garbage header: the bytes
        // there are object payload (zeros) → size 0 → corrupt metadata.
        let p = a.malloc(64, &[]).unwrap().unwrap();
        assert!(a.free(p + 8).is_err());
    }

    #[test]
    fn exhaustion_returns_null() {
        let mut a = LeaSimAllocator::new(4096);
        let mut served = 0;
        for _ in 0..200 {
            match a.malloc(64, &[]) {
                Ok(Some(_)) => served += 1,
                Ok(None) => break,
                Err(e) => panic!("clean exhaustion expected, got {e}"),
            }
        }
        assert!(served > 0 && served < 200);
    }

    #[test]
    fn bin_index_monotone() {
        let mut last = 0;
        for size in (MIN_CHUNK..100_000).step_by(16) {
            let b = LeaSimAllocator::bin_index(size);
            assert!(b >= last || b >= SMALL_BINS - 1, "regression at {size}");
            assert!(b < NUM_BINS);
            last = b.max(last);
        }
    }

    proptest! {
        /// Without injected corruption, the allocator never faults, never
        /// hands out overlapping chunks, and reuses memory.
        #[test]
        fn clean_runs_never_fault(seed in any::<u64>(), ops in 1usize..400) {
            let mut a = lea();
            let mut rng = Mwc::seeded(seed);
            let mut live: Vec<(Addr, usize)> = Vec::new();
            for _ in 0..ops {
                if rng.chance(0.6) || live.is_empty() {
                    let sz = 1 + rng.below(2000);
                    let p = a.malloc(sz, &[]).unwrap();
                    if let Some(p) = p {
                        for &(q, qs) in &live {
                            prop_assert!(p + sz <= q || q + qs <= p,
                                "overlap {p}+{sz} vs {q}+{qs}");
                        }
                        live.push((p, sz));
                    }
                } else {
                    let (p, _) = live.swap_remove(rng.below(live.len()));
                    a.free(p).unwrap();
                }
            }
            for (p, _) in live {
                a.free(p).unwrap();
            }
        }

        /// Usable size always covers the request for served allocations.
        #[test]
        fn usable_size_covers_request(sz in 1usize..5000) {
            let mut a = lea();
            let p = a.malloc(sz, &[]).unwrap().unwrap();
            prop_assert!(a.usable_size(p).unwrap() >= sz);
        }
    }
}
