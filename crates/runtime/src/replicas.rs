//! Replicated DieHard with output voting (§5), in-process.
//!
//! The replicated architecture runs k replicas of the program, each with a
//! fully randomized heap seeded differently, broadcasts the input, and
//! "compares the contents of each replica's output buffer" in 4 KB chunks
//! (§5.2): a chunk is committed when at least two replicas agree; replicas
//! that disagree "have entered into an undefined state" and are killed;
//! when *no* two replicas agree the computation is terminated — this is how
//! uninitialized reads are detected (§3.2, §6.3).
//!
//! Here the replicas are in-process deterministic executions (our programs
//! are single-threaded and replayable); the subprocess version with real
//! pipes lives in the `diehard-replicate` crate.

use crate::exec::{run_program, ExecOptions, RunOutcome, Verdict};
use crate::ops::Program;
use crate::output::{Output, CHUNK};
use diehard_core::config::{FillPolicy, HeapConfig};
use diehard_core::rng::splitmix;
use diehard_sim::DieHardSimHeap;

/// What happened to one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaFate {
    /// Ran to completion and agreed with every committed chunk.
    Agreed,
    /// Crashed or hung before completing (killed on signal, §5.2).
    Died,
    /// Completed but produced a chunk the vote rejected (killed).
    Outvoted {
        /// Index of the first chunk where this replica lost the vote.
        at_chunk: usize,
    },
}

/// The overall result of a replicated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicatedOutcome {
    /// Chunks were committed through the end of some agreeing replica.
    Agreed(Output),
    /// At some chunk no two live replicas agreed: the voter terminates the
    /// computation (a detected divergence — e.g. an uninitialized read).
    Divergence {
        /// Index of the chunk where consensus failed.
        at_chunk: usize,
    },
    /// Every replica crashed or hung before producing agreed output.
    AllDied,
}

/// Result bundle from [`ReplicaSet::run`].
#[derive(Debug, Clone)]
pub struct ReplicatedRun {
    /// The voted outcome.
    pub outcome: ReplicatedOutcome,
    /// Per-replica fates, index-aligned with the seeds.
    pub fates: Vec<ReplicaFate>,
}

impl ReplicatedRun {
    /// Classifies against the oracle: agreement with correct output is
    /// Correct; divergence is Abort (detected, terminated); agreement on
    /// wrong output is SilentCorruption; total death is Crash.
    #[must_use]
    pub fn verdict(&self, oracle: &Output) -> Verdict {
        match &self.outcome {
            ReplicatedOutcome::Agreed(out) if out == oracle => Verdict::Correct,
            ReplicatedOutcome::Agreed(_) => Verdict::SilentCorruption,
            ReplicatedOutcome::Divergence { .. } => Verdict::Abort,
            ReplicatedOutcome::AllDied => Verdict::Crash,
        }
    }
}

/// A set of differently-seeded DieHard replicas.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    config: HeapConfig,
    seeds: Vec<u64>,
}

impl ReplicaSet {
    /// Creates `k` replicas derived from `master_seed`, with random-fill
    /// enabled (the replicated allocator `libdiehard_r.so` always fills,
    /// §4.1/§5.1).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k == 2` (the voter cannot break a 1–1 tie;
    /// the paper assumes one or at least three replicas, §6).
    #[must_use]
    pub fn new(k: usize, master_seed: u64, config: HeapConfig) -> Self {
        assert!(k != 0, "at least one replica required");
        assert!(k != 2, "two replicas cannot vote (§6)");
        let config = config.with_fill(FillPolicy::Random);
        let seeds = (0..k as u64)
            .map(|i| splitmix(master_seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        Self { config, seeds }
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.seeds.len()
    }

    /// The per-replica seeds (for reproducing a specific replica).
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Executes `program` on every replica and votes on the output.
    #[must_use]
    pub fn run(&self, program: &Program) -> ReplicatedRun {
        // Execute all replicas (equivalent to running them to their output
        // barriers; our programs are deterministic and finite).
        let results: Vec<RunOutcome> = self
            .seeds
            .iter()
            .map(|&seed| {
                let mut heap =
                    DieHardSimHeap::new(self.config.clone(), seed).expect("valid replica config");
                run_program(&mut heap, program, &ExecOptions::default())
            })
            .collect();
        self.vote(results)
    }

    /// As [`run`](Self::run) but executing the replicas on OS threads —
    /// the paper's natural setting ("the natural setting for using
    /// replication is on systems with multiple processors", §2), used by
    /// the §7.2.3 sixteen-replica scaling experiment.
    #[must_use]
    pub fn run_parallel(&self, program: &Program) -> ReplicatedRun {
        let results: Vec<RunOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .seeds
                .iter()
                .map(|&seed| {
                    let config = self.config.clone();
                    scope.spawn(move || {
                        let mut heap =
                            DieHardSimHeap::new(config, seed).expect("valid replica config");
                        run_program(&mut heap, program, &ExecOptions::default())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replica thread panicked"))
                .collect()
        });
        self.vote(results)
    }

    fn vote(&self, results: Vec<RunOutcome>) -> ReplicatedRun {
        let mut fates: Vec<ReplicaFate> = results
            .iter()
            .map(|r| match r {
                RunOutcome::Completed(_) => ReplicaFate::Agreed, // provisional
                _ => ReplicaFate::Died,
            })
            .collect();

        let outputs: Vec<Option<&Output>> = results.iter().map(RunOutcome::output).collect();
        let max_chunks = outputs
            .iter()
            .flatten()
            .map(|o| o.chunk_count())
            .max()
            .unwrap_or(0);

        let mut live: Vec<usize> = (0..self.seeds.len())
            .filter(|&i| outputs[i].is_some())
            .collect();
        if live.is_empty() {
            return ReplicatedRun {
                outcome: ReplicatedOutcome::AllDied,
                fates,
            };
        }

        let mut committed = Output::new();
        for chunk_idx in 0..max_chunks {
            let chunk_of = |i: usize| -> &[u8] {
                outputs[i]
                    .expect("live replicas completed")
                    .as_bytes()
                    .chunks(CHUNK)
                    .nth(chunk_idx)
                    .unwrap_or(&[])
            };
            if live.len() == 1 {
                // One survivor: no quorum possible, pass its output through
                // (the degenerate stand-alone case).
                committed.push(chunk_of(live[0]));
                continue;
            }
            // Group live replicas by chunk content and pick the largest
            // agreeing group ("chooses an output buffer agreed upon by at
            // least two replicas", §5.2).
            let mut groups: Vec<(Vec<usize>, &[u8])> = Vec::new();
            for &i in &live {
                let c = chunk_of(i);
                match groups.iter_mut().find(|(_, g)| *g == c) {
                    Some((members, _)) => members.push(i),
                    None => groups.push((vec![i], c)),
                }
            }
            groups.sort_by_key(|(members, _)| core::cmp::Reverse(members.len()));
            let (winners, winning_chunk) = &groups[0];
            if winners.len() < 2 {
                // All live replicas disagree: the voter cannot commit —
                // terminate (this is the §6.3 uninit-read detection path).
                return ReplicatedRun {
                    outcome: ReplicatedOutcome::Divergence {
                        at_chunk: chunk_idx,
                    },
                    fates,
                };
            }
            committed.push(winning_chunk);
            // Kill the outvoted replicas.
            let losers: Vec<usize> = live
                .iter()
                .copied()
                .filter(|i| !winners.contains(i))
                .collect();
            for i in losers {
                fates[i] = ReplicaFate::Outvoted {
                    at_chunk: chunk_idx,
                };
            }
            live.retain(|i| winners.contains(i));
        }
        ReplicatedRun {
            outcome: ReplicatedOutcome::Agreed(committed),
            fates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::oracle_output;
    use crate::ops::Op;

    fn clean_program() -> Program {
        let mut ops = Vec::new();
        for i in 0..30u32 {
            ops.push(Op::Alloc {
                id: i,
                size: 32 + (i as usize % 100),
            });
            ops.push(Op::Write {
                id: i,
                offset: 0,
                len: 32,
                seed: 7,
            });
            ops.push(Op::Read {
                id: i,
                offset: 0,
                len: 32,
            });
        }
        Program::new("clean", ops)
    }

    #[test]
    fn replicas_agree_on_clean_program() {
        let prog = clean_program();
        let set = ReplicaSet::new(3, 0xABCD, HeapConfig::default());
        let run = set.run(&prog);
        let oracle = oracle_output(&prog);
        assert_eq!(run.verdict(&oracle), Verdict::Correct);
        assert!(run.fates.iter().all(|f| *f == ReplicaFate::Agreed));
    }

    #[test]
    fn uninitialized_read_detected_as_divergence() {
        // Read 16 uninitialized bytes (B = 128 bits): each replica's random
        // fill differs, so all outputs disagree — detection probability
        // 1 − ~2⁻¹²⁵ ≈ 1 (Theorem 3).
        let prog = Program::new(
            "uninit",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 16,
                }, // never written!
            ],
        );
        let set = ReplicaSet::new(3, 99, HeapConfig::default());
        let run = set.run(&prog);
        assert!(
            matches!(run.outcome, ReplicatedOutcome::Divergence { at_chunk: 0 }),
            "got {:?}",
            run.outcome
        );
        let oracle = oracle_output(&prog);
        assert_eq!(run.verdict(&oracle), Verdict::Abort);
    }

    #[test]
    fn uninit_read_invisible_to_standalone_replicaset_of_one() {
        // k = 1: no voting, output passes through (and the random fill means
        // the output is whatever the single heap contained).
        let prog = Program::new(
            "uninit",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 16,
                },
            ],
        );
        let set = ReplicaSet::new(1, 5, HeapConfig::default());
        let run = set.run(&prog);
        assert!(matches!(run.outcome, ReplicatedOutcome::Agreed(_)));
    }

    #[test]
    fn initialized_data_survives_voting_despite_random_fill() {
        // Random fill differs per replica, but *written* data is identical,
        // so properly initialized programs always agree.
        let prog = Program::new(
            "init",
            vec![
                Op::Alloc { id: 0, size: 1000 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 1000,
                    seed: 3,
                },
                Op::Read {
                    id: 0,
                    offset: 0,
                    len: 1000,
                },
            ],
        );
        let set = ReplicaSet::new(5, 123, HeapConfig::default());
        let run = set.run(&prog);
        assert!(matches!(run.outcome, ReplicatedOutcome::Agreed(_)));
    }

    #[test]
    fn parallel_run_matches_serial() {
        let prog = clean_program();
        let set = ReplicaSet::new(3, 0xABCD, HeapConfig::default());
        let serial = set.run(&prog);
        let parallel = set.run_parallel(&prog);
        assert_eq!(serial.outcome, parallel.outcome);
        assert_eq!(serial.fates, parallel.fates);
    }

    #[test]
    #[should_panic(expected = "cannot vote")]
    fn two_replicas_rejected() {
        let _ = ReplicaSet::new(2, 1, HeapConfig::default());
    }

    #[test]
    fn seeds_are_distinct() {
        let set = ReplicaSet::new(8, 42, HeapConfig::default());
        let mut seeds = set.seeds().to_vec();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn overflow_masked_by_majority() {
        // A one-object overflow: each replica independently has high odds
        // of the overflow landing on empty space; with 3 replicas the
        // majority almost surely commits the correct output.
        let mut ops = vec![Op::Alloc { id: 0, size: 8 }];
        for i in 1..20u32 {
            ops.push(Op::Alloc { id: i, size: 8 });
            ops.push(Op::Write {
                id: i,
                offset: 0,
                len: 8,
                seed: 9,
            });
        }
        // Overflow object 0 by one object's worth.
        ops.push(Op::Write {
            id: 0,
            offset: 0,
            len: 16,
            seed: 4,
        });
        for i in 1..20u32 {
            ops.push(Op::Read {
                id: i,
                offset: 0,
                len: 8,
            });
        }
        let prog = Program::new("overflow", ops);
        let oracle = oracle_output(&prog);
        let set = ReplicaSet::new(3, 7, HeapConfig::default());
        let run = set.run(&prog);
        assert_eq!(run.verdict(&oracle), Verdict::Correct);
    }
}
