//! §4.4 bench: the cost of DieHard's heap-bounded string functions — "two
//! comparisons ... a bitshift ... two subtractions" over the unchecked
//! copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_core::config::HeapConfig;
use diehard_core::engine::HeapCore;
use diehard_core::safe_str::{bounded_strcpy, space_to_object_end};
use std::hint::black_box;

fn bench_bound_computation(c: &mut Criterion) {
    let mut heap = HeapCore::new(HeapConfig::default(), 1).unwrap();
    let slot = heap.alloc(256).unwrap();
    let offset = heap.offset_of(slot);
    c.bench_function("space_to_object_end", |b| {
        b.iter(|| black_box(space_to_object_end(&heap, black_box(offset + 13))));
    });
}

fn bench_copies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strcpy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for len in [16usize, 64, 256, 1024] {
        let src: Vec<u8> = (0..len).map(|i| 1 + (i % 250) as u8).collect();
        group.bench_with_input(BenchmarkId::new("bounded", len), &src, |b, src| {
            let mut dest = vec![0u8; 2048];
            b.iter(|| {
                black_box(bounded_strcpy(&mut dest, 2048, black_box(src)));
            });
        });
        group.bench_with_input(BenchmarkId::new("unchecked_memcpy", len), &src, |b, src| {
            let mut dest = vec![0u8; 2048];
            b.iter(|| {
                dest[..src.len()].copy_from_slice(black_box(src));
                black_box(&dest);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_computation, bench_copies);
criterion_main!(benches);
