//! Criterion companion to Figures 5(a)/5(b): representative workloads
//! across all four allocators, with statistical rigor (the standalone
//! `fig5a`/`fig5b` binaries print the full normalized tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_baselines::{BdwGcSim, LeaSimAllocator, WindowsSimAllocator};
use diehard_core::config::HeapConfig;
use diehard_runtime::{run_program, ExecOptions};
use diehard_sim::DieHardSimHeap;
use diehard_workloads::profile_by_name;

const SPAN: usize = 64 << 20;
const SCALE: f64 = 0.05;

fn bench_workloads(c: &mut Criterion) {
    // One representative from each family: allocation-intensive (cfrac),
    // mid (espresso), wide-size-range pathological (300.twolf).
    for name in ["cfrac", "espresso", "300.twolf"] {
        let prog = profile_by_name(name)
            .expect("known profile")
            .generate(SCALE, 0xBE);
        let mut group = c.benchmark_group(format!("fig5/{name}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.bench_with_input(BenchmarkId::new("lea", name), &prog, |b, prog| {
            b.iter(|| {
                let mut a = LeaSimAllocator::new(SPAN);
                run_program(&mut a, prog, &ExecOptions::default())
            });
        });
        group.bench_with_input(BenchmarkId::new("diehard", name), &prog, |b, prog| {
            b.iter(|| {
                let mut a = DieHardSimHeap::new(HeapConfig::default(), 0xD).unwrap();
                run_program(&mut a, prog, &ExecOptions::default())
            });
        });
        group.bench_with_input(BenchmarkId::new("bdw-gc", name), &prog, |b, prog| {
            b.iter(|| {
                let mut a = BdwGcSim::new(SPAN);
                run_program(&mut a, prog, &ExecOptions::default())
            });
        });
        group.bench_with_input(BenchmarkId::new("windows", name), &prog, |b, prog| {
            b.iter(|| {
                let mut a = WindowsSimAllocator::new(SPAN);
                run_program(&mut a, prog, &ExecOptions::default())
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
