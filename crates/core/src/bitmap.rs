//! Allocation bitmaps: one bit per object slot.
//!
//! The paper (§4.1): "The heap metadata includes a bitmap for each heap
//! region, where one bit always stands for one object. All bits are initially
//! zero, indicating that every object is free." Keeping per-object overhead
//! to one bit (versus dlmalloc's eight-byte boundary tags) is one of the two
//! features offsetting DieHard's power-of-two rounding cost (§4.5).
//!
//! The bitmap never allocates after construction, so it is safe to use from
//! inside a global allocator once built over caller-provided storage
//! ([`Bitmap::from_storage`]).

use core::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bitmap over object slots.
///
/// # Examples
///
/// ```
/// use diehard_core::bitmap::Bitmap;
///
/// let mut bm = Bitmap::new(128);
/// assert!(!bm.get(7));
/// bm.set(7);
/// assert!(bm.get(7));
/// assert_eq!(bm.count_ones(), 1);
/// bm.clear(7);
/// assert_eq!(bm.count_ones(), 0);
/// ```
#[derive(Debug)]
pub struct Bitmap {
    words: Storage,
    bits: usize,
}

#[derive(Debug)]
enum Storage {
    Owned(Vec<u64>),
    /// Caller-provided word storage (e.g. carved out of an mmap'd metadata
    /// arena by the global allocator, which must not allocate re-entrantly).
    Raw {
        ptr: *mut u64,
        words: usize,
    },
}

// SAFETY: `Raw` storage is exclusively owned by the bitmap for its lifetime;
// the global allocator guards all access with a lock.
unsafe impl Send for Bitmap {}
unsafe impl Sync for Bitmap {}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: `ptr` is valid for `words` u64s per `from_storage`'s
            // contract and no aliasing mutable access exists while `&self`
            // is held.
            Storage::Raw { ptr, words } => unsafe { core::slice::from_raw_parts(*ptr, *words) },
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: as above, with exclusive access guaranteed by `&mut`.
            Storage::Raw { ptr, words } => unsafe { core::slice::from_raw_parts_mut(*ptr, *words) },
        }
    }
}

impl Bitmap {
    /// Creates a bitmap with `bits` slots, all free (zero).
    #[must_use]
    pub fn new(bits: usize) -> Self {
        Self {
            words: Storage::Owned(vec![0u64; bits.div_ceil(64)]),
            bits,
        }
    }

    /// Creates a bitmap over caller-provided zeroed word storage.
    ///
    /// Used by the real allocator, whose metadata lives in a dedicated mmap
    /// region segregated from the heap (§4.1).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `bits.div_ceil(64)` u64
    /// words for the lifetime of the bitmap, must be exclusively owned by
    /// it, and must point to zeroed memory.
    #[must_use]
    pub unsafe fn from_storage(ptr: *mut u64, bits: usize) -> Self {
        Self {
            words: Storage::Raw {
                ptr,
                words: bits.div_ceil(64),
            },
            bits,
        }
    }

    /// Number of slots the bitmap covers.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` when the bitmap covers zero slots.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        let w = self.words.as_slice()[index / 64];
        (w >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` (marks the slot allocated).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words.as_mut_slice()[index / 64] |= 1u64 << (index % 64);
    }

    /// Clears the bit at `index` (marks the slot free).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words.as_mut_slice()[index / 64] &= !(1u64 << (index % 64));
    }

    /// Atomically-in-effect test-and-set: returns `true` if the bit was
    /// previously clear and is now set (the caller won the slot).
    #[inline]
    pub fn try_set(&mut self, index: usize) -> bool {
        if self.get(index) {
            false
        } else {
            self.set(index);
            true
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        for w in self.words.as_mut_slice() {
            *w = 0;
        }
    }

    /// Number of set bits (live objects in the region).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words
            .as_slice()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: self.words.as_slice(),
            word_idx: 0,
            current: self.words.as_slice().first().copied().unwrap_or(0),
            bits: self.bits,
        }
    }
}

/// A fixed-capacity bitmap whose bits can be read and written concurrently.
///
/// The magazine layer ([`crate::magazine`]) overlays one of these on each
/// partition's allocation bitmap to mark slots that are *reserved* by a
/// thread-local magazine but not yet handed to the application. The overlay
/// must be atomic because the reserved→live transition (a magazine handout)
/// happens on the owning thread **without** taking the shard lock — that is
/// the entire point of the magazine — while other threads read the bit under
/// the shard lock to decide whether a slot is live.
///
/// Memory ordering: [`clear`](Self::clear) (the handout) releases, and
/// [`get`](Self::get) acquires, so a thread that legitimately learned of an
/// object (the pointer was passed to it, which synchronizes) observes the
/// slot as live. Threads issuing *erroneous* frees may observe a stale
/// reserved bit and have the free ignored — exactly DieHard's contract for
/// invalid frees.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: AtomicStorage,
    bits: usize,
}

#[derive(Debug)]
enum AtomicStorage {
    Owned(Box<[AtomicU64]>),
    /// Caller-provided word storage (carved out of the global allocator's
    /// mmap'd metadata arena, which must never allocate re-entrantly).
    Raw {
        ptr: *const AtomicU64,
        words: usize,
    },
}

// SAFETY: `Raw` storage is exclusively owned by this bitmap for its
// lifetime, and every access goes through atomic operations.
unsafe impl Send for AtomicBitmap {}
unsafe impl Sync for AtomicBitmap {}

impl AtomicBitmap {
    /// Creates an atomic bitmap with `bits` slots, all clear.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        Self {
            words: AtomicStorage::Owned(
                (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            ),
            bits,
        }
    }

    /// Creates an atomic bitmap over caller-provided zeroed word storage.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of `bits.div_ceil(64)` u64
    /// words for the lifetime of the bitmap, exclusively owned by it, zeroed,
    /// and aligned for `u64` (which matches `AtomicU64`'s layout).
    #[must_use]
    pub unsafe fn from_storage(ptr: *mut u64, bits: usize) -> Self {
        Self {
            words: AtomicStorage::Raw {
                ptr: ptr.cast::<AtomicU64>(),
                words: bits.div_ceil(64),
            },
            bits,
        }
    }

    #[inline]
    fn words(&self) -> &[AtomicU64] {
        match &self.words {
            AtomicStorage::Owned(v) => v,
            // SAFETY: `ptr` is valid for `words` AtomicU64s per the
            // `from_storage` contract (AtomicU64 is layout-identical to u64).
            AtomicStorage::Raw { ptr, words } => unsafe {
                core::slice::from_raw_parts(*ptr, *words)
            },
        }
    }

    /// Number of slots the bitmap covers.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` when the bitmap covers zero slots.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Reads the bit at `index` (acquire).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        let w = self.words()[index / 64].load(Ordering::Acquire);
        (w >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` (release).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words()[index / 64].fetch_or(1u64 << (index % 64), Ordering::Release);
    }

    /// Clears the bit at `index` (release) — the lock-free reserved→live
    /// handout transition.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn clear(&self, index: usize) {
        assert!(index < self.bits, "bit index {index} out of range");
        self.words()[index / 64].fetch_and(!(1u64 << (index % 64)), Ordering::Release);
    }

    /// Number of set bits. Each word is read atomically but the sum is not a
    /// snapshot — exact only when no thread is mutating the bitmap (the same
    /// quiescence caveat as the sharded heap's aggregate counters).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words()
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

/// Per-slot states a [`SlotStateMap`] distinguishes.
///
/// The bit pattern is `reserved:live` within the slot's 2-bit field. `10`
/// (reserved without live) never occurs: reservations are created by a CAS
/// from `Free` directly to `11` and destroyed either by the commit clearing
/// only the reserved bit (`11 → 01`) or by a CAS back to `00`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// `00` — the slot is free.
    Free,
    /// `01` — the slot is live (handed to the application).
    Live,
    /// `11` — the slot is reserved by a thread-local magazine but not yet
    /// handed out; invisible to `free`/`is_live`.
    Reserved,
}

/// A lock-free map of slot states: **two** bits per object slot, packed 32
/// slots to an `AtomicU64` word.
///
/// This is the metadata structure behind the lock-free allocation fast path.
/// The paper's one-bit-per-object bitmap (§4.1) is enough under a lock, but
/// demoting the shard `SpinLock` to the slow path means three states must be
/// distinguishable in a *single* atomic word — otherwise the free path races
/// the magazine reservation overlay (a freeing thread could observe
/// "not reserved", lose the CPU while an erroneous double free releases the
/// slot and a refill re-reserves it, then clear a bit it no longer owns).
/// Pairing the live and reserved bits makes every transition a single-word
/// atomic with no second map to consult:
///
/// | transition               | operation                         | used by |
/// |--------------------------|-----------------------------------|---------|
/// | `00 → 01` claim          | `fetch_or(live)`, won iff prior 00| alloc fast path |
/// | `00 → 11` reserve        | CAS loop                          | magazine refill (slow path) |
/// | `11 → 01` commit         | `fetch_and(!reserved)`            | magazine handout (fast path) |
/// | `01 → 00` free           | CAS loop, fails on `00`/`11`      | free fast path |
/// | `11 → 00` release        | CAS loop                          | magazine teardown (slow path) |
///
/// The claim is a plain `fetch_or` rather than a CAS loop: OR-ing the live
/// bit into `01` or `11` is a no-op, so a lost claim cannot corrupt another
/// slot's state, and the returned prior word decides the winner. One probe
/// draw therefore maps to exactly one claim attempt — probe accounting under
/// contention stays identical to the locked path's (§4.2 E[probes]).
///
/// Memory ordering: claims and commits publish with release semantics (and
/// acquire the prior owner's writes), frees release the object's contents to
/// the next claimant, and reads acquire — the same discipline the old
/// `AtomicBitmap` overlay used, now on one word.
#[derive(Debug)]
pub struct SlotStateMap {
    words: AtomicStorage,
    slots: usize,
}

// SAFETY: `Raw` storage is exclusively owned by this map for its lifetime,
// and every access goes through atomic operations.
unsafe impl Send for SlotStateMap {}
unsafe impl Sync for SlotStateMap {}

/// Even bit positions: one live bit per slot in a word.
const LIVE_BITS: u64 = 0x5555_5555_5555_5555;

impl SlotStateMap {
    /// Slots per `AtomicU64` word (two bits each).
    const PER_WORD: usize = 32;

    /// Creates a map with `slots` slots, all [`SlotState::Free`].
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Self {
            words: AtomicStorage::Owned(
                (0..slots.div_ceil(Self::PER_WORD))
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            ),
            slots,
        }
    }

    /// Words of backing storage a map over `slots` slots needs.
    #[must_use]
    pub const fn words_needed(slots: usize) -> usize {
        slots.div_ceil(Self::PER_WORD)
    }

    /// Creates a map over caller-provided zeroed word storage.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reads and writes of
    /// [`words_needed(slots)`](Self::words_needed) u64 words for the lifetime
    /// of the map, exclusively owned by it, zeroed, and aligned for `u64`.
    #[must_use]
    pub unsafe fn from_storage(ptr: *mut u64, slots: usize) -> Self {
        Self {
            words: AtomicStorage::Raw {
                ptr: ptr.cast::<AtomicU64>(),
                words: Self::words_needed(slots),
            },
            slots,
        }
    }

    #[inline]
    fn words(&self) -> &[AtomicU64] {
        match &self.words {
            AtomicStorage::Owned(v) => v,
            // SAFETY: `ptr` is valid for `words` AtomicU64s per the
            // `from_storage` contract (AtomicU64 is layout-identical to u64).
            AtomicStorage::Raw { ptr, words } => unsafe {
                core::slice::from_raw_parts(*ptr, *words)
            },
        }
    }

    /// Number of slots the map covers.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.slots
    }

    /// `true` when the map covers zero slots.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots == 0
    }

    #[inline]
    fn check(&self, index: usize) -> (usize, u32) {
        assert!(index < self.slots, "slot index {index} out of range");
        (index / Self::PER_WORD, (index % Self::PER_WORD) as u32 * 2)
    }

    /// Reads the state of slot `index` (acquire).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    #[inline]
    pub fn state(&self, index: usize) -> SlotState {
        let (word, shift) = self.check(index);
        match (self.words()[word].load(Ordering::Acquire) >> shift) & 0b11 {
            0b00 => SlotState::Free,
            0b01 => SlotState::Live,
            _ => SlotState::Reserved,
        }
    }

    /// `true` when slot `index` is [`SlotState::Live`] — reserved slots are
    /// *not* live (they have not been handed to the application).
    #[must_use]
    #[inline]
    pub fn is_live(&self, index: usize) -> bool {
        self.state(index) == SlotState::Live
    }

    /// `true` when slot `index` is not free (live or reserved) — the
    /// occupancy the probe loop and 1/M threshold see.
    #[must_use]
    #[inline]
    pub fn is_occupied(&self, index: usize) -> bool {
        self.state(index) != SlotState::Free
    }

    /// The allocation fast path's claim: `00 → 01` via one `fetch_or`.
    /// Returns `true` when this caller won the slot (it was free).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn claim_live(&self, index: usize) -> bool {
        let (word, shift) = self.check(index);
        // OR-ing the live bit into 01 (live) or 11 (reserved) changes
        // nothing, so a losing claim is harmless; the prior word decides.
        let prior = self.words()[word].fetch_or(1u64 << shift, Ordering::AcqRel);
        (prior >> shift) & 0b11 == 0b00
    }

    /// The magazine refill's reservation: `00 → 11` via CAS. Returns `true`
    /// when the reservation was taken (the slot was free).
    ///
    /// A CAS (not `fetch_or`) because OR-ing both bits into a live slot
    /// would silently turn `01` into `11`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn reserve(&self, index: usize) -> bool {
        self.transition(index, 0b00, 0b11)
    }

    /// The magazine handout's commit: `11 → 01` via `fetch_and`. The slot
    /// becomes live without a lock.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()` (always), or if the slot was not reserved
    /// (debug builds).
    #[inline]
    pub fn commit(&self, index: usize) {
        let (word, shift) = self.check(index);
        let prior = self.words()[word].fetch_and(!(1u64 << (shift + 1)), Ordering::AcqRel);
        debug_assert_eq!(
            (prior >> shift) & 0b11,
            0b11,
            "commit of slot {index} which was not reserved"
        );
    }

    /// The free fast path: `01 → 00` via CAS. Returns the state the slot was
    /// actually in — [`SlotState::Live`] means the free succeeded; `Free`
    /// (double/invalid free) and `Reserved` (not yet handed out) mean it was
    /// ignored, per §4.3.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn free(&self, index: usize) -> SlotState {
        let (word, shift) = self.check(index);
        let words = self.words();
        let mut cur = words[word].load(Ordering::Acquire);
        loop {
            match (cur >> shift) & 0b11 {
                0b00 => return SlotState::Free,
                0b01 => {}
                _ => return SlotState::Reserved,
            }
            match words[word].compare_exchange_weak(
                cur,
                cur & !(0b11u64 << shift),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return SlotState::Live,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The magazine teardown's release: `11 → 00` via CAS. Returns `true`
    /// when the reservation was released.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn release_reservation(&self, index: usize) -> bool {
        self.transition(index, 0b11, 0b00)
    }

    /// CAS loop taking slot `index` from 2-bit state `from` to `to`;
    /// `false` when the slot is observed in any other state.
    #[inline]
    fn transition(&self, index: usize, from: u64, to: u64) -> bool {
        let (word, shift) = self.check(index);
        let words = self.words();
        let mut cur = words[word].load(Ordering::Acquire);
        loop {
            if (cur >> shift) & 0b11 != from {
                return false;
            }
            let next = (cur & !(0b11u64 << shift)) | (to << shift);
            match words[word].compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of occupied (live **or** reserved) slots. Per-word reads are
    /// atomic but the sum is not a snapshot — exact only at quiescence.
    #[must_use]
    pub fn occupied_count(&self) -> usize {
        self.words()
            .iter()
            .map(|w| (w.load(Ordering::Relaxed) & LIVE_BITS).count_ones() as usize)
            .sum()
    }

    /// Number of reserved slots (same quiescence caveat).
    #[must_use]
    pub fn reserved_count(&self) -> usize {
        self.words()
            .iter()
            .map(|w| (w.load(Ordering::Relaxed) & !LIVE_BITS).count_ones() as usize)
            .sum()
    }

    /// Number of live slots (same quiescence caveat).
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.occupied_count() - self.reserved_count()
    }

    /// Iterates the indices of occupied (live or reserved) slots, in order.
    /// Each word is read once; the iteration is not a snapshot.
    pub fn iter_occupied(&self) -> IterOccupied<'_> {
        IterOccupied {
            words: self.words(),
            word_idx: 0,
            current: self
                .words()
                .first()
                .map(|w| w.load(Ordering::Relaxed) & LIVE_BITS)
                .unwrap_or(0),
            slots: self.slots,
        }
    }

    /// Iterates the indices of *live* slots only (reserved slots skipped).
    pub fn iter_live(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_occupied()
            .filter(move |&i| self.state(i) == SlotState::Live)
    }
}

/// Iterator over occupied slot indices, from [`SlotStateMap::iter_occupied`].
#[derive(Debug)]
pub struct IterOccupied<'a> {
    words: &'a [AtomicU64],
    word_idx: usize,
    current: u64,
    slots: usize,
}

impl Iterator for IterOccupied<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * SlotStateMap::PER_WORD + tz / 2;
                if idx < self.slots {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx].load(Ordering::Relaxed) & LIVE_BITS;
        }
    }
}

/// Iterator over set-bit indices, produced by [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    bits: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + tz;
                if idx < self.bits {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn new_is_all_clear() {
        let bm = Bitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert!(!bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        for i in 0..100 {
            assert!(!bm.get(i));
        }
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            bm.set(i);
            assert!(bm.get(i), "bit {i}");
            bm.clear(i);
            assert!(!bm.get(i), "bit {i}");
        }
    }

    #[test]
    fn try_set_semantics() {
        let mut bm = Bitmap::new(8);
        assert!(bm.try_set(3));
        assert!(!bm.try_set(3));
        assert!(bm.get(3));
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = Bitmap::new(200);
        for i in (0..200).step_by(3) {
            bm.set(i);
        }
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut bm = Bitmap::new(300);
        let expected = [0usize, 5, 63, 64, 128, 255, 299];
        for &i in &expected {
            bm.set(i);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = Bitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(64).set(64);
    }

    #[test]
    fn from_storage_works() {
        let mut backing = vec![0u64; 4];
        // SAFETY: `backing` outlives `bm`, is zeroed, and is not otherwise
        // accessed while `bm` lives.
        let mut bm = unsafe { Bitmap::from_storage(backing.as_mut_ptr(), 200) };
        bm.set(150);
        assert!(bm.get(150));
        assert_eq!(bm.count_ones(), 1);
        drop(bm);
        assert_ne!(backing[2], 0, "bit 150 lives in word 2");
    }

    #[test]
    fn atomic_bitmap_set_get_clear() {
        let bm = AtomicBitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert!(!bm.is_empty());
        for i in [0usize, 63, 64, 65, 129] {
            assert!(!bm.get(i));
            bm.set(i);
            assert!(bm.get(i), "bit {i}");
        }
        assert_eq!(bm.count_ones(), 5);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 4);
    }

    #[test]
    fn atomic_bitmap_over_raw_storage() {
        let mut backing = vec![0u64; 4];
        // SAFETY: `backing` outlives `bm`, is zeroed, and is not otherwise
        // accessed while `bm` lives.
        let bm = unsafe { AtomicBitmap::from_storage(backing.as_mut_ptr(), 200) };
        bm.set(150);
        assert!(bm.get(150));
        assert_eq!(bm.count_ones(), 1);
        drop(bm);
        assert_ne!(backing[2], 0, "bit 150 lives in word 2");
    }

    #[test]
    fn atomic_bitmap_concurrent_disjoint_bits() {
        let bm = std::sync::Arc::new(AtomicBitmap::new(512));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let bm = std::sync::Arc::clone(&bm);
            handles.push(std::thread::spawn(move || {
                for i in (t..512).step_by(8) {
                    bm.set(i);
                }
                for i in (t..512).step_by(16) {
                    bm.clear(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn atomic_bitmap_out_of_range_panics() {
        AtomicBitmap::new(10).set(10);
    }

    #[test]
    fn slot_state_transitions() {
        let map = SlotStateMap::new(100);
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
        // Free → claim → Live.
        assert_eq!(map.state(5), SlotState::Free);
        assert!(map.claim_live(5));
        assert_eq!(map.state(5), SlotState::Live);
        assert!(map.is_live(5) && map.is_occupied(5));
        // Claiming a live slot loses without corrupting it.
        assert!(!map.claim_live(5));
        assert_eq!(map.state(5), SlotState::Live);
        // Free → reserve → Reserved (occupied but not live).
        assert!(map.reserve(6));
        assert_eq!(map.state(6), SlotState::Reserved);
        assert!(!map.is_live(6) && map.is_occupied(6));
        // Reserved slots can be neither claimed nor re-reserved nor freed.
        assert!(!map.claim_live(6));
        assert!(!map.reserve(6));
        assert_eq!(map.free(6), SlotState::Reserved);
        assert_eq!(map.state(6), SlotState::Reserved);
        // Commit hands the reservation out: Reserved → Live.
        map.commit(6);
        assert_eq!(map.state(6), SlotState::Live);
        // Free only succeeds on a live slot, exactly once.
        assert_eq!(map.free(6), SlotState::Live);
        assert_eq!(map.state(6), SlotState::Free);
        assert_eq!(map.free(6), SlotState::Free);
        // Release only succeeds on a reserved slot.
        assert!(map.reserve(7));
        assert!(map.release_reservation(7));
        assert_eq!(map.state(7), SlotState::Free);
        assert!(!map.release_reservation(7));
        assert!(map.claim_live(7));
        assert!(!map.release_reservation(7));
        assert_eq!(map.state(7), SlotState::Live);
    }

    #[test]
    fn slot_state_counts_and_iteration() {
        let map = SlotStateMap::new(130);
        for i in [0usize, 31, 32, 33, 129] {
            assert!(map.claim_live(i));
        }
        for i in [1usize, 64] {
            assert!(map.reserve(i));
        }
        assert_eq!(map.occupied_count(), 7);
        assert_eq!(map.reserved_count(), 2);
        assert_eq!(map.live_count(), 5);
        let occupied: Vec<usize> = map.iter_occupied().collect();
        assert_eq!(occupied, vec![0, 1, 31, 32, 33, 64, 129]);
        let live: Vec<usize> = map.iter_live().collect();
        assert_eq!(live, vec![0, 31, 32, 33, 129]);
    }

    #[test]
    fn slot_state_map_over_raw_storage() {
        let mut backing = vec![0u64; SlotStateMap::words_needed(100)];
        // SAFETY: `backing` outlives `map`, is zeroed, and is not otherwise
        // accessed while `map` lives.
        let map = unsafe { SlotStateMap::from_storage(backing.as_mut_ptr(), 100) };
        assert!(map.claim_live(40));
        assert!(map.is_live(40));
        assert_eq!(map.occupied_count(), 1);
        drop(map);
        assert_ne!(backing[1], 0, "slot 40's pair lives in word 1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_state_map_out_of_range_panics() {
        SlotStateMap::new(10).claim_live(10);
    }

    /// The targeted two-thread claim race: every round, both threads race a
    /// `claim_live` on the *same* slot. Exactly one must win, and the loser's
    /// failed claim must leave the winner's state intact.
    #[test]
    fn two_thread_claim_race_has_exactly_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering as O};
        use std::sync::{Arc, Barrier};
        const ROUNDS: usize = 2000;
        let map = Arc::new(SlotStateMap::new(ROUNDS));
        let barrier = Arc::new(Barrier::new(2));
        let wins = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        std::thread::scope(|s| {
            for t in 0..2 {
                let map = Arc::clone(&map);
                let barrier = Arc::clone(&barrier);
                let wins = Arc::clone(&wins);
                s.spawn(move || {
                    for slot in 0..ROUNDS {
                        barrier.wait();
                        if map.claim_live(slot) {
                            wins[t].fetch_add(1, O::Relaxed);
                        }
                    }
                });
            }
        });
        let (a, b) = (wins[0].load(O::Relaxed), wins[1].load(O::Relaxed));
        assert_eq!(a + b, ROUNDS, "every contested slot has exactly one winner");
        assert_eq!(map.occupied_count(), ROUNDS);
        for slot in 0..ROUNDS {
            assert_eq!(map.state(slot), SlotState::Live, "slot {slot}");
        }
    }

    /// Free racing reserve on the same slot must never corrupt the state:
    /// the free either beats the reservation (slot freed, then reserved) or
    /// observes it and is ignored — the ABA the paired encoding closes.
    #[test]
    fn free_vs_reserve_race_keeps_state_consistent() {
        use std::sync::{Arc, Barrier};
        const ROUNDS: usize = 2000;
        let map = Arc::new(SlotStateMap::new(ROUNDS));
        for slot in 0..ROUNDS {
            assert!(map.claim_live(slot));
        }
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|s| {
            let freer = {
                let map = Arc::clone(&map);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut freed = 0usize;
                    for slot in 0..ROUNDS {
                        barrier.wait();
                        if map.free(slot) == SlotState::Live {
                            freed += 1;
                        }
                    }
                    freed
                })
            };
            let reserver = {
                let map = Arc::clone(&map);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut reserved = 0usize;
                    for slot in 0..ROUNDS {
                        barrier.wait();
                        // Emulates a racing refill: free the slot first (an
                        // erroneous double free may have won), then try to
                        // re-reserve it.
                        let _ = map.free(slot);
                        if map.reserve(slot) {
                            reserved += 1;
                        }
                    }
                    reserved
                })
            };
            let freed = freer.join().expect("freer");
            let reserved = reserver.join().expect("reserver");
            // Whatever the interleaving, the end state of every slot is
            // either Free (both frees lost to nothing; reserve lost to a
            // pending live state — impossible here) or Reserved.
            assert_eq!(map.reserved_count(), reserved);
            assert!(freed <= ROUNDS);
            for slot in 0..ROUNDS {
                assert_ne!(map.state(slot), SlotState::Live, "slot {slot} leaked");
            }
            assert_eq!(map.occupied_count(), reserved);
        });
    }

    proptest! {
        /// The bitmap behaves exactly like a set of indices.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec((0usize..512, any::<bool>()), 1..300)) {
            let mut bm = Bitmap::new(512);
            let mut model: HashSet<usize> = HashSet::new();
            for (idx, set) in ops {
                if set {
                    bm.set(idx);
                    model.insert(idx);
                } else {
                    bm.clear(idx);
                    model.remove(&idx);
                }
            }
            prop_assert_eq!(bm.count_ones(), model.len());
            let got: HashSet<usize> = bm.iter_ones().collect();
            prop_assert_eq!(got, model);
        }

        #[test]
        fn count_matches_individual_gets(idxs in proptest::collection::hash_set(0usize..256, 0..64)) {
            let mut bm = Bitmap::new(256);
            for &i in &idxs {
                bm.set(i);
            }
            let by_get = (0..256).filter(|&i| bm.get(i)).count();
            prop_assert_eq!(by_get, idxs.len());
            prop_assert_eq!(bm.count_ones(), idxs.len());
        }
    }
}
