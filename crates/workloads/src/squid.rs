//! The Squid web-cache case study (§7.3.2 / §2).
//!
//! "Version 2.3s5 of the Squid web cache server has a buffer overflow error
//! that can be triggered by an ill-formed input. When faced with this input
//! and running with either the GNU libc allocator or the Boehm-Demers-
//! Weiser collector, Squid crashes with a segmentation fault. Using DieHard
//! in stand-alone mode, the overflow has no effect."
//!
//! The real bug (`ftpBuildTitleUrl`) undersizes a heap buffer and `strcpy`s
//! a request-derived string into it. This module models a miniature cache
//! server: each request allocates a 256-byte **payload**, a 64-byte
//! **title** buffer, and a 64-byte **entry** holding a heap pointer to the
//! payload. The request's URL is copied into the title with an unbounded
//! `strcpy`. A well-formed URL fits; the ill-formed one runs 200 bytes past
//! the title — and what sits there is the allocator's choice:
//!
//! * **Lea/libc**: the entry chunk is directly adjacent (boundary tags and
//!   all); its payload pointer becomes `0x4141…` and the next dereference
//!   segfaults — or the smashed boundary tag kills a later `free`.
//! * **BDW GC**: titles and entries share a 64-byte block; the neighbouring
//!   entry's pointer is smashed the same way.
//! * **DieHard**: the overflow lands at a random spot in a half-empty
//!   region — with high probability only free space dies.

use diehard_runtime::ops::{Op, Program};

/// The undersized title buffer, as in the Squid bug.
pub const TITLE_BUF: usize = 64;

/// A request the miniature cache serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The URL; the buggy code path copies this into the 64-byte title
    /// buffer without a bound.
    pub url: Vec<u8>,
}

impl Request {
    /// A well-formed request (URL fits the buffer).
    #[must_use]
    pub fn well_formed(i: usize) -> Self {
        Self {
            url: format!("http://example{:02}.com/idx", i % 100).into_bytes(),
        }
    }

    /// The ill-formed request that triggers the overflow: a URL far longer
    /// than the title buffer.
    #[must_use]
    pub fn ill_formed() -> Self {
        Self {
            url: {
                let mut u = b"ftp://".to_vec();
                u.extend(std::iter::repeat_n(b'A', 256));
                u
            },
        }
    }
}

/// Builds the squid-sim program: process `requests` in order, echoing each
/// title and serving each payload through its stored pointer, so clobbered
/// pointers crash and clobbered data is observable in the output.
#[must_use]
pub fn build_program(requests: &[Request]) -> Program {
    let mut ops: Vec<Op> = Vec::new();
    ops.push(Op::Print {
        bytes: b"squid-sim v0\n".to_vec(),
    });
    let mut next_id: u32 = 0;
    for (i, req) in requests.iter().enumerate() {
        let payload = next_id;
        let title = next_id + 1;
        let entry = next_id + 2;
        next_id += 3;
        ops.push(Op::Alloc {
            id: payload,
            size: 256,
        });
        ops.push(Op::Write {
            id: payload,
            offset: 0,
            len: 256,
            seed: (i % 250) as u8,
        });
        ops.push(Op::Alloc {
            id: title,
            size: TITLE_BUF,
        });
        // The entry is title-sized so size-segregating allocators (the GC)
        // also place it among titles; it stores the payload pointer.
        ops.push(Op::Alloc {
            id: entry,
            size: TITLE_BUF,
        });
        ops.push(Op::WritePtr {
            dst: entry,
            offset: 0,
            src: payload,
        });
        // The buggy copy: strcpy(title, url) with no bound.
        ops.push(Op::Strcpy {
            id: title,
            payload: req.url.clone(),
        });
        // Serve the request: echo the title, then the payload via the
        // entry's pointer.
        ops.push(Op::Read {
            id: title,
            offset: 0,
            len: 24,
        });
        ops.push(Op::ReadThroughPtr {
            dst: entry,
            offset: 0,
            len: 64,
        });
        // Entries churn: retire an older request's objects periodically.
        if i >= 4 && i % 2 == 0 {
            let base = (i as u32 - 4) * 3;
            for id in [base, base + 1, base + 2] {
                ops.push(Op::Free { id });
                ops.push(Op::Forget { id });
            }
        }
    }
    ops.push(Op::Print {
        bytes: b"shutdown\n".to_vec(),
    });
    Program::new("squid-sim", ops)
}

/// The paper's scenario: a stream of normal traffic with one ill-formed
/// request in the middle.
#[must_use]
pub fn attack_scenario(normal_requests: usize) -> Program {
    let mut requests: Vec<Request> = (0..normal_requests).map(Request::well_formed).collect();
    requests.insert(normal_requests / 2, Request::ill_formed());
    build_program(&requests)
}

/// A clean scenario with no ill-formed input (control run).
#[must_use]
pub fn clean_scenario(normal_requests: usize) -> Program {
    let requests: Vec<Request> = (0..normal_requests).map(Request::well_formed).collect();
    build_program(&requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diehard_core::config::HeapConfig;
    use diehard_runtime::{System, Verdict};

    #[test]
    fn clean_traffic_correct_everywhere() {
        let prog = clean_scenario(20);
        for system in [
            System::Libc,
            System::BdwGc,
            System::DieHard {
                config: HeapConfig::default(),
                seed: 1,
            },
        ] {
            assert!(
                system.evaluate(&prog).is_correct(),
                "{} must serve clean traffic",
                system.name()
            );
        }
    }

    #[test]
    fn ill_formed_request_kills_libc() {
        let prog = attack_scenario(20);
        let v = System::Libc.evaluate(&prog);
        assert!(
            matches!(v, Verdict::Crash | Verdict::Hang),
            "libc squid must crash, got {v:?}"
        );
    }

    #[test]
    fn ill_formed_request_kills_gc_too() {
        // The paper: BDW also crashes — the overflow corrupts adjacent live
        // *application* data (an entry's payload pointer), not GC metadata.
        let prog = attack_scenario(20);
        let v = System::BdwGc.evaluate(&prog);
        assert!(
            matches!(v, Verdict::Crash | Verdict::Hang),
            "BDW squid must crash, got {v:?}"
        );
    }

    #[test]
    fn diehard_survives_the_attack() {
        // "Using DieHard in stand-alone mode, the overflow has no effect."
        let prog = attack_scenario(20);
        let mut correct = 0;
        for seed in 0..10 {
            let v = System::DieHard {
                config: HeapConfig::default(),
                seed,
            }
            .evaluate(&prog);
            if v.is_correct() {
                correct += 1;
            }
        }
        assert!(correct >= 9, "DieHard correct only {correct}/10 runs");
    }

    #[test]
    fn attack_program_shape() {
        let prog = attack_scenario(10);
        assert_eq!(prog.alloc_count(), 33, "11 requests x 3 objects");
        assert!(prog
            .ops
            .iter()
            .any(|o| matches!(o, Op::Strcpy { payload, .. } if payload.len() > TITLE_BUF)));
    }
}
