//! Replicated DieHard end to end (§5): in-process replicas with 4 KB
//! output voting, then the real subprocess launcher driving shell replicas
//! through pipes.
//!
//! Run: `cargo run --example replicated_vote`

use diehard::prelude::*;
use diehard::replicate::{run_replicated, LaunchConfig};

fn main() {
    println!("== Replicated DieHard: voting on program output ==\n");

    // --- In-process replicas over simulated heaps -----------------------
    // A correct program: all replicas agree despite different random heaps.
    let clean = diehard::workloads::profile_by_name("espresso")
        .expect("espresso")
        .generate(0.01, 7);
    let set = ReplicaSet::new(3, 0xB07E, HeapConfig::default());
    let run = set.run(&clean);
    println!(
        "clean espresso across 3 replicas: {:?}",
        summarize(&run.outcome)
    );

    // A buggy program: a single-object overflow. Each replica is hit (or
    // not) independently; the majority commits the correct output and the
    // unlucky replica is killed.
    let mut ops = vec![Op::Alloc { id: 0, size: 8 }];
    for i in 1..50u32 {
        ops.push(Op::Alloc { id: i, size: 8 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 8,
            seed: 2,
        });
    }
    ops.push(Op::Write {
        id: 0,
        offset: 0,
        len: 16,
        seed: 3,
    }); // overflow
    for i in 1..50u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 8,
        });
    }
    let buggy = Program::new("overflow", ops);
    let oracle = oracle_output(&buggy);
    let run = set.run(&buggy);
    println!(
        "overflowing program:              {:?} (verdict vs oracle: {})",
        summarize(&run.outcome),
        run.verdict(&oracle)
    );

    // An uninitialized read: every replica's random fill differs, no two
    // agree, the voter terminates — detection, not silent corruption.
    let uninit = Program::new(
        "uninit",
        vec![
            Op::Alloc { id: 0, size: 32 },
            Op::Read {
                id: 0,
                offset: 0,
                len: 8,
            },
        ],
    );
    let run = set.run(&uninit);
    println!(
        "uninitialized-read program:       {:?}\n",
        summarize(&run.outcome)
    );

    // --- Subprocess replication (the `diehard` launcher's machinery) ----
    if cfg!(unix) {
        println!("subprocess replication (3 shell replicas, stdin broadcast, 4 KB voting):");
        let cfg = LaunchConfig::new(
            3,
            vec!["/bin/sh".into(), "-c".into(), "tr a-z A-Z".into()],
            b"replicas of a deterministic filter agree\n".to_vec(),
        );
        match run_replicated(&cfg) {
            Ok(exit) => println!(
                "  output: {:?} (diverged: {}, killed: {:?})",
                String::from_utf8_lossy(&exit.output),
                exit.diverged,
                exit.killed
            ),
            Err(e) => println!("  launch failed: {e}"),
        }

        // Seed-dependent output = simulated memory-error divergence.
        let cfg = LaunchConfig::new(
            3,
            vec![
                "/bin/sh".into(),
                "-c".into(),
                "echo output-$DIEHARD_SEED".into(),
            ],
            Vec::new(),
        );
        match run_replicated(&cfg) {
            Ok(exit) => println!(
                "  seed-dependent replicas: diverged = {} (voter terminated the run)",
                exit.diverged
            ),
            Err(e) => println!("  launch failed: {e}"),
        }
    }
}

fn summarize(outcome: &ReplicatedOutcome) -> String {
    match outcome {
        ReplicatedOutcome::Agreed(out) => format!("agreed on {} output bytes", out.len()),
        ReplicatedOutcome::Divergence { at_chunk } => {
            format!("DIVERGENCE at chunk {at_chunk} — terminated")
        }
        ReplicatedOutcome::AllDied => "all replicas died".to_string(),
    }
}
