//! # diehard-inject
//!
//! The §7.3.1 fault-injection methodology, reimplemented:
//!
//! * [`trace::AllocLog`] — the tracing allocator's allocation log
//!   (alloc-time / free-time pairs, sorted by allocation time);
//! * [`inject::inject`] — the fault injector, a deterministic program
//!   rewrite producing buffer overflows (under-allocation), dangling
//!   pointers (premature frees), double frees, invalid frees, and
//!   uninitialized reads at configured rates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod inject;
pub mod trace;

pub use inject::{inject, Injection};
pub use trace::{AllocLog, AllocRecord};
