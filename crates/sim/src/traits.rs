//! The allocator interface every simulated runtime implements.
//!
//! The executor in `diehard-runtime` drives workloads against anything that
//! implements [`SimAllocator`]: DieHard itself, the Lea/dlmalloc-style
//! baseline, the conservative collector, the Windows-style allocator, and
//! the infinite-heap oracle.

use crate::arena::PagedArena;
use crate::fault::Fault;

/// A simulated address (byte offset into the owning arena).
pub type Addr = usize;

/// A memory allocator operating inside a simulated address space.
///
/// Faults (`Err(Fault)`) model the allocator itself crashing — e.g.
/// dlmalloc dereferencing a corrupted free-list pointer. Refusals
/// (`Ok(None)` from `malloc`) model returning `NULL`.
pub trait SimAllocator {
    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &'static str;

    /// Allocates `size` bytes; `Ok(None)` models `malloc` returning `NULL`.
    ///
    /// `roots` are the application's live pointers, made visible for
    /// collectors that trace (ignored by manual allocators).
    ///
    /// # Errors
    ///
    /// A [`Fault`] when the allocator crashes on corrupted metadata.
    fn malloc(&mut self, size: usize, roots: &[Addr]) -> Result<Option<Addr>, Fault>;

    /// Frees the object at `addr`.
    ///
    /// # Errors
    ///
    /// A [`Fault`] when the free operation crashes (e.g. unlinking through
    /// a corrupted boundary tag). Allocators that *validate* frees (DieHard)
    /// or ignore them (GC) return `Ok(())` for bogus input instead.
    fn free(&mut self, addr: Addr) -> Result<(), Fault>;

    /// The simulated memory this allocator serves from.
    fn memory(&self) -> &PagedArena;

    /// Mutable access to the simulated memory.
    fn memory_mut(&mut self) -> &mut PagedArena;

    /// The *usable* size of the object at `addr`, when the allocator can
    /// cheaply determine it (DieHard: the class size; Lea: the chunk size).
    /// Used by the bounded string functions (§4.4); `None` means unknown.
    fn usable_size(&self, addr: Addr) -> Option<usize> {
        let _ = addr;
        None
    }

    /// Bytes of memory the allocator currently holds live (diagnostics).
    fn live_bytes(&self) -> usize {
        0
    }

    /// A work counter incremented by the allocator's inner loops (probes,
    /// free-list traversals, mark steps). The benchmark harness uses it as
    /// a deterministic, platform-independent cost model alongside wall-clock
    /// time.
    fn work(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial bump allocator proving the trait is object-safe and the
    /// defaults are usable.
    #[derive(Debug)]
    struct Bump {
        arena: PagedArena,
        top: usize,
    }

    impl SimAllocator for Bump {
        fn name(&self) -> &'static str {
            "bump"
        }

        fn malloc(&mut self, size: usize, _roots: &[Addr]) -> Result<Option<Addr>, Fault> {
            let addr = self.top;
            self.top += size;
            Ok(Some(addr))
        }

        fn free(&mut self, _addr: Addr) -> Result<(), Fault> {
            Ok(())
        }

        fn memory(&self) -> &PagedArena {
            &self.arena
        }

        fn memory_mut(&mut self) -> &mut PagedArena {
            &mut self.arena
        }
    }

    #[test]
    fn trait_is_object_safe_with_defaults() {
        let mut b = Bump {
            arena: PagedArena::new(1 << 16),
            top: 0,
        };
        let dyn_ref: &mut dyn SimAllocator = &mut b;
        let a = dyn_ref.malloc(16, &[]).unwrap().unwrap();
        dyn_ref.memory_mut().write(a, b"hi").unwrap();
        assert_eq!(dyn_ref.usable_size(a), None);
        assert_eq!(dyn_ref.work(), 0);
        assert_eq!(dyn_ref.name(), "bump");
        dyn_ref.free(a).unwrap();
    }
}
