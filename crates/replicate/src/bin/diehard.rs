//! The `diehard` launcher (§5.1).
//!
//! "The diehard command takes three arguments: the path to the replicated
//! variant of the DieHard memory allocator (a dynamically-loadable
//! library), the number of replicas to create, and the application name."
//!
//! Usage:
//!
//! ```text
//! diehard [-n REPLICAS] [--preload LIB] [--seed SEED] -- COMMAND [ARGS...]
//! ```
//!
//! Standard input is broadcast to all replicas; standard output carries the
//! voted output. Exit status: 0 on agreement, 2 on detected divergence
//! (the uninitialized-read signal), 1 on usage or launch errors.

use diehard_replicate::{run_replicated, LaunchConfig};
use std::io::{Read, Write};

fn usage() -> ! {
    eprintln!(
        "usage: diehard [-n REPLICAS] [--preload LIB] [--seed SEED] -- COMMAND [ARGS...]\n\
         \n\
         Runs COMMAND in REPLICAS differently-seeded replicas (default 3),\n\
         broadcasting stdin and voting on stdout in 4 KB chunks.\n\
         Each replica receives a unique DIEHARD_SEED; --preload exports\n\
         LD_PRELOAD for C binaries using libdiehard-style interposition."
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut replicas = 3usize;
    let mut preload: Option<String> = None;
    let mut master_seed: Option<u64> = None;
    let mut command: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--replicas" => {
                i += 1;
                replicas = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--preload" => {
                i += 1;
                preload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                master_seed = args.get(i).and_then(|s| s.parse().ok());
                if master_seed.is_none() {
                    usage();
                }
            }
            "--" => {
                command = args[i + 1..].to_vec();
                break;
            }
            "-h" | "--help" => usage(),
            other if command.is_empty() && !other.starts_with('-') => {
                command = args[i..].to_vec();
                break;
            }
            _ => usage(),
        }
        i += 1;
    }
    if command.is_empty() || replicas == 0 || replicas == 2 {
        usage();
    }

    let mut input = Vec::new();
    if std::io::stdin().read_to_end(&mut input).is_err() {
        eprintln!("diehard: failed to read standard input");
        std::process::exit(1);
    }

    let mut config = LaunchConfig::new(replicas, command, input);
    config.preload = preload;
    if let Some(seed) = master_seed {
        config.seeds = (0..replicas as u64)
            .map(|i| diehard_core::rng::splitmix(seed ^ (i + 1)))
            .collect();
    }

    match run_replicated(&config) {
        Ok(exit) => {
            let mut stdout = std::io::stdout();
            let _ = stdout.write_all(&exit.output);
            let _ = stdout.flush();
            if exit.diverged {
                eprintln!("diehard: replicas diverged (possible uninitialized read); terminated");
                std::process::exit(2);
            }
            if !exit.killed.is_empty() {
                eprintln!(
                    "diehard: killed {} disagreeing replica(s)",
                    exit.killed.len()
                );
            }
        }
        Err(e) => {
            eprintln!("diehard: launch failed: {e}");
            std::process::exit(1);
        }
    }
}
