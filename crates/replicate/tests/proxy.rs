//! Loopback integration tests for the replicated TCP proxy: many
//! concurrent voted sessions over one reactor, a corrupt replica outvoted
//! mid-connection, slow-reader backpressure, mid-stream client
//! disconnects, and an unresolvable response tie.

#![cfg(unix)]

use diehard_replicate::net::Listener;
use diehard_replicate::proxy::{Proxy, ProxySummary};
use diehard_replicate::LaunchConfig;
use diehard_workloads::client::{abandon_mid_stream, drive, Pace};
use diehard_workloads::server::{self, ServerRequest};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// The server protocol with an injectable fault: when `bad_when` (a shell
/// condition over `$DIEHARD_SEED`) holds, `ECHO poison*` answers `KO ...`
/// instead of `OK ...` — a same-length corruption, so chunk alignment is
/// preserved and only the vote can tell the replicas apart. Every other
/// request, and every replica outside `bad_when`, is the byte-exact
/// [`server::SERVER_SCRIPT`] behavior.
fn poisonable_server(bad_when: &str) -> Vec<String> {
    let script = format!(
        r#"if {bad_when}; then
  while IFS= read -r line; do
    case "$line" in
      "ECHO poison"*) printf 'KO %s\n' "${{line#ECHO }}";;
      "ECHO "*) printf 'OK %s\n' "${{line#ECHO }}";;
      "PRODUCE "*) n="${{line#PRODUCE }}"; i=0
        while [ "$i" -lt "$n" ]; do printf 'DATA %08d\n' "$i"; i=$((i+1)); done;;
      "QUIT") exit 0;;
      *) printf 'ERR\n';;
    esac
  done
else
{server}
fi"#,
        server = server::SERVER_SCRIPT
    );
    vec!["/bin/sh".into(), "-c".into(), script]
}

/// Spawns `proxy.run` on its own thread; returns (port, stop flag, handle).
type ProxyHandle = std::thread::JoinHandle<io::Result<ProxySummary>>;

fn spawn_proxy(mut proxy: Proxy) -> (u16, Arc<AtomicBool>, ProxyHandle) {
    let port = proxy.local_port().expect("bound port");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || proxy.run(&flag));
    (port, stop, handle)
}

fn stop_and_join(stop: &AtomicBool, handle: ProxyHandle) -> ProxySummary {
    stop.store(true, Ordering::Release);
    handle.join().expect("proxy thread").expect("reactor ran")
}

#[test]
fn concurrent_connections_vote_and_outvote_a_corrupt_replica() {
    // The acceptance scenario: 10 concurrent clients, each served by its
    // own 3-replica server set (seeds 1/7/2 reused per connection). Every
    // connection's seed-7 replica runs the corruptible script, but only
    // connection 3's trace carries the "poison" trigger — so exactly one
    // connection sees its replica diverge mid-run, is outvoted 2-1 at that
    // chunk's barrier, and keeps streaming from the survivors, while every
    // other connection stays byte-exact end to end.
    let mut config = LaunchConfig::new(
        3,
        poisonable_server(r#"[ "$DIEHARD_SEED" = "7" ]"#),
        Vec::new(),
    );
    config.seeds = vec![1, 7, 2];
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let (port, stop, handle) = spawn_proxy(proxy);

    const CLIENTS: usize = 10;
    const POISONED: usize = 3;
    let traces: Vec<Vec<ServerRequest>> = (0..CLIENTS)
        .map(|i| {
            if i == POISONED {
                // The poisoned echo lands in chunk 0; the 3,000-line burst
                // after it (~39 KB, ≈ 10 chunks) proves the kill happens
                // mid-run with the survivors still streaming.
                vec![
                    ServerRequest::Echo("poison-trigger-0001".into()),
                    ServerRequest::Produce(3000),
                    ServerRequest::Quit,
                ]
            } else {
                server::trace(0xACC_E57 ^ (i as u64), 30)
            }
        })
        .collect();

    let gate = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = traces
        .iter()
        .enumerate()
        .map(|(i, requests)| {
            let requests = requests.clone();
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait(); // all connections in flight together
                let response = drive(port, &requests, Pace::full()).expect("client I/O");
                (i, requests, response)
            })
        })
        .collect();
    for client in clients {
        let (i, requests, response) = client.join().expect("client thread");
        assert_eq!(
            response,
            server::expected_output(&requests),
            "connection {i} must receive the exact voted transcript"
        );
    }

    let summary = stop_and_join(&stop, handle);
    assert_eq!(summary.accepted, CLIENTS as u64);
    assert_eq!(summary.diverged, 0, "a 2-1 outvote is not a divergence");
    assert_eq!(summary.aborted, 0);
    let killed: Vec<_> = summary
        .reports
        .iter()
        .filter(|r| r.outcome.as_ref().is_some_and(|o| !o.killed.is_empty()))
        .collect();
    assert_eq!(killed.len(), 1, "exactly one connection loses a replica");
    let outcome = killed[0].outcome.as_ref().unwrap();
    assert_eq!(outcome.killed, vec![1], "the seed-7 replica is outvoted");
    assert_eq!(outcome.exit_code, Some(0), "survivors agree on exit 0");
    let poisoned_len = server::expected_output(&traces[POISONED]).len() as u64;
    assert_eq!(outcome.committed, poisoned_len);
    for report in &summary.reports {
        let outcome = report.outcome.as_ref().expect("no aborts in this test");
        assert!(!outcome.diverged);
        assert_eq!(outcome.exit_code, Some(0));
    }
}

#[test]
fn slow_reader_backpressure_keeps_buffers_bounded() {
    // One client drains a ~137 KB burst 512 bytes at a time with a pause
    // between reads. The proxy must not absorb the stream: its outbound
    // queue stays under cap + one chunk, and the session's own buffers
    // stay under the (2 × replicas + 1) × chunk bound — the replicas are
    // throttled by the kernel pipes instead.
    let chunk = 1024usize;
    let cap = 4 * chunk;
    let config = LaunchConfig::new(3, poisonable_server("false"), Vec::new()).with_chunk(chunk);
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config)
        .expect("chunk valid")
        .with_out_cap(cap);
    let (port, stop, handle) = spawn_proxy(proxy);

    let requests = vec![ServerRequest::Produce(10_500), ServerRequest::Quit];
    let expected = server::expected_output(&requests);
    assert!(expected.len() > 128 * 1024, "must span many barriers");
    let response =
        drive(port, &requests, Pace::slow(512, Duration::from_micros(200))).expect("client I/O");
    assert_eq!(response, expected, "slow reading must not corrupt the vote");

    let summary = stop_and_join(&stop, handle);
    let report = &summary.reports[0];
    let outcome = report.outcome.as_ref().expect("session completed");
    assert_eq!(outcome.committed, expected.len() as u64);
    assert!(
        outcome.peak_buffered <= (2 * 3 + 1) * chunk,
        "session peak {} exceeds the (2·replicas+1)×chunk bound {}",
        outcome.peak_buffered,
        (2 * 3 + 1) * chunk
    );
    assert!(
        report.out_peak <= cap + chunk,
        "outbound queue peak {} exceeds cap {} + one chunk",
        report.out_peak,
        cap
    );
}

#[test]
fn mid_stream_disconnect_reaps_only_its_own_session() {
    // Two connections: a well-behaved client streaming a long trace, and a
    // client that sends a torn request prefix (a completed PRODUCE burst
    // plus half a line) and vanishes without reading. The proxy's writes
    // to the dead socket fail, that session is aborted — its replicas
    // SIGKILLed and reaped — and the good connection's transcript is
    // untouched. The run() return itself proves the reap: it joins every
    // replica before reporting.
    let mut config = LaunchConfig::new(
        3,
        poisonable_server(r#"[ "$DIEHARD_SEED" = "7" ]"#),
        Vec::new(),
    );
    config.seeds = vec![1, 7, 2];
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let (port, stop, handle) = spawn_proxy(proxy);

    let doomed = vec![
        ServerRequest::Produce(20_000), // ~260 KB the client will never read
        ServerRequest::Echo("never-sent".into()),
        ServerRequest::Quit,
    ];
    let torn = server::request_stream(&[doomed[0].clone()]).len() + 7;
    abandon_mid_stream(port, &doomed, torn).expect("connect");

    let requests = server::trace(0xD15C0, 60);
    let response = drive(port, &requests, Pace::full()).expect("client I/O");
    assert_eq!(
        response,
        server::expected_output(&requests),
        "the surviving connection must stay byte-exact"
    );

    // Give the abort a moment to surface before stopping the reactor.
    std::thread::sleep(Duration::from_millis(300));
    let summary = stop_and_join(&stop, handle);
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.aborted, 1, "exactly the vanished client's session");
    assert_eq!(summary.diverged, 0);
    let good: Vec<_> = summary.reports.iter().filter(|r| !r.aborted).collect();
    assert_eq!(good.len(), 1);
    let outcome = good[0].outcome.as_ref().expect("finished cleanly");
    assert!(!outcome.diverged);
    assert_eq!(outcome.exit_code, Some(0));
    assert_eq!(
        outcome.committed,
        server::expected_output(&requests).len() as u64
    );
}

#[test]
fn response_tie_closes_the_connection_with_divergence() {
    // Four replicas, seeds 1/7/2/8; seeds 7 and 8 run the corrupt branch.
    // The poisoned echo splits the first response chunk 2-2 — no strict
    // plurality, committing either side would be arbitrary — so the vote
    // reports divergence, the session SIGKILLs all replicas, and the
    // client sees the committed prefix (here: nothing past the divergent
    // chunk) then EOF.
    let mut config = LaunchConfig::new(
        4,
        poisonable_server(r#"[ "$DIEHARD_SEED" = "7" ] || [ "$DIEHARD_SEED" = "8" ]"#),
        Vec::new(),
    );
    config.seeds = vec![1, 7, 2, 8];
    let listener = Listener::bind_loopback(0).expect("bind");
    let proxy = Proxy::new(listener, config).expect("chunk valid");
    let (port, stop, handle) = spawn_proxy(proxy);

    let requests = vec![
        ServerRequest::Echo("poison-tie".into()),
        ServerRequest::Produce(2000),
        ServerRequest::Quit,
    ];
    let expected = server::expected_output(&requests);
    let response = drive(port, &requests, Pace::full()).expect("client I/O");
    assert!(
        response.len() < expected.len(),
        "a tied vote must cut the stream short ({} of {} bytes)",
        response.len(),
        expected.len()
    );
    assert!(
        expected.starts_with(&response),
        "whatever was committed before the tie must be quorum bytes"
    );

    let summary = stop_and_join(&stop, handle);
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.diverged, 1, "the tie must be logged as divergence");
    let outcome = summary.reports[0].outcome.as_ref().expect("finalized");
    assert!(outcome.diverged);
    assert_eq!(outcome.exit_code, None, "no quorum, no agreed status");
    assert_eq!(outcome.committed, response.len() as u64);
}
