//! The DieHard allocation engine: twelve randomized partitions behind the
//! offset arithmetic of `DieHardMalloc`/`DieHardFree` (Figure 2).
//!
//! The engine is *memory-free*: it decides where objects live (as byte
//! offsets inside the heap span) and validates frees, but never reads or
//! writes the heap itself. The simulated heap maps offsets into an arena;
//! the real allocator maps them into an `mmap`ed region. Both therefore
//! share one implementation of the paper's placement and validation logic.

use crate::config::{ConfigError, FillPolicy, HeapConfig, HeapGeometry};
use crate::partition::{AtomicPartition, Partition};
use crate::rng::{stream_seed, Mwc};
use crate::size_class::{SizeClass, NUM_CLASSES};
use core::sync::atomic::{AtomicU64, Ordering};

/// A small-object allocation: its size class and slot index.
///
/// The byte offset of the object inside the heap span is
/// `region_base(class) + (index << class.shift())`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// The size class whose region holds the object.
    pub class: SizeClass,
    /// The slot index within that region.
    pub index: usize,
}

impl Slot {
    /// The object's byte size (the rounded, power-of-two class size).
    #[must_use]
    pub fn size(&self) -> usize {
        self.class.object_size()
    }
}

/// The result of `DieHardFree`'s validation pipeline (§4.3). Erroneous frees
/// are *ignored*, never fatal; the variants record why for stats and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The object was live and is now free.
    Freed(Slot),
    /// The offset lies outside the small-object heap span; the caller should
    /// consult the large-object table (paper: "indicating it may be a large
    /// object").
    NotInHeap,
    /// The offset is inside a region but not a multiple of the object size
    /// ("the offset ... must be a multiple of the object size") — an invalid
    /// free, ignored.
    MisalignedOffset,
    /// The slot is not currently allocated — a double or invalid free,
    /// ignored.
    NotAllocated,
}

impl FreeOutcome {
    /// `true` when the free actually released an object.
    #[must_use]
    pub fn freed(&self) -> bool {
        matches!(self, FreeOutcome::Freed(_))
    }
}

/// The result of a small-object allocation attempt on a heap that can grow.
///
/// Fixed heaps only ever report `Placed` or the terminal condition; elastic
/// heaps ([`ShardedHeap::new_elastic`](crate::sharded::ShardedHeap::new_elastic))
/// distinguish *why* a request was not placed so the caller can route
/// around exhaustion instead of treating it as OOM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The object was placed at this slot.
    Placed(Slot),
    /// Every growth step is exhausted: the class sits at its maximum
    /// capacity *and* its final `1/M` cap. The caller should spill the
    /// request elsewhere (the global allocator falls through to its
    /// large-object `mmap` path) rather than crash — the paper returns
    /// `NULL` here; elastic heaps return a routable signal instead.
    Spill,
    /// The request is not small-object shaped (zero or above 16 KB); no
    /// class exists for it and no stats are recorded.
    Unsupported,
}

impl AllocOutcome {
    /// The placed slot, if any — collapses the elastic outcome back to the
    /// fixed heaps' `Option` API.
    #[must_use]
    pub fn placed(self) -> Option<Slot> {
        match self {
            AllocOutcome::Placed(slot) => Some(slot),
            AllocOutcome::Spill | AllocOutcome::Unsupported => None,
        }
    }
}

/// Running counters for one heap, used by the experiment harnesses.
///
/// This is the *snapshot* type; heaps accumulate into [`AtomicHeapStats`]
/// so that counters can be bumped from any shard without taking a lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful small-object allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Frees ignored by validation (double/invalid frees).
    pub ignored_frees: u64,
    /// Allocation requests denied because a region hit its `1/M` cap.
    pub exhausted: u64,
}

/// Lock-free heap counters.
///
/// The sharded heap updates these from whichever shard served an operation,
/// concurrently with every other shard; relaxed atomics suffice because the
/// counters carry no synchronization responsibility — they only have to end
/// up numerically exact once the threads touching the heap are joined.
#[derive(Debug, Default)]
pub struct AtomicHeapStats {
    allocs: AtomicU64,
    frees: AtomicU64,
    ignored_frees: AtomicU64,
    exhausted: AtomicU64,
}

impl AtomicHeapStats {
    /// Fresh zeroed counters; `const` so they can live in a `static`
    /// allocator initialized before `main`.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            ignored_frees: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// A point-in-time copy of all four counters.
    #[must_use]
    pub fn snapshot(&self) -> HeapStats {
        HeapStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            ignored_frees: self.ignored_frees.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Counts one successful allocation.
    pub fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successful free.
    pub fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one ignored (double/invalid) free.
    pub fn record_ignored_free(&self) {
        self.ignored_frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` successful frees in one atomic add — used by the magazine
    /// layer, whose free buffer releases a whole batch under one shard-lock
    /// acquisition and should pay one counter RMW for it, not `n`.
    pub fn record_frees(&self, n: u64) {
        if n > 0 {
            self.frees.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` ignored (double/invalid) frees in one atomic add.
    pub fn record_ignored_frees(&self, n: u64) {
        if n > 0 {
            self.ignored_frees.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts one allocation denied at the `1/M` cap.
    pub fn record_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }
}

// ---- shared offset arithmetic ------------------------------------------
//
// The byte-offset ↔ (class, slot) conversions and the §4.3 free-validation
// checks are pure functions of the precomputed [`HeapGeometry`]. They are
// factored out of `HeapCore` so the single-threaded facade and the sharded
// concurrent heap run the *same* logic — a shard lock is only needed for
// the bitmap bit itself, never for the arithmetic. Per the paper's §4.1,
// the arithmetic is shifts and masks only: no division, modulus, or
// multiplication survives on these paths.

/// Byte offset of `slot` within a heap span laid out per `geometry`.
#[must_use]
#[inline]
pub fn slot_offset(geometry: &HeapGeometry, slot: Slot) -> usize {
    geometry.region_base(slot.class) + (slot.index << slot.class.shift())
}

/// Resolves a byte offset (any interior pointer) to the slot containing it,
/// or `None` outside the small-object span.
///
/// Two shifts and a mask: the class is `offset >> region_shift` (in range
/// exactly when the offset is inside the span), the within-region byte is
/// `offset & region_mask`, and the slot index drops the class's size bits.
#[must_use]
#[inline]
pub fn slot_at(geometry: &HeapGeometry, offset: usize) -> Option<Slot> {
    let region = offset >> geometry.region_shift();
    if region >= NUM_CLASSES {
        return None;
    }
    let class = SizeClass::from_index(region);
    let within = offset & geometry.region_mask();
    Some(Slot {
        class,
        index: within >> class.shift(),
    })
}

/// Builds the twelve partition shards for `geometry`, each with its private
/// RNG stream split from `seed` — the one definition of the partition
/// layout, shared by [`HeapCore`] and
/// [`ShardedHeap`](crate::sharded::ShardedHeap) so the two always produce
/// identical placements for the same master seed.
#[must_use]
pub(crate) fn build_partitions(geometry: &HeapGeometry, seed: u64) -> [Partition; NUM_CLASSES] {
    core::array::from_fn(|i| {
        let c = SizeClass::from_index(i);
        Partition::new(
            c,
            geometry.capacity(c),
            geometry.threshold(c),
            stream_seed(seed, i as u64),
        )
    })
}

/// As [`build_partitions`], but carving the allocation bitmaps out of
/// caller-provided storage (the global allocator's metadata arena).
///
/// # Safety
///
/// `bitmap_words` must point to at least
/// [`HeapCore::bitmap_words_needed`]`(config)` zeroed `u64`s, valid and
/// exclusively owned for the partitions' lifetime.
pub(crate) unsafe fn build_partitions_from_storage(
    geometry: &HeapGeometry,
    seed: u64,
    bitmap_words: *mut u64,
) -> [Partition; NUM_CLASSES] {
    let mut cursor = bitmap_words;
    core::array::from_fn(|i| {
        let c = SizeClass::from_index(i);
        let cap = geometry.capacity(c);
        // SAFETY: the caller provides enough zeroed words for the sum of
        // all class bitmaps; we carve them off sequentially.
        let p = unsafe {
            Partition::from_storage(
                c,
                cap,
                geometry.threshold(c),
                stream_seed(seed, i as u64),
                cursor,
            )
        };
        cursor = unsafe { cursor.add(cap.div_ceil(64)) };
        p
    })
}

/// As [`build_partitions`] but producing lock-free [`AtomicPartition`]
/// shards. Each class's [`crate::rng::AtomicMwc`] is seeded from the same
/// `stream_seed(seed, class)` as the locked builders, so serialized
/// histories replay the locked layout bit for bit. Shards start at the
/// geometry's *initial* capacity (== the maximum for fixed geometries) with
/// their slot maps sized for the maximum, so elastic growth never relayouts.
#[must_use]
pub(crate) fn build_atomic_partitions(
    geometry: &HeapGeometry,
    seed: u64,
) -> [AtomicPartition; NUM_CLASSES] {
    core::array::from_fn(|i| {
        let c = SizeClass::from_index(i);
        AtomicPartition::new_elastic(
            c,
            geometry.capacity(c),
            geometry.initial_capacity(c),
            geometry.initial_threshold(c),
            stream_seed(seed, i as u64),
        )
    })
}

/// As [`build_atomic_partitions`], but carving the slot-state maps (two bits
/// per slot, 32 slots per word) out of caller-provided storage.
///
/// # Safety
///
/// `metadata_words` must point to at least
/// [`ShardedHeap::bitmap_words_needed`](crate::sharded::ShardedHeap::bitmap_words_needed)
/// zeroed `u64`s, valid and exclusively owned for the partitions' lifetime.
pub(crate) unsafe fn build_atomic_partitions_from_storage(
    geometry: &HeapGeometry,
    seed: u64,
    metadata_words: *mut u64,
) -> [AtomicPartition; NUM_CLASSES] {
    let mut cursor = metadata_words;
    core::array::from_fn(|i| {
        let c = SizeClass::from_index(i);
        let cap = geometry.capacity(c);
        // SAFETY: the caller provides enough zeroed words for the sum of
        // all class maps (sized at maximum capacity, growth-stable); we
        // carve them off sequentially.
        let p = unsafe {
            AtomicPartition::from_storage_elastic(
                c,
                cap,
                geometry.initial_capacity(c),
                geometry.initial_threshold(c),
                stream_seed(seed, i as u64),
                cursor,
            )
        };
        cursor = unsafe { cursor.add(AtomicPartition::words_needed(cap)) };
        p
    })
}

/// The span/alignment half of `DieHardFree`'s validation (§4.3): `Ok` names
/// the slot whose shard must be locked to complete the free; `Err` carries
/// the outcome that needs no shard at all (outside the heap, or an interior
/// pointer that is not a multiple of the object size).
///
/// # Errors
///
/// Returns `Err(FreeOutcome::NotInHeap)` or
/// `Err(FreeOutcome::MisalignedOffset)`; never any other variant.
#[inline]
pub fn locate_free(geometry: &HeapGeometry, offset: usize) -> Result<Slot, FreeOutcome> {
    let region = offset >> geometry.region_shift();
    if region >= NUM_CLASSES {
        return Err(FreeOutcome::NotInHeap);
    }
    let class = SizeClass::from_index(region);
    let within = offset & geometry.region_mask();
    if within & (class.object_size() - 1) != 0 {
        return Err(FreeOutcome::MisalignedOffset);
    }
    Ok(Slot {
        class,
        index: within >> class.shift(),
    })
}

/// The randomized small-object heap core.
///
/// # Examples
///
/// ```
/// use diehard_core::{config::HeapConfig, engine::HeapCore};
///
/// let mut heap = HeapCore::new(HeapConfig::default(), 42)?;
/// let slot = heap.alloc(100).expect("space available");
/// assert_eq!(slot.size(), 128);
/// let off = heap.offset_of(slot);
/// assert!(heap.free_at(off).freed());
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct HeapCore {
    geometry: HeapGeometry,
    /// Auxiliary stream for wrappers (random fills in replicated mode);
    /// placement randomness lives inside each partition shard.
    rng: Mwc,
    partitions: [Partition; NUM_CLASSES],
    /// Plain counters: the facade's mutating API is exclusively `&mut
    /// self`, so the single-threaded hot paths pay no atomic RMW cost
    /// (the sharded heap uses [`AtomicHeapStats`] instead).
    stats: HeapStats,
}

impl HeapCore {
    /// Creates an empty heap with the given configuration and RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new(config)?;
        let partitions = build_partitions(&geometry, seed);
        Ok(Self {
            geometry,
            rng: Mwc::seeded(seed),
            partitions,
            stats: HeapStats::default(),
        })
    }

    /// As [`new`](Self::new), but hosting all twelve allocation bitmaps in
    /// caller-provided storage so that construction performs **no heap
    /// allocation** — required when DieHard itself is the process's global
    /// allocator (metadata lives in a segregated mmap arena, §4.1).
    ///
    /// # Safety
    ///
    /// `bitmap_words` must point to at least
    /// [`bitmap_words_needed`](Self::bitmap_words_needed)`(&config)` zeroed
    /// `u64`s, valid and exclusively owned for the heap's lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts(
        config: HeapConfig,
        seed: u64,
        bitmap_words: *mut u64,
    ) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new(config)?;
        // SAFETY: forwarded caller contract.
        let partitions = unsafe { build_partitions_from_storage(&geometry, seed, bitmap_words) };
        Ok(Self {
            geometry,
            rng: Mwc::seeded(seed),
            partitions,
            stats: HeapStats::default(),
        })
    }

    /// Number of `u64` words of bitmap storage [`from_raw_parts`]
    /// (Self::from_raw_parts) requires for `config`.
    #[must_use]
    pub fn bitmap_words_needed(config: &HeapConfig) -> usize {
        SizeClass::all()
            .map(|c| config.capacity(c).div_ceil(64))
            .sum()
    }

    /// The heap's configuration.
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        self.geometry.config()
    }

    /// The heap's precomputed shift/mask geometry.
    #[must_use]
    #[inline]
    pub fn geometry(&self) -> &HeapGeometry {
        &self.geometry
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The heap's RNG; exposed so wrappers can draw the random fill values
    /// of replicated mode from the same seeded stream.
    pub fn rng_mut(&mut self) -> &mut Mwc {
        &mut self.rng
    }

    /// Whether allocations should be filled with random values.
    #[must_use]
    pub fn fill_policy(&self) -> FillPolicy {
        self.geometry.fill()
    }

    /// The partition serving `class`.
    #[must_use]
    pub fn partition(&self, class: SizeClass) -> &Partition {
        &self.partitions[class.index()]
    }

    /// Allocates `size` bytes, returning the chosen slot, or `None` when the
    /// request is zero, larger than 16 KB (large-object path), or the class
    /// region is at its `1/M` cap (the paper returns `NULL`).
    #[inline]
    pub fn alloc(&mut self, size: usize) -> Option<Slot> {
        let class = SizeClass::for_size(size)?;
        match self.partitions[class.index()].alloc() {
            Some(index) => {
                self.stats.allocs += 1;
                Some(Slot { class, index })
            }
            None => {
                self.stats.exhausted += 1;
                None
            }
        }
    }

    /// Byte offset of `slot` within the heap span.
    #[must_use]
    #[inline]
    pub fn offset_of(&self, slot: Slot) -> usize {
        slot_offset(&self.geometry, slot)
    }

    /// Resolves a byte offset to the slot containing it, requiring the
    /// offset to point exactly at the slot start when `exact` is set (free
    /// validation) or anywhere inside the object otherwise (used by the
    /// bounded string functions of §4.4 to find an object's start).
    #[must_use]
    pub fn slot_containing(&self, offset: usize) -> Option<Slot> {
        slot_at(&self.geometry, offset)
    }

    /// `DieHardFree` (§4.3): validates and frees the object at `offset`.
    ///
    /// The three checks, in order: the offset must fall inside the heap
    /// span; it must be a multiple of its region's object size; and the slot
    /// must currently be allocated. Failing any check *ignores* the free —
    /// this is what makes DieHard immune to double and invalid frees.
    #[inline]
    pub fn free_at(&mut self, offset: usize) -> FreeOutcome {
        let slot = match locate_free(&self.geometry, offset) {
            Ok(slot) => slot,
            Err(outcome) => {
                if outcome == FreeOutcome::MisalignedOffset {
                    self.stats.ignored_frees += 1;
                }
                return outcome;
            }
        };
        if self.partitions[slot.class.index()].free(slot.index) {
            self.stats.frees += 1;
            FreeOutcome::Freed(slot)
        } else {
            self.stats.ignored_frees += 1;
            FreeOutcome::NotAllocated
        }
    }

    /// Whether the object at `offset` (any interior pointer) is live.
    #[must_use]
    pub fn is_live_at(&self, offset: usize) -> bool {
        match self.slot_containing(offset) {
            Some(slot) => self.partitions[slot.class.index()].is_live(slot.index),
            None => false,
        }
    }

    /// Total live bytes across all regions (rounded object sizes).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.in_use() * p.class().object_size())
            .sum()
    }

    /// Total live objects across all regions.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.partitions.iter().map(Partition::in_use).sum()
    }

    /// Iterates over every live slot in the heap, smallest class first.
    pub fn live_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.partitions.iter().flat_map(|p| {
            let class = p.class();
            p.live_slots().map(move |index| Slot { class, index })
        })
    }

    /// Bytes spanned by the small-object heap (12 × region size).
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.geometry.heap_span()
    }
}

/// Number of size classes the engine manages; re-exported for harnesses.
pub const CLASS_COUNT: usize = NUM_CLASSES;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn heap(seed: u64) -> HeapCore {
        HeapCore::new(HeapConfig::default(), seed).unwrap()
    }

    #[test]
    fn alloc_routes_to_correct_class() {
        let mut h = heap(1);
        for (req, expect) in [
            (1usize, 8usize),
            (8, 8),
            (24, 32),
            (4096, 4096),
            (9000, 16384),
        ] {
            let slot = h.alloc(req).unwrap();
            assert_eq!(slot.size(), expect, "request {req}");
        }
    }

    #[test]
    fn zero_and_large_requests_return_none() {
        let mut h = heap(2);
        assert_eq!(h.alloc(0), None);
        assert_eq!(h.alloc(16 * 1024 + 1), None);
        assert_eq!(h.stats().allocs, 0);
    }

    #[test]
    fn offset_roundtrip() {
        let mut h = heap(3);
        for req in [8usize, 64, 1000, 16384] {
            let slot = h.alloc(req).unwrap();
            let off = h.offset_of(slot);
            assert_eq!(h.slot_containing(off), Some(slot));
            // Interior pointers resolve to the same slot.
            assert_eq!(h.slot_containing(off + slot.size() - 1), Some(slot));
        }
    }

    #[test]
    fn free_validation_pipeline() {
        let mut h = heap(4);
        let slot = h.alloc(64).unwrap();
        let off = h.offset_of(slot);

        // Interior (misaligned) pointer: ignored.
        assert_eq!(h.free_at(off + 1), FreeOutcome::MisalignedOffset);
        assert!(h.is_live_at(off));

        // Proper free succeeds.
        assert_eq!(h.free_at(off), FreeOutcome::Freed(slot));
        assert!(!h.is_live_at(off));

        // Double free: ignored.
        assert_eq!(h.free_at(off), FreeOutcome::NotAllocated);

        // Outside the heap: reported for the large-object path.
        assert_eq!(h.free_at(usize::MAX / 2), FreeOutcome::NotInHeap);

        let stats = h.stats();
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.ignored_frees, 2);
    }

    #[test]
    fn free_of_wrong_class_alignment_ignored() {
        let mut h = heap(5);
        // Allocate an 8-byte object, then try to free at an offset inside
        // the 16 KB region that was never allocated.
        let _ = h.alloc(8).unwrap();
        let off_16k = h.config().region_base(SizeClass::from_index(11));
        assert_eq!(h.free_at(off_16k), FreeOutcome::NotAllocated);
    }

    #[test]
    fn live_accounting() {
        let mut h = heap(6);
        let a = h.alloc(8).unwrap();
        let b = h.alloc(100).unwrap();
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.live_bytes(), 8 + 128);
        h.free_at(h.offset_of(a));
        assert_eq!(h.live_objects(), 1);
        h.free_at(h.offset_of(b));
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn exhaustion_counted() {
        let cfg = HeapConfig::default().with_region_bytes(32 * 1024);
        let mut h = HeapCore::new(cfg, 7).unwrap();
        // 16 KB class has capacity 2, threshold 1 with M=2.
        assert!(h.alloc(16 * 1024).is_some());
        assert!(h.alloc(16 * 1024).is_none());
        assert_eq!(h.stats().exhausted, 1);
    }

    /// Acceptance pin for the strength-reduced probe draw: the exact
    /// (class, slot) sequence one known seed produces. The shift draw
    /// `next_u64() >> (64 - capacity_log2)` must stay bit-identical to the
    /// widening-multiply `below` it replaced — verified against the
    /// pre-geometry implementation; any drift in RNG streams, seed
    /// splitting, or the draw itself breaks this list.
    #[test]
    fn pinned_placement_sequence_for_known_seed() {
        let mut h = HeapCore::new(HeapConfig::default(), 0xD1E_4A8D).unwrap();
        let got: Vec<(usize, usize)> = [8usize, 8, 16, 100, 1000, 4000, 16384, 8, 64, 300]
            .iter()
            .map(|&sz| {
                let s = h.alloc(sz).unwrap();
                (s.class.index(), s.index)
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 84456),
                (0, 3067),
                (1, 40705),
                (4, 2529),
                (7, 530),
                (9, 72),
                (11, 11),
                (0, 111613),
                (3, 6099),
                (6, 71),
            ]
        );
    }

    #[test]
    fn identical_seeds_identical_layout() {
        let mut a = heap(99);
        let mut b = heap(99);
        for req in [8, 16, 8, 300, 4000, 8, 64] {
            assert_eq!(a.alloc(req), b.alloc(req));
        }
    }

    #[test]
    fn different_seeds_different_layout() {
        let mut a = heap(1);
        let mut b = heap(2);
        let mut same = 0;
        for _ in 0..32 {
            if a.alloc(64) == b.alloc(64) {
                same += 1;
            }
        }
        assert!(
            same < 8,
            "layouts should diverge across seeds ({same}/32 agree)"
        );
    }

    #[test]
    fn live_slots_enumerates_everything() {
        let mut h = heap(8);
        let mut expect = Vec::new();
        for req in [8, 8, 50, 1000, 16000] {
            expect.push(h.alloc(req).unwrap());
        }
        let mut got: Vec<Slot> = h.live_slots().collect();
        let key = |s: &Slot| (s.class.index(), s.index);
        got.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(got, expect);
    }

    proptest! {
        /// Any interleaving of allocs and (valid or bogus) frees keeps the
        /// engine consistent with a shadow model keyed by offset.
        #[test]
        fn engine_matches_shadow_model(
            seed in any::<u64>(),
            ops in proptest::collection::vec((0usize..3, 1usize..20_000), 1..300),
        ) {
            let mut h = heap(seed);
            let mut model: HashMap<usize, Slot> = HashMap::new();
            let mut rng = Mwc::seeded(seed ^ 0xABCD);
            for (op, arg) in ops {
                match op {
                    0 => {
                        if let Some(slot) = h.alloc(arg.min(16 * 1024)) {
                            let off = h.offset_of(slot);
                            prop_assert!(!model.contains_key(&off), "offset reuse while live");
                            model.insert(off, slot);
                        }
                    }
                    1 => {
                        if !model.is_empty() {
                            let keys: Vec<usize> = model.keys().copied().collect();
                            let off = keys[rng.below(keys.len())];
                            prop_assert!(h.free_at(off).freed());
                            model.remove(&off);
                        }
                    }
                    _ => {
                        // Bogus free at a random offset: must never free a
                        // *different* object or corrupt accounting.
                        let off = rng.below(h.heap_span() + 1000);
                        let before = h.live_objects();
                        let out = h.free_at(off);
                        match out {
                            FreeOutcome::Freed(_) => {
                                prop_assert!(model.remove(&off).is_some(),
                                    "freed an object the model did not know");
                            }
                            _ => prop_assert_eq!(h.live_objects(), before),
                        }
                    }
                }
                prop_assert_eq!(h.live_objects(), model.len());
            }
        }

        /// The shift/mask conversions agree with a division/modulus
        /// reference implementation over random geometries and offsets —
        /// in-span, out-of-span, aligned, and interior-pointer cases alike.
        #[test]
        fn shift_mask_matches_division_reference(
            region_log2 in 15u32..25, // 32 KB (minimum legal) … 16 MB
            raw_offset in proptest::prelude::any::<u64>(),
            in_span in proptest::prelude::any::<bool>(),
        ) {
            let config = HeapConfig::new().with_region_bytes(1usize << region_log2);
            let geometry = HeapGeometry::new(config.clone()).unwrap();
            // Bias half the cases into the span so the aligned/misaligned
            // branches are exercised, not just NotInHeap.
            let offset = if in_span {
                raw_offset as usize % config.heap_span()
            } else {
                raw_offset as usize
            };

            // Division-based reference for `slot_at`.
            let ref_slot = if offset >= config.heap_span() {
                None
            } else {
                let class = SizeClass::from_index(offset / config.region_bytes);
                Some(Slot {
                    class,
                    index: (offset % config.region_bytes) / class.object_size(),
                })
            };
            prop_assert_eq!(slot_at(&geometry, offset), ref_slot);

            // Division-based reference for `locate_free`.
            let ref_locate = match ref_slot {
                None => Err(FreeOutcome::NotInHeap),
                Some(slot) if offset % slot.class.object_size() != 0 => {
                    Err(FreeOutcome::MisalignedOffset)
                }
                Some(slot) => Ok(slot),
            };
            prop_assert_eq!(locate_free(&geometry, offset), ref_locate);

            // And the multiply-based reference for `slot_offset` round-trips.
            if let Some(slot) = ref_slot {
                let base = slot_offset(&geometry, slot);
                prop_assert_eq!(
                    base,
                    slot.class.index() * config.region_bytes
                        + slot.index * slot.class.object_size()
                );
                prop_assert!(base <= offset && offset < base + slot.class.object_size());
            }
        }

        /// Live objects never overlap in the offset space.
        #[test]
        fn no_byte_overlap(seed in any::<u64>(), n in 1usize..200) {
            let mut h = heap(seed);
            let mut intervals: Vec<(usize, usize)> = Vec::new();
            let mut rng = Mwc::seeded(seed);
            for _ in 0..n {
                let sz = 1 + rng.below(16 * 1024);
                if let Some(slot) = h.alloc(sz) {
                    let off = h.offset_of(slot);
                    intervals.push((off, off + slot.size()));
                }
            }
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
            }
        }
    }
}
