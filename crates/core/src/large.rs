//! The large-object validity table.
//!
//! Objects above 16 KB bypass the randomized regions: DieHard "allocates
//! larger objects directly using mmap and places guard pages without read or
//! write access on either end" (§4.1), recording each address "in a table
//! for validity checking by DieHardFree" (§4.2). `freeLargeObject` consults
//! the table and *ignores* requests for addresses it never handed out
//! (§4.3) — this is DieHard's invalid-free immunity for the large path.
//!
//! The table is a fixed-capacity open-addressing hash map from address to
//! size. It never allocates after construction, so the global allocator can
//! host it in its segregated metadata arena.

/// Slot states for open addressing. Addresses are never 0 or 1 in practice
/// (0 = never used, 1 = tombstone).
const EMPTY: usize = 0;
const TOMBSTONE: usize = 1;

/// A fixed-capacity address → size table with open addressing.
///
/// # Examples
///
/// ```
/// use diehard_core::large::LargeTable;
///
/// let mut t = LargeTable::new(64);
/// assert!(t.insert(0x1000, 20_000));
/// assert_eq!(t.get(0x1000), Some(20_000));
/// assert_eq!(t.remove(0x1000), Some(20_000));
/// assert_eq!(t.remove(0x1000), None); // double free: ignored by caller
/// ```
#[derive(Debug)]
pub struct LargeTable {
    keys: Storage,
    sizes: Storage,
    capacity: usize,
    len: usize,
}

#[derive(Debug)]
enum Storage {
    Owned(Vec<usize>),
    Raw(*mut usize, usize),
}

// SAFETY: raw storage is exclusively owned by the table; the global
// allocator serializes access behind its lock.
unsafe impl Send for LargeTable {}
unsafe impl Sync for LargeTable {}

impl Storage {
    #[inline]
    fn slice(&self) -> &[usize] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: valid-for-len per `from_storage`'s contract.
            Storage::Raw(p, n) => unsafe { core::slice::from_raw_parts(*p, *n) },
        }
    }

    #[inline]
    fn slice_mut(&mut self) -> &mut [usize] {
        match self {
            Storage::Owned(v) => v,
            // SAFETY: as above, exclusive via `&mut`.
            Storage::Raw(p, n) => unsafe { core::slice::from_raw_parts_mut(*p, *n) },
        }
    }
}

impl LargeTable {
    /// Creates a table able to hold `capacity` entries (rounded up to a
    /// power of two; sized ×2 internally to keep probe chains short).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`. (This constructor's internal ×2 sizing
    /// could not itself overflow the hash shift, but sub-2 capacities are
    /// rejected uniformly with [`Self::from_storage`], where `capacity` is
    /// the literal table size and a one-slot table shifts by
    /// `64 - trailing_zeros(1) = 64` — a debug panic, silent masking in
    /// release.)
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "LargeTable capacity must be at least 2");
        let cap = (capacity.max(4) * 2).next_power_of_two();
        Self {
            keys: Storage::Owned(vec![EMPTY; cap]),
            sizes: Storage::Owned(vec![0; cap]),
            capacity: cap,
            len: 0,
        }
    }

    /// Creates a table over two caller-provided zeroed `usize` arrays of
    /// length `capacity` (a power of two).
    ///
    /// # Safety
    ///
    /// Both pointers must be valid for `capacity` usizes for the table's
    /// lifetime, exclusively owned by it, and zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two, or is less than 2 (a
    /// one-slot table would overflow the hash shift).
    #[must_use]
    pub unsafe fn from_storage(keys: *mut usize, sizes: *mut usize, capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(capacity >= 2, "LargeTable capacity must be at least 2");
        Self {
            keys: Storage::Raw(keys, capacity),
            sizes: Storage::Raw(sizes, capacity),
            capacity,
            len: 0,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no large objects are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn hash(&self, addr: usize) -> usize {
        // Fibonacci hashing: cheap and good on page-aligned addresses.
        addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.capacity.trailing_zeros()) as usize
            & (self.capacity - 1)
    }

    /// Records `addr → size`. Returns `false` (rejecting the insert) when
    /// the table is full or the address is already present.
    pub fn insert(&mut self, addr: usize, size: usize) -> bool {
        debug_assert!(addr > TOMBSTONE, "addresses 0/1 are reserved sentinels");
        if self.len * 2 >= self.capacity {
            return false; // keep load factor <= 1/2
        }
        let mut i = self.hash(addr);
        let mut first_tomb = None;
        loop {
            let k = self.keys.slice()[i];
            if k == addr {
                return false;
            }
            if k == TOMBSTONE && first_tomb.is_none() {
                first_tomb = Some(i);
            }
            if k == EMPTY {
                let dst = first_tomb.unwrap_or(i);
                self.keys.slice_mut()[dst] = addr;
                self.sizes.slice_mut()[dst] = size;
                self.len += 1;
                return true;
            }
            i = (i + 1) & (self.capacity - 1);
        }
    }

    /// Looks up the recorded size for `addr`.
    #[must_use]
    pub fn get(&self, addr: usize) -> Option<usize> {
        let mut i = self.hash(addr);
        loop {
            let k = self.keys.slice()[i];
            if k == addr {
                return Some(self.sizes.slice()[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & (self.capacity - 1);
        }
    }

    /// Removes `addr`, returning its size; `None` when the address was never
    /// returned by the large-object allocator (the caller then ignores the
    /// free, per §4.3).
    pub fn remove(&mut self, addr: usize) -> Option<usize> {
        let mut i = self.hash(addr);
        loop {
            let k = self.keys.slice()[i];
            if k == addr {
                self.keys.slice_mut()[i] = TOMBSTONE;
                self.len -= 1;
                return Some(self.sizes.slice()[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & (self.capacity - 1);
        }
    }

    /// Iterates over `(address, size)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.keys
            .slice()
            .iter()
            .enumerate()
            .filter(|(_, &k)| k > TOMBSTONE)
            .map(|(i, &k)| (k, self.sizes.slice()[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut t = LargeTable::new(8);
        assert!(t.is_empty());
        assert!(t.insert(0x10_000, 32_768));
        assert!(t.insert(0x20_000, 65_536));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0x10_000), Some(32_768));
        assert_eq!(t.get(0x30_000), None);
        assert_eq!(t.remove(0x10_000), Some(32_768));
        assert_eq!(t.get(0x10_000), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = LargeTable::new(8);
        assert!(t.insert(0x1000, 100));
        assert!(!t.insert(0x1000, 200));
        assert_eq!(t.get(0x1000), Some(100));
    }

    #[test]
    fn remove_unknown_is_none() {
        let mut t = LargeTable::new(8);
        assert_eq!(t.remove(0xDEAD), None);
    }

    #[test]
    fn tombstone_reuse_keeps_lookups_working() {
        let mut t = LargeTable::new(4);
        // Force collisions by inserting many, removing, reinserting.
        for i in 1..=4usize {
            assert!(t.insert(i * 0x1000, i));
        }
        assert_eq!(t.remove(0x2000), Some(2));
        assert!(t.insert(0x5000, 5));
        assert_eq!(t.get(0x1000), Some(1));
        assert_eq!(t.get(0x3000), Some(3));
        assert_eq!(t.get(0x4000), Some(4));
        assert_eq!(t.get(0x5000), Some(5));
    }

    #[test]
    fn full_table_rejects() {
        let mut t = LargeTable::new(4); // internal capacity 8, max 4 live
        let mut inserted = 0;
        for i in 1..=16usize {
            if t.insert(i * 0x1000, i) {
                inserted += 1;
            }
        }
        assert!(inserted >= 4);
        assert!(inserted < 16, "load factor cap must kick in");
    }

    #[test]
    fn iter_lists_live_entries() {
        let mut t = LargeTable::new(16);
        t.insert(0x1000, 1);
        t.insert(0x2000, 2);
        t.remove(0x1000);
        let entries: Vec<(usize, usize)> = t.iter().collect();
        assert_eq!(entries, vec![(0x2000, 2)]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn new_rejects_capacity_one() {
        let _ = LargeTable::new(1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn from_storage_rejects_capacity_one() {
        // Regression: capacity 1 has trailing_zeros() == 0, so hash()'s
        // `>> (64 - 0)` overflowed the shift before the constructor guard.
        let mut keys = vec![0usize; 1];
        let mut sizes = vec![0usize; 1];
        // SAFETY: vectors outlive the (never-created) table.
        let _ = unsafe { LargeTable::from_storage(keys.as_mut_ptr(), sizes.as_mut_ptr(), 1) };
    }

    #[test]
    fn from_storage_minimum_capacity_hashes_safely() {
        // capacity 2 is the smallest legal table: shift is 63, not 64.
        let mut keys = vec![0usize; 2];
        let mut sizes = vec![0usize; 2];
        // SAFETY: vectors outlive the table and are unaliased while it lives.
        let mut t = unsafe { LargeTable::from_storage(keys.as_mut_ptr(), sizes.as_mut_ptr(), 2) };
        assert!(t.insert(0x4000, 7));
        assert_eq!(t.get(0x4000), Some(7));
        assert_eq!(t.remove(0x4000), Some(7));
    }

    #[test]
    fn from_storage_backing() {
        let mut keys = vec![0usize; 16];
        let mut sizes = vec![0usize; 16];
        // SAFETY: vectors outlive the table and are unaliased while it lives.
        let mut t = unsafe { LargeTable::from_storage(keys.as_mut_ptr(), sizes.as_mut_ptr(), 16) };
        assert!(t.insert(0xABC0, 42));
        assert_eq!(t.get(0xABC0), Some(42));
        drop(t);
        assert!(keys.contains(&0xABC0));
    }

    proptest! {
        /// The table matches a HashMap model under arbitrary operations.
        #[test]
        fn model_equivalence(
            ops in proptest::collection::vec((2usize..2_000, 1usize..3, 1usize..100_000), 1..200),
        ) {
            let mut t = LargeTable::new(4096);
            let mut model: HashMap<usize, usize> = HashMap::new();
            for (addr_base, op, size) in ops {
                let addr = addr_base * 8; // realistic aligned addresses, > 1
                match op {
                    1 => {
                        let ok = t.insert(addr, size);
                        let model_ok = !model.contains_key(&addr);
                        prop_assert_eq!(ok, model_ok);
                        if ok {
                            model.insert(addr, size);
                        }
                    }
                    _ => {
                        prop_assert_eq!(t.remove(addr), model.remove(&addr));
                    }
                }
                prop_assert_eq!(t.len(), model.len());
            }
            for (&addr, &size) in &model {
                prop_assert_eq!(t.get(addr), Some(size));
            }
        }
    }
}
