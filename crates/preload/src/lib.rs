//! `libdiehard.so` — the paper's deployment story made real: an
//! `LD_PRELOAD` interposition library that replaces the C allocation ABI,
//! so *real, unmodified binaries* run on the DieHard randomized heap.
//!
//! ```sh
//! LD_PRELOAD=target/release/libdiehard.so some_unmodified_binary
//! DIEHARD_SEED=42 LD_PRELOAD=target/release/libdiehard.so cat /etc/hosts
//! ```
//!
//! Exported surface: `malloc`, `free`, `calloc`, `realloc`, `reallocarray`,
//! `posix_memalign`, `aligned_alloc`, `memalign`, `valloc`,
//! `malloc_usable_size`, `strdup`/`strndup` (duplicated onto the
//! randomized heap), and the paper's §4.4 bounded `strcpy`/`strncpy`.
//! Everything is backed by one process-wide
//! [`DieHard`](diehard_core::global::DieHard) heap built with
//! [`elastic_from_env`](diehard_core::global::DieHard::elastic_from_env):
//! classes start at `1/2^4` of their configured maximum and grow under
//! pressure, and a denial at full size spills to a dedicated guard-paged
//! mapping — `malloc` returns null only on genuine OOM, never because a
//! host program outgrew a fixed region. `DIEHARD_SEED`, `DIEHARD_GROW`,
//! `DIEHARD_REGION_MB`, and `DIEHARD_M` are honored via
//! [`diehard_core::env`]'s audited parsers — the replication launcher's
//! per-replica `DIEHARD_SEED` lands exactly here.
//!
//! Unlike `dlsym(RTLD_NEXT)`-style wrappers, this library does **not**
//! forward to the system allocator: its exports *are* the process's
//! `malloc` from the first instruction on (preloaded strong symbols win
//! every PLT resolution), so there is no "before interposition" window
//! for heap pointers to escape from.
//!
//! # Unsafe-surface audit
//!
//! The classic interposition traps, and how each is closed:
//!
//! * **Bootstrap allocations.** The dynamic loader and early libc can call
//!   `malloc` before the real heap can exist, and glibc re-enters `malloc`
//!   from inside our own machinery (growing the `pthread_atfork` handler
//!   list, TSD bookkeeping). Those requests are served from [`arena`]: a
//!   fixed 1 MB static bump region whose blocks carry a 16-byte size
//!   header. Arena blocks are recognized by address range — `free` on them
//!   is a no-op (the arena never recycles), `realloc` copies out of them
//!   by their header size, `malloc_usable_size` answers from the header.
//!   Arena exhaustion fails *re-entrant* requests with null — bounded,
//!   since only allocator-internal traffic lands there after startup.
//! * **Re-entrancy.** A `const`-initialized, `!needs_drop` `thread_local!`
//!   flag (plain ELF TLS: no lazy init, no destructor registration, no
//!   allocation; startup-loaded modules get static TLS offsets) marks
//!   "this thread is inside the allocator". A nested `malloc` is served
//!   from the arena; a nested `free` of a non-arena pointer is *dropped*
//!   and counted ([`reentrant_frees_dropped`]) — leaking a bounded number
//!   of allocator-internal blocks beats re-entering a heap mid-operation.
//! * **Foreign pointers.** `free`/`realloc` on pointers this allocator
//!   never produced (ld.so bootstrap blocks, another library's private
//!   arena) are detected by the heap's span check plus the large-object
//!   validity tables and **ignored**, exactly like the paper's invalid
//!   frees (§4.3: "otherwise, it ignores the request"). A foreign
//!   `realloc` allocates fresh memory and copies nothing — the old
//!   block's length is unknowable, and the old block is left untouched.
//! * **Fork inheritance.** A `.init_array` constructor registers
//!   `pthread_atfork` handlers that wrap `fork(2)` in
//!   [`DieHard::fork_prepare`]/[`fork_resume`](DieHard::fork_resume):
//!   every allocator lock (TLS registry → twelve per-class maintenance
//!   locks → large-object table) is acquired in fixed order across the
//!   fork and released in both parent and child, so the child's single
//!   thread never inherits a lock frozen mid-critical-section. In-flight
//!   *lock-free* reservation tickets in other threads can strand a
//!   bounded number of slots in the child — availability, not corruption.
//! * **Alignment contract.** `malloc`/`calloc`/`realloc` return 16-byte
//!   aligned blocks (`max_align_t` on the 64-bit targets we build);
//!   requests below 16 bytes come from the 16-byte class. DieHard slots
//!   are naturally aligned to their power-of-two class size, so serving
//!   `max(size, align)` satisfies any power-of-two request; alignments
//!   beyond the largest class take the guard-paged large path.
//! * **`errno` discipline.** Allocation failure sets `ENOMEM`;
//!   `aligned_alloc` with a bad alignment sets `EINVAL`; `posix_memalign`
//!   reports by return value and leaves `errno` alone, per POSIX.
//! * **§4.4 deviation, inherited from the paper:** `strncpy` into a heap
//!   object always NUL-terminates within the object's true bounds (and
//!   zero-pads only up to those bounds), where C's `strncpy` would write
//!   exactly `n` bytes unterminated. For non-heap destinations both
//!   copies follow exact C semantics — the interposer must not write one
//!   byte more than the contract allows into memory it knows nothing
//!   about.

use core::cell::Cell;
use core::ptr;
use core::sync::atomic::{AtomicUsize, Ordering};
use diehard_core::global::DieHard;
use diehard_core::safe_str;
use libc::{c_char, c_int, c_void};
use std::alloc::{GlobalAlloc, Layout};

/// Elastic start fraction when `DIEHARD_GROW` is unset: classes begin at
/// 1/16 of their configured maximum — small enough that an interposed
/// `cat` does not fault in twelve full regions, large enough that typical
/// programs never grow at all.
const DEFAULT_GROW_LOG2: u32 = 4;

/// C ABI alignment floor: `max_align_t` is 16 on x86_64 and aarch64.
const MALLOC_ALIGN: usize = 16;

/// The process heap. Environment-configured, elastic by default.
static HEAP: DieHard = DieHard::elastic_from_env(DEFAULT_GROW_LOG2);

/// Frees dropped because they arrived re-entrantly for non-arena pointers
/// (see the audit above). Diagnostic, read by tests.
static REENTRANT_FREES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// "This thread is inside the allocator" — const-init, `!needs_drop`,
    /// so it lowers to plain ELF TLS (no allocation on first touch).
    static IN_ALLOCATOR: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the re-entrancy flag set, telling it whether it was
/// already set (i.e. this call re-entered the allocator).
fn with_guard<R>(f: impl FnOnce(bool) -> R) -> R {
    IN_ALLOCATOR.with(|flag| {
        let reentered = flag.get();
        flag.set(true);
        let r = f(reentered);
        flag.set(reentered);
        r
    })
}

/// Frees dropped on the re-entrant path since process start.
pub fn reentrant_frees_dropped() -> usize {
    REENTRANT_FREES.load(Ordering::Relaxed)
}

// ---- bootstrap arena -----------------------------------------------------

mod arena {
    //! The static bump arena serving bootstrap and re-entrant requests.
    //!
    //! Blocks are carved off a fixed 1 MB `.bss` array by a CAS bump
    //! pointer and are never recycled: `free` recognizes the address range
    //! and does nothing. Each block is preceded by a 16-byte header whose
    //! first word is the block's capacity, so `realloc` and
    //! `malloc_usable_size` can answer without any lookup table.

    use core::cell::UnsafeCell;
    use core::ptr;
    use core::sync::atomic::{AtomicUsize, Ordering};

    const SIZE: usize = 1 << 20;
    const HEADER: usize = 16;

    #[repr(C, align(4096))]
    struct Backing(UnsafeCell<[u8; SIZE]>);

    // SAFETY: all mutation targets disjoint regions claimed through the
    // atomic bump pointer below; the cell is never borrowed as a whole.
    unsafe impl Sync for Backing {}

    static BACKING: Backing = Backing(UnsafeCell::new([0; SIZE]));
    static NEXT: AtomicUsize = AtomicUsize::new(0);

    fn base() -> usize {
        BACKING.0.get() as usize
    }

    /// Bump-allocates `size` bytes at `align` (floored at 16). Null when
    /// the arena is exhausted — callers treat that as allocation failure.
    pub fn alloc(size: usize, align: usize) -> *mut u8 {
        let align = align.max(HEADER);
        loop {
            let cur = NEXT.load(Ordering::Relaxed);
            // The payload starts aligned, with room for its header before.
            let Some(payload) = (base() + cur + HEADER).checked_next_multiple_of(align) else {
                return ptr::null_mut();
            };
            let Some(end) = payload.checked_add(size.max(1)) else {
                return ptr::null_mut();
            };
            let end = end - base();
            if end > SIZE {
                return ptr::null_mut();
            }
            if NEXT
                .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let capacity = base() + end - payload;
                // SAFETY: [payload - HEADER, base + end) was exclusively
                // claimed by the CAS; the header word lies within it.
                unsafe { ((payload - HEADER) as *mut usize).write(capacity) };
                return payload as *mut u8;
            }
        }
    }

    /// Whether `p` points into the arena's payload area.
    pub fn contains(p: *const u8) -> bool {
        let addr = p as usize;
        addr >= base() + HEADER && addr < base() + SIZE
    }

    /// Capacity of the arena block starting at `p`. Meaningful only for
    /// pointers [`alloc`] returned (C leaves `malloc_usable_size` on
    /// anything else undefined); clamped to the arena's own bounds so even
    /// a garbage header cannot send a caller past the backing array.
    pub fn block_size(p: *const u8) -> usize {
        debug_assert!(contains(p));
        let addr = p as usize;
        // SAFETY: contains(p) puts the 16-byte header inside the arena.
        let stored = unsafe { ((addr - HEADER) as *const usize).read() };
        stored.min(base() + SIZE - addr)
    }

    /// Bytes bump-allocated so far (diagnostics/tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn used() -> usize {
        NEXT.load(Ordering::Relaxed)
    }
}

// ---- shared allocation paths ---------------------------------------------

/// Sets this thread's `errno`.
fn set_errno(v: c_int) {
    // SAFETY: __errno_location returns the always-valid address of this
    // thread's errno.
    unsafe { *libc::__errno_location() = v };
}

/// The one allocation funnel: size 0 is served as 1 byte (glibc-style
/// unique, freeable pointers), re-entrant calls go to the arena, and
/// failure returns null with `errno` untouched (callers decide between
/// `ENOMEM` and POSIX's return-value-only reporting).
fn alloc_impl(size: usize, align: usize) -> *mut u8 {
    with_guard(|reentered| {
        if reentered {
            return arena::alloc(size, align);
        }
        let Ok(layout) = Layout::from_size_align(size.max(1), align) else {
            return ptr::null_mut();
        };
        // SAFETY: the layout is valid and non-zero-sized.
        unsafe { GlobalAlloc::alloc(&HEAP, layout) }
    })
}

/// Usable capacity of `p` wherever it lives: arena header, small-object
/// class size, or large-object user range. 0 for foreign pointers.
fn usable(p: *mut u8) -> usize {
    if p.is_null() {
        return 0;
    }
    if arena::contains(p) {
        return arena::block_size(p);
    }
    HEAP.usable_size(p)
}

/// Shared free path: arena blocks are a no-op, re-entrant frees of heap
/// pointers are dropped and counted, everything else takes the §4.3
/// validated path (which ignores foreign and invalid pointers).
fn free_impl(p: *mut u8) {
    if p.is_null() || arena::contains(p) {
        return;
    }
    with_guard(|reentered| {
        if reentered {
            REENTRANT_FREES.fetch_add(1, Ordering::Relaxed);
        } else {
            HEAP.free(p);
        }
    });
}

// ---- the C allocation ABI ------------------------------------------------

/// C `malloc(3)`: 16-byte-aligned randomized allocation; size 0 yields a
/// unique freeable pointer; null + `ENOMEM` on exhaustion.
#[no_mangle]
pub extern "C" fn malloc(size: usize) -> *mut c_void {
    let p = alloc_impl(size, MALLOC_ALIGN);
    if p.is_null() {
        set_errno(libc::ENOMEM);
    }
    p.cast()
}

/// C `free(3)`: validated per §4.3 — null, foreign, interior, and double
/// frees are all ignored, never fatal.
#[no_mangle]
pub extern "C" fn free(ptr: *mut c_void) {
    free_impl(ptr.cast());
}

/// C `calloc(3)`: zeroed allocation; the `nmemb * size` product is
/// overflow-checked (null + `ENOMEM` on overflow — the historic calloc
/// hole).
#[no_mangle]
pub extern "C" fn calloc(nmemb: usize, size: usize) -> *mut c_void {
    let Some(total) = nmemb.checked_mul(size) else {
        set_errno(libc::ENOMEM);
        return ptr::null_mut();
    };
    let p = alloc_impl(total, MALLOC_ALIGN);
    if p.is_null() {
        set_errno(libc::ENOMEM);
        return ptr::null_mut();
    }
    // Slots are recycled, so zeroing is mandatory, not cosmetic.
    // SAFETY: the allocation above holds at least `total` bytes.
    unsafe { ptr::write_bytes(p, 0, total) };
    p.cast()
}

/// C `realloc(3)`: `realloc(NULL, n)` ≡ `malloc(n)`; `realloc(p, 0)`
/// frees `p` and returns null (glibc semantics); a shrink (or a grow that
/// still fits the object's true capacity) returns `p` unchanged; on
/// failure the old block is untouched. A *foreign* `p` gets fresh memory
/// with nothing copied — its length is unknowable, and the §4.3 policy is
/// to never touch memory this heap does not own.
#[no_mangle]
pub extern "C" fn realloc(ptr: *mut c_void, size: usize) -> *mut c_void {
    let p = ptr.cast::<u8>();
    if p.is_null() {
        return malloc(size);
    }
    if size == 0 {
        free_impl(p);
        return ptr::null_mut();
    }
    let old = usable(p);
    if old >= size {
        return ptr;
    }
    let new = alloc_impl(size, MALLOC_ALIGN);
    if new.is_null() {
        set_errno(libc::ENOMEM);
        return ptr::null_mut();
    }
    if old > 0 {
        // SAFETY: `old` bytes are readable at p (its true capacity),
        // `size > old` bytes are writable at the fresh block, and the
        // blocks are distinct.
        unsafe { ptr::copy_nonoverlapping(p, new, old) };
        free_impl(p);
    }
    new.cast()
}

/// `reallocarray(3)`: overflow-checked `realloc(p, nmemb * size)`.
#[no_mangle]
pub extern "C" fn reallocarray(ptr: *mut c_void, nmemb: usize, size: usize) -> *mut c_void {
    let Some(total) = nmemb.checked_mul(size) else {
        set_errno(libc::ENOMEM);
        return ptr::null_mut();
    };
    realloc(ptr, total)
}

/// POSIX `posix_memalign(3)`: reports by return value (`EINVAL` for a
/// non-power-of-two alignment or one that is not a multiple of
/// `sizeof(void *)`, `ENOMEM` on exhaustion) and leaves `errno` alone.
///
/// The C ABI hands us `memptr` as a raw out-parameter; like the rest of
/// the interposed surface this entry point cannot be `unsafe` at the
/// Rust level (C callers see only the symbol), so the store is guarded
/// by the null check and documented here instead.
#[allow(clippy::not_unsafe_ptr_arg_deref)]
#[no_mangle]
pub extern "C" fn posix_memalign(memptr: *mut *mut c_void, align: usize, size: usize) -> c_int {
    if memptr.is_null()
        || !align.is_power_of_two()
        || !align.is_multiple_of(core::mem::size_of::<*mut c_void>())
    {
        return libc::EINVAL;
    }
    let p = alloc_impl(size, align.max(MALLOC_ALIGN));
    if p.is_null() {
        return libc::ENOMEM;
    }
    // SAFETY: memptr is non-null per the check above; the caller owns it.
    unsafe { *memptr = p.cast() };
    0
}

/// C11 `aligned_alloc(3)`: null + `EINVAL` for a non-power-of-two
/// alignment, null + `ENOMEM` on exhaustion. (Like glibc, the
/// `size % align == 0` clause is not enforced.)
#[no_mangle]
pub extern "C" fn aligned_alloc(align: usize, size: usize) -> *mut c_void {
    if !align.is_power_of_two() {
        set_errno(libc::EINVAL);
        return ptr::null_mut();
    }
    let p = alloc_impl(size, align.max(MALLOC_ALIGN));
    if p.is_null() {
        set_errno(libc::ENOMEM);
    }
    p.cast()
}

/// Legacy `memalign(3)` — still emitted by real programs; serving it here
/// keeps their pointers on the randomized heap instead of splitting the
/// process across two allocators.
#[no_mangle]
pub extern "C" fn memalign(align: usize, size: usize) -> *mut c_void {
    aligned_alloc(align.max(1).next_power_of_two(), size)
}

/// Legacy `valloc(3)`: page-aligned allocation.
#[no_mangle]
pub extern "C" fn valloc(size: usize) -> *mut c_void {
    // SAFETY: sysconf is async-signal-safe and has no preconditions.
    let page = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    let page = if page <= 0 { 4096 } else { page as usize };
    aligned_alloc(page, size)
}

/// glibc `malloc_usable_size(3)`: the true capacity of a live block — the
/// §4.4 bound made queryable. 0 for null and foreign pointers.
#[no_mangle]
pub extern "C" fn malloc_usable_size(ptr: *mut c_void) -> usize {
    usable(ptr.cast())
}

// ---- §4.4 bounded string copies ------------------------------------------

/// Length of the NUL-terminated string at `p`.
///
/// # Safety
///
/// `p` must point to a NUL-terminated string.
unsafe fn c_strlen(p: *const u8) -> usize {
    let mut n = 0;
    // SAFETY: the caller guarantees a terminator exists.
    while unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

/// Length of the string at `p`, scanning at most `max` bytes.
///
/// # Safety
///
/// `p` must be valid for reads up to `max` bytes or its NUL terminator.
unsafe fn c_strlen_bounded(p: *const u8, max: usize) -> usize {
    let mut n = 0;
    // SAFETY: the caller guarantees validity to `max` or the terminator.
    while n < max && unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

/// DieHard's `strcpy` (§4.4): when `dest` is a DieHard heap pointer the
/// copy is clamped to the object's true remaining capacity (and always
/// NUL-terminated within it); otherwise exact C `strcpy` semantics apply.
/// Returns `dest`, like C.
///
/// # Safety
///
/// `src` must be NUL-terminated; for non-heap destinations `dest` must
/// have room for the full string, exactly as C requires.
#[no_mangle]
pub unsafe extern "C" fn strcpy(dest: *mut c_char, src: *const c_char) -> *mut c_char {
    let d = dest.cast::<u8>();
    let s = src.cast::<u8>();
    // SAFETY: src is NUL-terminated per contract.
    let len = unsafe { c_strlen(s) };
    // SAFETY: the source slice covers exactly the scanned bytes.
    let src_slice = unsafe { core::slice::from_raw_parts(s, len) };
    match HEAP.remaining_space(d) {
        Some(space) => {
            // SAFETY: the DieHard object has `space` writable bytes at d.
            let dest_slice = unsafe { core::slice::from_raw_parts_mut(d, space) };
            safe_str::bounded_strcpy(dest_slice, space, src_slice);
        }
        None => {
            // SAFETY: C contract — dest holds len + 1 bytes.
            unsafe {
                ptr::copy_nonoverlapping(s, d, len);
                *d.add(len) = 0;
            }
        }
    }
    dest
}

/// DieHard's `strncpy` (§4.4): the caller's `n` is additionally clamped
/// by the destination object's true capacity, and (the paper's deliberate
/// deviation) the result is always NUL-terminated *within the object*;
/// zero-padding stops at the object bound too. Non-heap destinations get
/// exact C semantics — copy `min(strlen, n)`, pad with zeros to `n`, no
/// terminator beyond that. Returns `dest`.
///
/// # Safety
///
/// `src` must be readable up to `n` bytes or its terminator; for non-heap
/// destinations `dest` must hold `n` bytes, exactly as C requires.
#[no_mangle]
pub unsafe extern "C" fn strncpy(dest: *mut c_char, src: *const c_char, n: usize) -> *mut c_char {
    let d = dest.cast::<u8>();
    let s = src.cast::<u8>();
    // SAFETY: src is readable to n or NUL per contract.
    let len = unsafe { c_strlen_bounded(s, n) };
    // SAFETY: the source slice covers exactly the scanned bytes.
    let src_slice = unsafe { core::slice::from_raw_parts(s, len) };
    match HEAP.remaining_space(d) {
        Some(space) => {
            // SAFETY: the DieHard object has `space` writable bytes at d.
            let dest_slice = unsafe { core::slice::from_raw_parts_mut(d, space) };
            let out = safe_str::bounded_strncpy(dest_slice, space, src_slice, n);
            // C zero-pads through byte n - 1; clamp that to the object.
            // (Byte `out.copied` already holds the bounded terminator.)
            let pad_end = n.min(space);
            let mut i = out.copied;
            while i < pad_end {
                // SAFETY: i < space, inside the object.
                unsafe { *d.add(i) = 0 };
                i += 1;
            }
        }
        None => {
            // SAFETY: C contract — dest holds n bytes.
            unsafe {
                ptr::copy_nonoverlapping(s, d, len);
                ptr::write_bytes(d.add(len), 0, n - len);
            }
        }
    }
    dest
}

/// Shared tail of `strdup`/`strndup`: allocates `len + 1` bytes on the
/// randomized heap and copies the scanned prefix with the §4.4 bounded
/// semantics. A fresh heap object always holds at least the requested
/// `len + 1` bytes, so the bounded copy never truncates in practice — the
/// clamp is defense in depth, same as the other string entry points.
///
/// # Safety
///
/// `s` must be readable for `len` bytes.
unsafe fn dup_impl(s: *const u8, len: usize) -> *mut c_char {
    let d = alloc_impl(len.saturating_add(1), MALLOC_ALIGN);
    if d.is_null() {
        set_errno(libc::ENOMEM);
        return ptr::null_mut();
    }
    // SAFETY: the source slice covers exactly the scanned bytes.
    let src_slice = unsafe { core::slice::from_raw_parts(s, len) };
    match HEAP.remaining_space(d) {
        Some(space) => {
            // SAFETY: the DieHard object has `space` writable bytes at d.
            let dest_slice = unsafe { core::slice::from_raw_parts_mut(d, space) };
            safe_str::bounded_strcpy(dest_slice, space, src_slice);
        }
        None => {
            // Arena block (re-entrant bootstrap path): we own len + 1
            // bytes by construction.
            // SAFETY: the arena block holds len + 1 bytes; src covers len.
            unsafe {
                ptr::copy_nonoverlapping(s, d, len);
                *d.add(len) = 0;
            }
        }
    }
    d.cast()
}

/// C `strdup(3)`: duplicates `s` onto the randomized heap — the copy gets
/// DieHard's placement, over-provisioning, and §4.3 free validation like
/// any `malloc`ed block, and the write takes the §4.4 bounded path. Null +
/// `ENOMEM` on exhaustion.
///
/// # Safety
///
/// `s` must be NUL-terminated, exactly as C requires.
#[no_mangle]
pub unsafe extern "C" fn strdup(s: *const c_char) -> *mut c_char {
    let src = s.cast::<u8>();
    // SAFETY: src is NUL-terminated per contract.
    let len = unsafe { c_strlen(src) };
    // SAFETY: len bytes were just scanned as readable.
    unsafe { dup_impl(src, len) }
}

/// C `strndup(3)`: like [`strdup`] but copies at most `n` bytes of `s`
/// (the result is always NUL-terminated). The source scan stops at `n`,
/// so an unterminated buffer of at least `n` readable bytes is legal,
/// exactly as C requires.
///
/// # Safety
///
/// `s` must be readable up to `n` bytes or its NUL terminator.
#[no_mangle]
pub unsafe extern "C" fn strndup(s: *const c_char, n: usize) -> *mut c_char {
    let src = s.cast::<u8>();
    // SAFETY: src is readable to n or NUL per contract.
    let len = unsafe { c_strlen_bounded(src, n) };
    // SAFETY: len ≤ n bytes were just scanned as readable.
    unsafe { dup_impl(src, len) }
}

// ---- fork story ----------------------------------------------------------

extern "C" fn atfork_prepare() {
    HEAP.fork_prepare();
}

extern "C" fn atfork_parent() {
    // SAFETY: paired with atfork_prepare on this thread via pthread_atfork.
    unsafe { HEAP.fork_resume() };
}

extern "C" fn atfork_child() {
    // SAFETY: the child inherits the locks atfork_prepare took in the
    // parent; this releases exactly that set.
    unsafe { HEAP.fork_resume() };
}

extern "C" fn preload_init() {
    // glibc may grow its atfork-handler list with malloc here — that lands
    // on this very allocator, which is live from the first call.
    // SAFETY: plain fn pointers with the prescribed signatures.
    unsafe {
        libc::pthread_atfork(
            Some(atfork_prepare),
            Some(atfork_parent),
            Some(atfork_child),
        )
    };
}

/// Runs [`preload_init`] at load time, before `main` (and before any
/// user-code `fork`).
#[used]
#[link_section = ".init_array"]
static PRELOAD_CTOR: extern "C" fn() = preload_init;

#[cfg(test)]
mod tests {
    //! Live-fire tests: the `#[no_mangle]` exports above replace the C
    //! allocator *of this test binary itself* (strong symbols beat glibc's
    //! weak ones), so the harness, the `std` runtime, and every assertion
    //! below already run on the DieHard heap — the assertions just make
    //! the contract explicit.

    use super::*;
    use std::hint::black_box as bb;

    // LLVM treats calls to symbols named `malloc`, `calloc`, `strcpy`, …
    // as the C builtins they interpose: an unused huge `calloc` gets
    // elided (and assumed successful, i.e. non-null), a `strcpy` from a
    // string literal gets folded to `memcpy`. Host binaries compiled at
    // -O2 carry the same folds and that is fine — the folds implement the
    // same contract — but *these* tests exist to execute our bodies, so
    // every call goes through a `black_box`ed function pointer that hides
    // the callee's identity from the optimizer. The local definitions
    // shadow the glob-imported `super::*` items of the same names.
    fn malloc(n: usize) -> *mut c_void {
        bb(super::malloc as extern "C" fn(usize) -> *mut c_void)(n)
    }
    fn free(p: *mut c_void) {
        bb(super::free as extern "C" fn(*mut c_void))(p)
    }
    fn calloc(n: usize, s: usize) -> *mut c_void {
        bb(super::calloc as extern "C" fn(usize, usize) -> *mut c_void)(n, s)
    }
    fn realloc(p: *mut c_void, n: usize) -> *mut c_void {
        bb(super::realloc as extern "C" fn(*mut c_void, usize) -> *mut c_void)(p, n)
    }
    fn reallocarray(p: *mut c_void, n: usize, s: usize) -> *mut c_void {
        bb(super::reallocarray as extern "C" fn(*mut c_void, usize, usize) -> *mut c_void)(p, n, s)
    }
    fn posix_memalign(out: *mut *mut c_void, a: usize, s: usize) -> c_int {
        bb(super::posix_memalign as extern "C" fn(*mut *mut c_void, usize, usize) -> c_int)(
            out, a, s,
        )
    }
    fn aligned_alloc(a: usize, s: usize) -> *mut c_void {
        bb(super::aligned_alloc as extern "C" fn(usize, usize) -> *mut c_void)(a, s)
    }
    fn memalign(a: usize, s: usize) -> *mut c_void {
        bb(super::memalign as extern "C" fn(usize, usize) -> *mut c_void)(a, s)
    }
    fn valloc(s: usize) -> *mut c_void {
        bb(super::valloc as extern "C" fn(usize) -> *mut c_void)(s)
    }
    fn malloc_usable_size(p: *mut c_void) -> usize {
        bb(super::malloc_usable_size as extern "C" fn(*mut c_void) -> usize)(p)
    }
    unsafe fn strcpy(d: *mut c_char, s: *const c_char) -> *mut c_char {
        // SAFETY: forwarded caller contract.
        unsafe {
            bb(super::strcpy as unsafe extern "C" fn(*mut c_char, *const c_char) -> *mut c_char)(
                d, s,
            )
        }
    }
    unsafe fn strncpy(d: *mut c_char, s: *const c_char, n: usize) -> *mut c_char {
        // SAFETY: forwarded caller contract.
        unsafe {
            bb(super::strncpy
                as unsafe extern "C" fn(*mut c_char, *const c_char, usize) -> *mut c_char)(
                d, s, n
            )
        }
    }
    unsafe fn strdup(s: *const c_char) -> *mut c_char {
        // SAFETY: forwarded caller contract.
        unsafe { bb(super::strdup as unsafe extern "C" fn(*const c_char) -> *mut c_char)(s) }
    }
    unsafe fn strndup(s: *const c_char, n: usize) -> *mut c_char {
        // SAFETY: forwarded caller contract.
        unsafe {
            bb(super::strndup as unsafe extern "C" fn(*const c_char, usize) -> *mut c_char)(s, n)
        }
    }

    fn errno() -> c_int {
        // SAFETY: always-valid thread-local address.
        unsafe { *libc::__errno_location() }
    }

    #[test]
    fn malloc_is_sixteen_aligned_and_writable() {
        for size in [1usize, 8, 24, 100, 4096, 20_000] {
            let p = malloc(size).cast::<u8>();
            assert!(!p.is_null());
            assert_eq!(p as usize % MALLOC_ALIGN, 0, "size {size}");
            let cap = malloc_usable_size(p.cast());
            assert!(cap >= size, "usable {cap} < requested {size}");
            // SAFETY: cap bytes are ours to write.
            unsafe {
                p.write_bytes(0xA5, cap);
                assert_eq!(*p.add(cap - 1), 0xA5);
            }
            free(p.cast());
        }
    }

    #[test]
    fn malloc_zero_returns_unique_freeable_pointers() {
        let a = malloc(0);
        let b = malloc(0);
        assert!(!a.is_null() && !b.is_null(), "glibc-style non-null");
        assert_ne!(a, b, "distinct objects");
        free(a);
        free(b);
    }

    #[test]
    fn free_ignores_null_foreign_and_double() {
        free(ptr::null_mut());
        let stack_var = 7u64;
        free(ptr::from_ref(&stack_var).cast_mut().cast()); // stack pointer
        free(0xDEAD_0000usize as *mut c_void); // wild pointer
        let p = malloc(64);
        free(p);
        free(p); // double free: ignored, not fatal
    }

    #[test]
    fn calloc_zeroes_recycled_memory() {
        // Dirty a block, free it, then calloc until the recycled slot
        // comes back — it must read as zero regardless.
        let p = malloc(256).cast::<u8>();
        // SAFETY: live 256-byte object.
        unsafe { p.write_bytes(0xFF, 256) };
        free(p.cast());
        for _ in 0..64 {
            let q = calloc(16, 16).cast::<u8>();
            assert!(!q.is_null());
            // SAFETY: live 256-byte object.
            unsafe {
                for i in 0..256 {
                    assert_eq!(*q.add(i), 0, "calloc must zero byte {i}");
                }
            }
            free(q.cast());
        }
    }

    #[test]
    fn calloc_multiplication_overflow_is_enomem() {
        set_errno(0);
        let p = calloc(usize::MAX / 8, 16);
        assert!(p.is_null());
        assert_eq!(errno(), libc::ENOMEM);
    }

    #[test]
    fn realloc_null_and_zero_edges() {
        // realloc(NULL, n) == malloc(n)
        let p = realloc(ptr::null_mut(), 100);
        assert!(!p.is_null());
        assert!(malloc_usable_size(p) >= 100);
        // realloc(p, 0) frees and returns null
        assert!(realloc(p, 0).is_null());
    }

    #[test]
    fn realloc_preserves_contents_and_shrinks_in_place() {
        let p = malloc(100).cast::<u8>();
        // SAFETY: live 100-byte object.
        unsafe {
            for i in 0..100 {
                *p.add(i) = i as u8;
            }
        }
        // Shrink: fits the true capacity, so the pointer is unchanged.
        let same = realloc(p.cast(), 10);
        assert_eq!(same.cast::<u8>(), p);
        // Grow beyond the 128-byte class: new block, contents preserved.
        let big = realloc(same, 5000).cast::<u8>();
        assert!(!big.is_null());
        // SAFETY: live 5000-byte object holding the copied prefix.
        unsafe {
            for i in 0..100 {
                assert_eq!(*big.add(i), i as u8, "byte {i} lost in realloc");
            }
        }
        free(big.cast());
    }

    #[test]
    fn reallocarray_checks_overflow() {
        set_errno(0);
        assert!(reallocarray(ptr::null_mut(), usize::MAX / 2, 4).is_null());
        assert_eq!(errno(), libc::ENOMEM);
        let p = reallocarray(ptr::null_mut(), 25, 4);
        assert!(!p.is_null());
        assert!(malloc_usable_size(p) >= 100);
        free(p);
    }

    #[test]
    fn posix_memalign_contract() {
        let mut out: *mut c_void = ptr::null_mut();
        // Non-power-of-two and sub-pointer alignments: EINVAL by return.
        assert_eq!(posix_memalign(&raw mut out, 24, 64), libc::EINVAL);
        assert_eq!(posix_memalign(&raw mut out, 2, 64), libc::EINVAL);
        assert_eq!(posix_memalign(ptr::null_mut(), 16, 64), libc::EINVAL);
        // Valid alignments, including beyond-page ones.
        for align in [8usize, 64, 4096, 1 << 16] {
            let rc = posix_memalign(&raw mut out, align, 200);
            assert_eq!(rc, 0, "align {align}");
            assert_eq!(out as usize % align, 0);
            // SAFETY: live 200-byte object.
            unsafe { out.cast::<u8>().write_bytes(1, 200) };
            free(out);
        }
    }

    #[test]
    fn aligned_alloc_sets_einval_on_bad_alignment() {
        set_errno(0);
        assert!(aligned_alloc(24, 64).is_null());
        assert_eq!(errno(), libc::EINVAL);
        let p = aligned_alloc(256, 300);
        assert!(!p.is_null());
        assert_eq!(p as usize % 256, 0);
        free(p);
    }

    #[test]
    fn memalign_and_valloc_serve_aligned_blocks() {
        let p = memalign(64, 100);
        assert!(!p.is_null());
        assert_eq!(p as usize % 64, 0);
        free(p);
        let v = valloc(100);
        assert!(!v.is_null());
        assert_eq!(v as usize % 4096, 0);
        free(v);
    }

    #[test]
    fn usable_size_answers_zero_for_foreign_pointers() {
        assert_eq!(malloc_usable_size(ptr::null_mut()), 0);
        let stack_var = 0u8;
        assert_eq!(
            malloc_usable_size(ptr::from_ref(&stack_var).cast_mut().cast()),
            0
        );
    }

    #[test]
    fn strcpy_clamps_to_the_heap_object() {
        let dst = malloc(8).cast::<c_char>();
        let neighbor = malloc(8).cast::<u8>();
        assert!(!dst.is_null() && !neighbor.is_null());
        // SAFETY: live 8-byte object.
        unsafe { neighbor.write_bytes(0x5A, 8) };
        let long = b"far longer than eight bytes\0";
        // SAFETY: dst is a live heap object; src is NUL-terminated.
        let back = unsafe { strcpy(dst, long.as_ptr().cast()) };
        assert_eq!(back, dst, "C contract: returns dest");
        let space = malloc_usable_size(dst.cast());
        assert!(space >= 8, "8-byte request, at least the 16-byte class");
        // SAFETY: both objects are live; `space` is dst's true capacity.
        unsafe {
            assert_eq!(
                *dst.cast::<u8>().add(space - 1),
                0,
                "terminated at the object bound"
            );
            for i in 0..8 {
                assert_eq!(*neighbor.add(i), 0x5A, "neighbor byte {i} corrupted");
            }
        }
        free(dst.cast());
        free(neighbor.cast());
    }

    #[test]
    fn strcpy_keeps_c_semantics_off_heap() {
        let mut buf = [0xAAu8; 16];
        // SAFETY: buf has room for the 5 + NUL source, per C contract.
        unsafe { strcpy(buf.as_mut_ptr().cast(), c"hello".as_ptr().cast()) };
        assert_eq!(&buf[..6], b"hello\0");
        assert_eq!(buf[6], 0xAA, "no bytes written past the terminator");
    }

    #[test]
    fn strncpy_pads_and_clamps() {
        // Off-heap: exact C semantics — copy then zero-pad to n.
        let mut buf = [0xAAu8; 10];
        // SAFETY: buf holds n = 8 bytes, per C contract.
        unsafe { strncpy(buf.as_mut_ptr().cast(), c"ab".as_ptr().cast(), 8) };
        assert_eq!(&buf[..8], b"ab\0\0\0\0\0\0");
        assert_eq!(buf[8], 0xAA, "n bytes exactly");
        // On-heap with a lying n: clamped to the object's true capacity.
        let dst = malloc(8).cast::<c_char>();
        let space = malloc_usable_size(dst.cast());
        let mut long = [b'a'; 64];
        long[63] = 0;
        // SAFETY: dst is a live heap object; src is readable to n or NUL.
        unsafe { strncpy(dst, long.as_ptr().cast(), 1 << 20) };
        // SAFETY: live object; the last in-bounds byte is the terminator.
        unsafe { assert_eq!(*dst.cast::<u8>().add(space - 1), 0) };
        free(dst.cast());
    }

    #[test]
    fn strdup_lands_on_the_randomized_heap() {
        // SAFETY: literal is NUL-terminated.
        let p = unsafe { strdup(c"hello, diehard".as_ptr()) };
        assert!(!p.is_null());
        let cap = malloc_usable_size(p.cast());
        assert!(cap >= 15, "room for the string and its terminator");
        // SAFETY: live heap object holding the copy.
        unsafe {
            for (i, &b) in b"hello, diehard\0".iter().enumerate() {
                assert_eq!(*p.cast::<u8>().add(i), b, "byte {i}");
            }
            // The duplicate is a first-class heap block: writable to its
            // full capacity and freeable like any malloc'd pointer.
            p.cast::<u8>().write_bytes(0x42, cap);
        }
        free(p.cast());
        free(p.cast()); // double free of the dup: ignored per §4.3
    }

    #[test]
    fn strdup_empty_string() {
        // SAFETY: literal is NUL-terminated.
        let p = unsafe { strdup(c"".as_ptr()) };
        assert!(!p.is_null(), "empty dup is a real, freeable object");
        // SAFETY: live object of at least 1 byte.
        unsafe { assert_eq!(*p.cast::<u8>(), 0) };
        free(p.cast());
    }

    #[test]
    fn strndup_clamps_to_n_and_terminates() {
        // SAFETY: literal is NUL-terminated; n = 3 < strlen.
        let p = unsafe { strndup(c"abcdef".as_ptr(), 3) };
        assert!(!p.is_null());
        // SAFETY: live object holding "abc\0".
        unsafe {
            assert_eq!(*p.cast::<u8>(), b'a');
            assert_eq!(*p.cast::<u8>().add(2), b'c');
            assert_eq!(*p.cast::<u8>().add(3), 0, "always NUL-terminated");
        }
        free(p.cast());
        // n beyond strlen: full copy, nothing read past the terminator.
        // SAFETY: literal is NUL-terminated.
        let q = unsafe { strndup(c"xy".as_ptr(), 1 << 20) };
        // SAFETY: live object holding "xy\0".
        unsafe {
            assert_eq!(*q.cast::<u8>().add(1), b'y');
            assert_eq!(*q.cast::<u8>().add(2), 0);
        }
        free(q.cast());
    }

    #[test]
    fn strndup_never_reads_past_n_on_unterminated_buffers() {
        // An unterminated source: only n bytes are readable, exactly the
        // C contract strndup must honor.
        let raw = [b'z'; 8]; // no NUL anywhere
                             // SAFETY: 8 bytes readable, n = 8.
        let p = unsafe { strndup(raw.as_ptr().cast(), raw.len()) };
        assert!(!p.is_null());
        // SAFETY: live object holding "zzzzzzzz\0".
        unsafe {
            for i in 0..8 {
                assert_eq!(*p.cast::<u8>().add(i), b'z', "byte {i}");
            }
            assert_eq!(*p.cast::<u8>().add(8), 0);
        }
        assert!(malloc_usable_size(p.cast()) >= 9);
        free(p.cast());
    }

    #[test]
    fn arena_serves_reentrant_requests() {
        let before = arena::used();
        // Simulate a re-entrant malloc: the guard is already set.
        let p = with_guard(|_| alloc_impl(100, MALLOC_ALIGN));
        assert!(!p.is_null());
        assert!(arena::contains(p), "re-entrant requests hit the arena");
        assert!(arena::used() > before);
        assert!(arena::block_size(p) >= 100);
        assert!(malloc_usable_size(p.cast()) >= 100);
        // SAFETY: live 100-byte arena block.
        unsafe { p.write_bytes(0x3C, 100) };
        // Freeing is a no-op by address recognition, and must not crash.
        free(p.cast());
        // A realloc out of the arena copies by the header size.
        let grown = realloc(p.cast(), 500).cast::<u8>();
        assert!(!grown.is_null());
        assert!(!arena::contains(grown), "the copy lives on the real heap");
        // SAFETY: live 500-byte object holding the copied prefix.
        unsafe { assert_eq!(*grown.add(99), 0x3C) };
        free(grown.cast());
    }

    #[test]
    fn fork_child_inherits_a_usable_heap() {
        // Warm the heap (and its locks) in the parent first.
        let warm = malloc(1000);
        assert!(!warm.is_null());
        // SAFETY: fork in a test binary; the child only touches the
        // allocator and _exit (no stdio, no harness teardown).
        let pid = unsafe { libc::fork() };
        assert!(pid >= 0, "fork failed");
        if pid == 0 {
            // Child: the atfork hooks released the inherited locks; the
            // heap must serve allocations immediately.
            for i in 0..200usize {
                let q = malloc(8 + (i * 37) % 2000).cast::<u8>();
                if q.is_null() {
                    // SAFETY: child exit, no cleanup wanted.
                    unsafe { libc::_exit(1) };
                }
                // SAFETY: live object of at least 8 bytes.
                unsafe { q.write_bytes(0x77, 8) };
                free(q.cast());
            }
            // SAFETY: child exit, no cleanup wanted.
            unsafe { libc::_exit(0) };
        }
        let mut status: c_int = -1;
        // SAFETY: pid is our direct child.
        let waited = unsafe { libc::waitpid(pid, &raw mut status, 0) };
        assert_eq!(waited, pid);
        assert_eq!(status, 0, "child exited cleanly on the inherited heap");
        free(warm);
    }

    #[test]
    fn concurrent_churn_through_the_c_abi() {
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                scope.spawn(move || {
                    let mut live: Vec<*mut c_void> = Vec::new();
                    for i in 0..400usize {
                        let p = malloc(8 + (usize::from(t) * 97 + i) % 2000);
                        assert!(!p.is_null());
                        // SAFETY: live object of at least 8 bytes.
                        unsafe { p.cast::<u8>().write_bytes(t, 8) };
                        live.push(p);
                        if live.len() > 40 {
                            free(live.swap_remove(0));
                        }
                    }
                    for p in live {
                        free(p);
                    }
                });
            }
        });
    }
}
