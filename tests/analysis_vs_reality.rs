//! Statistical integration tests: the paper's closed-form model (Section 6)
//! against Monte Carlo measurements of the actual allocator, with fixed
//! seeds so the tests are deterministic.

use diehard::core::analysis::{p_dangling_mask, p_overflow_mask, p_uninit_detect};
use diehard::core::partition::Partition;
use diehard::core::rng::splitmix;
use diehard::prelude::*;

/// Theorem 1 vs the allocator: overflow masking at three fullness levels.
#[test]
fn theorem1_matches_measurement() {
    const CAP: usize = 2048;
    const TRIALS: usize = 4000;
    let mut rng = Mwc::seeded(0x7E01);
    for (fullness, denom) in [(0.125, 8u32), (0.25, 4), (0.5, 2)] {
        let mut masked = 0;
        for _ in 0..TRIALS {
            let mut part =
                Partition::new(SizeClass::from_index(0), CAP, CAP, splitmix(rng.next_u64()));
            for _ in 0..(CAP as f64 * fullness) as usize {
                part.alloc().unwrap();
            }
            let start = rng.below(CAP - 1);
            if !part.is_live(start) {
                masked += 1;
            }
        }
        let analytic = p_overflow_mask(1.0 - fullness, 1, 1);
        let empirical = masked as f64 / TRIALS as f64;
        assert!(
            (analytic - empirical).abs() < 0.03,
            "1/{denom} full: analytic {analytic:.3} vs measured {empirical:.3}"
        );
    }
}

/// Theorem 2 vs the allocator: dangling-object survival.
#[test]
fn theorem2_matches_measurement() {
    const CAP: usize = 4096;
    const TRIALS: usize = 600;
    const A: u64 = 400;
    let mut rng = Mwc::seeded(0x7E02);
    let mut intact = 0;
    for _ in 0..TRIALS {
        let mut part = Partition::new(SizeClass::from_index(0), CAP, CAP, splitmix(rng.next_u64()));
        let mut live = Vec::new();
        for _ in 0..CAP / 2 {
            live.push(part.alloc().unwrap());
        }
        let victim = live[rng.below(live.len())];
        part.free(victim);
        let mut survived = true;
        for _ in 0..A {
            if part.alloc() == Some(victim) {
                survived = false;
                break;
            }
        }
        if survived {
            intact += 1;
        }
    }
    let analytic = p_dangling_mask(A, (CAP / 2) as u64, 1);
    let empirical = intact as f64 / TRIALS as f64;
    assert!(
        (analytic - empirical).abs() < 0.05,
        "analytic {analytic:.3} vs measured {empirical:.3}"
    );
}

/// Theorem 3 vs the replicated voter, end to end: a one-byte uninit read.
#[test]
fn theorem3_matches_replicated_voter() {
    const TRIALS: u64 = 150;
    let prog = Program::new(
        "uninit",
        vec![
            Op::Alloc { id: 0, size: 64 },
            Op::Read {
                id: 0,
                offset: 0,
                len: 1,
            },
        ],
    );
    let mut detected = 0;
    for t in 0..TRIALS {
        let set = ReplicaSet::new(3, 0x7E03 + t * 7919, HeapConfig::default());
        if matches!(set.run(&prog).outcome, ReplicatedOutcome::Divergence { .. }) {
            detected += 1;
        }
    }
    let analytic = p_uninit_detect(8, 3);
    let empirical = detected as f64 / TRIALS as f64;
    assert!(
        (analytic - empirical).abs() < 0.06,
        "analytic {analytic:.3} vs measured {empirical:.3}"
    );
}

/// The E[min separation] = M − 1 claim on a real heap at its cap.
#[test]
fn expected_separation_matches() {
    for m in [2.0f64, 4.0] {
        let cap = 8192;
        let threshold = (cap as f64 / m) as usize;
        let mut part = Partition::new(SizeClass::from_index(0), cap, threshold, 0x5E9A);
        while part.alloc().is_some() {}
        let gap = part.mean_live_gap().unwrap();
        let expect = m - 1.0;
        assert!(
            (gap - expect).abs() / expect < 0.1,
            "M={m}: gap {gap:.3}, expected {expect}"
        );
    }
}
