//! `perf_report` — runs the registered hot-path kernels deterministically
//! and emits the machine-readable perf trajectory (`BENCH_<pr>.json`).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p diehard-bench --bin perf_report            # full
//! cargo run --release -p diehard-bench --bin perf_report -- --smoke # CI
//! cargo run ... --bin perf_report -- --out path/to/report.json
//! ```
//!
//! The process exits non-zero when the written report is missing any
//! registered kernel, so CI can gate on completeness by exit status alone.

use diehard_bench::perf::{missing_kernels, render_json, run_all};
use diehard_bench::TextTable;

fn main() {
    let smoke = diehard_bench::smoke();
    let out_path = out_arg().unwrap_or_else(|| "BENCH_5.json".to_string());

    let results = run_all(smoke);
    let json = render_json(&results);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    let mut table = TextTable::new(vec!["kernel", "mean", "min", "max", "iters"]);
    for r in &results {
        table.row(vec![
            r.name.to_string(),
            format!("{:.1} ns/op", r.mean_ns),
            format!("{:.1} ns/op", r.min_ns),
            format!("{:.1} ns/op", r.max_ns),
            r.iters.to_string(),
        ]);
    }
    println!(
        "perf trajectory{} -> {out_path}",
        if smoke {
            " (--smoke: wiring check only)"
        } else {
            ""
        }
    );
    println!("{}", table.render());

    // Completeness gate: re-read what actually landed on disk.
    let written = std::fs::read_to_string(&out_path).unwrap_or_default();
    let missing = missing_kernels(&written);
    if !missing.is_empty() {
        eprintln!("perf_report: {out_path} is missing kernels: {missing:?}");
        std::process::exit(1);
    }
}

/// The value following `--out`, if present.
fn out_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            return args.next();
        }
    }
    None
}
