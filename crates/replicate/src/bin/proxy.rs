//! The `diehard-proxy` front end: replicated execution for TCP clients.
//!
//! Usage:
//!
//! ```text
//! diehard-proxy [-n REPLICAS] [--port PORT] [--chunk BYTES] [--cap BYTES]
//!               [--preload LIB] [--seed SEED] [--pool DEPTH] -- COMMAND [ARGS...]
//! diehard-proxy --smoke
//! diehard-proxy --pool-smoke
//! ```
//!
//! Listens on `127.0.0.1:PORT` (default 0 = kernel-assigned; the bound
//! port is printed to stderr) and gives every accepted connection its own
//! set of `REPLICAS` differently-seeded copies of `COMMAND`: request bytes
//! are broadcast to the replicas' stdins, their stdouts are voted at
//! `BYTES`-sized barriers, and only quorum bytes flow back to the client.
//! Clients send their whole request, half-close (`shutdown(SHUT_WR)`), and
//! read the voted response to EOF.
//!
//! `--pool DEPTH` keeps up to `DEPTH` complete replica sets pre-spawned
//! and parked, so an accepted connection takes a ready set in O(1) instead
//! of paying fork/exec at accept time (~3.5 ms for three replicas); the
//! pool refills in the background and a stats line is printed per retired
//! connection. Seed discipline makes pooling invisible to vote outcomes.
//!
//! `--smoke` runs a self-contained loopback check — three `/bin/cat`
//! replicas echoing one client's payload through a full voted session —
//! and exits 0 on byte-exact agreement (the CI smoke hook). `--pool-smoke`
//! is the warm-path sibling: it serves 5 sequential connections from a
//! depth-2 pool, waiting for warmth before each, and exits 0 only if the
//! echoes are byte-exact *and* the stats line reports ≥ 3 pool hits.

use diehard_replicate::net::shutdown_write;
use diehard_replicate::net::{connect_loopback, Listener};
use diehard_replicate::proxy::Proxy;
use diehard_replicate::LaunchConfig;
use std::io::{Read, Write};
use std::sync::atomic::AtomicBool;

fn usage() -> ! {
    eprintln!(
        "usage: diehard-proxy [-n REPLICAS] [--port PORT] [--chunk BYTES] [--cap BYTES]\n\
         \x20                    [--preload LIB] [--seed SEED] [--pool DEPTH] -- COMMAND [ARGS...]\n\
         \x20      diehard-proxy --smoke\n\
         \x20      diehard-proxy --pool-smoke\n\
         \n\
         Serves 127.0.0.1:PORT (default: kernel-assigned, printed on stderr).\n\
         Each accepted connection gets its own REPLICAS differently-seeded\n\
         copies of COMMAND (default 3): request bytes are broadcast to every\n\
         replica's stdin and responses are voted at BYTES-sized barriers\n\
         (default 4096; power of two) — clients receive only quorum bytes.\n\
         Clients send the full request, shutdown(SHUT_WR), then read to EOF.\n\
         --cap bounds the per-connection outbound queue; --seed derives\n\
         deterministic per-replica seeds (default: fresh entropy per\n\
         connection); --pool pre-spawns up to DEPTH warm replica sets so\n\
         accepts skip fork/exec (0 = cold spawns, the default); --smoke\n\
         runs a loopback self-test and exits; --pool-smoke does the same\n\
         through a depth-2 pool and asserts >= 3 warm handoffs."
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut replicas = 3usize;
    let mut port = 0u16;
    let mut chunk: Option<usize> = None;
    let mut cap: Option<usize> = None;
    let mut preload: Option<String> = None;
    let mut master_seed: Option<u64> = None;
    let mut pool_depth = 0usize;
    let mut smoke = false;
    let mut pool_smoke = false;
    let mut command: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--replicas" => {
                i += 1;
                replicas = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--port" => {
                i += 1;
                port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chunk" => {
                i += 1;
                chunk = args.get(i).and_then(|s| s.parse().ok());
                if chunk.is_none() {
                    usage();
                }
            }
            "--cap" => {
                i += 1;
                cap = args.get(i).and_then(|s| s.parse().ok());
                if cap.is_none() {
                    usage();
                }
            }
            "--preload" => {
                i += 1;
                preload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                master_seed = args.get(i).and_then(|s| s.parse().ok());
                if master_seed.is_none() {
                    usage();
                }
            }
            "--pool" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(d) => pool_depth = d,
                    None => usage(),
                }
            }
            "--smoke" => smoke = true,
            "--pool-smoke" => pool_smoke = true,
            "--" => {
                command = args[i + 1..].to_vec();
                break;
            }
            "-h" | "--help" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    if smoke {
        std::process::exit(run_smoke());
    }
    if pool_smoke {
        std::process::exit(run_pool_smoke());
    }
    if command.is_empty() || replicas == 0 || replicas == 2 {
        usage();
    }

    let mut config = LaunchConfig::new(replicas, command, Vec::new());
    config.preload = preload;
    if let Some(c) = chunk {
        config.chunk = c;
    }
    if let Some(seed) = master_seed {
        config.seeds = (0..replicas as u64)
            .map(|i| diehard_core::rng::splitmix(seed ^ (i + 1)))
            .collect();
    }

    let listener = match Listener::bind_loopback(port) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("diehard-proxy: bind 127.0.0.1:{port} failed: {e}");
            std::process::exit(1);
        }
    };
    let mut proxy = match Proxy::new(listener, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("diehard-proxy: {e}");
            std::process::exit(1);
        }
    };
    if let Some(bytes) = cap {
        proxy = proxy.with_out_cap(bytes);
    }
    if pool_depth > 0 {
        proxy = proxy.with_pool(pool_depth).with_pool_stats_log(true);
    }
    match proxy.local_port() {
        Ok(p) => eprintln!("diehard-proxy: listening on 127.0.0.1:{p}"),
        Err(e) => eprintln!("diehard-proxy: listening (port unknown: {e})"),
    }

    // Serve until killed; there is no orderly-shutdown signal surface.
    static RUN_FOREVER: AtomicBool = AtomicBool::new(false);
    match proxy.run(&RUN_FOREVER) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("diehard-proxy: reactor failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Warm-pool self-test: 5 sequential voted `/bin/cat` echoes served from a
/// depth-2 pool, waiting for the pool to report warmth before each
/// connection. Passes only if every echo is byte-exact AND the stats
/// report at least 3 warm handoffs (pool hits).
fn run_pool_smoke() -> i32 {
    let config = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
    let listener = match Listener::bind_loopback(0) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("diehard-proxy: pool-smoke bind failed: {e}");
            return 1;
        }
    };
    let mut proxy = match Proxy::new(listener, config) {
        Ok(p) => p.with_pool(2).with_pool_stats_log(true),
        Err(e) => {
            eprintln!("diehard-proxy: pool-smoke setup failed: {e}");
            return 1;
        }
    };
    let port = match proxy.local_port() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("diehard-proxy: pool-smoke port lookup failed: {e}");
            return 1;
        }
    };
    let gauge = proxy.pool_gauge();
    static STOP: AtomicBool = AtomicBool::new(false);
    let server = std::thread::spawn(move || proxy.run(&STOP));

    let payload = b"warm pool smoke payload\n".to_vec();
    let verdict = (|| -> std::io::Result<usize> {
        let mut exact = 0usize;
        for round in 0..5 {
            // Wait until at least one set is parked, so this connection is
            // a guaranteed warm handoff.
            let t0 = std::time::Instant::now();
            while gauge.load(std::sync::atomic::Ordering::Acquire) == 0 {
                if t0.elapsed() > std::time::Duration::from_secs(10) {
                    eprintln!("diehard-proxy: pool-smoke: pool never warmed (round {round})");
                    return Ok(exact);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let mut stream = connect_loopback(port)?;
            stream.write_all(&payload)?;
            shutdown_write(&stream)?;
            let mut echoed = Vec::new();
            stream.read_to_end(&mut echoed)?;
            if echoed == payload {
                exact += 1;
            }
        }
        Ok(exact)
    })();

    STOP.store(true, std::sync::atomic::Ordering::Release);
    let summary = server.join().expect("proxy thread");
    match (verdict, summary) {
        (Ok(exact), Ok(summary)) => {
            let hits = summary.pool.handed_out;
            eprintln!(
                "diehard-proxy: pool depth=2 spawned={} handed_out={} reaped_idle={} cold={}",
                summary.pool.spawned, hits, summary.pool.reaped_idle, summary.pool.cold_spawns
            );
            if exact == 5 && summary.diverged == 0 && hits >= 3 {
                eprintln!("diehard-proxy: pool-smoke OK (5/5 byte-exact, {hits} pool hits)");
                0
            } else {
                eprintln!(
                    "diehard-proxy: pool-smoke FAILED: {exact}/5 byte-exact, {} diverged, {hits} pool hits (need >= 3)",
                    summary.diverged
                );
                1
            }
        }
        (Err(e), _) => {
            eprintln!("diehard-proxy: pool-smoke FAILED: {e}");
            1
        }
        (_, Err(e)) => {
            eprintln!("diehard-proxy: pool-smoke FAILED: reactor error: {e}");
            1
        }
    }
}

/// Loopback self-test: one voted `/bin/cat` session, byte-exact echo.
fn run_smoke() -> i32 {
    let config = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
    let listener = match Listener::bind_loopback(0) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("diehard-proxy: smoke bind failed: {e}");
            return 1;
        }
    };
    let mut proxy = match Proxy::new(listener, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("diehard-proxy: smoke setup failed: {e}");
            return 1;
        }
    };
    let port = match proxy.local_port() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("diehard-proxy: smoke port lookup failed: {e}");
            return 1;
        }
    };
    static STOP: AtomicBool = AtomicBool::new(false);
    let server = std::thread::spawn(move || proxy.run(&STOP));

    // A payload spanning several chunks, so real barriers resolve.
    let payload: Vec<u8> = (0..32_768u32).map(|i| (i % 251) as u8).collect();
    let verdict = (|| -> std::io::Result<bool> {
        let mut stream = connect_loopback(port)?;
        let to_send = payload.clone();
        let writer = {
            let stream = stream.try_clone()?;
            std::thread::spawn(move || {
                let mut stream = stream;
                let _ = stream.write_all(&to_send);
                let _ = shutdown_write(&stream);
            })
        };
        let mut echoed = Vec::new();
        stream.read_to_end(&mut echoed)?;
        writer.join().expect("writer thread");
        Ok(echoed == payload)
    })();

    STOP.store(true, std::sync::atomic::Ordering::Release);
    let summary = server.join().expect("proxy thread");
    match (verdict, summary) {
        (Ok(true), Ok(summary)) if summary.diverged == 0 => {
            eprintln!(
                "diehard-proxy: smoke OK ({} bytes voted through 3 replicas)",
                payload.len()
            );
            0
        }
        (Ok(true), Ok(summary)) => {
            eprintln!(
                "diehard-proxy: smoke FAILED: {} diverged session(s)",
                summary.diverged
            );
            1
        }
        (Ok(false), _) => {
            eprintln!("diehard-proxy: smoke FAILED: echoed bytes differ");
            1
        }
        (Err(e), _) => {
            eprintln!("diehard-proxy: smoke FAILED: {e}");
            1
        }
        (_, Err(e)) => {
            eprintln!("diehard-proxy: smoke FAILED: reactor error: {e}");
            1
        }
    }
}
