//! Runs a representative subset of the evaluation binaries with `--smoke`,
//! proving every registered bin target actually launches, computes, and
//! prints a table — the CI guard for the `cargo run --bin fig4a -- --smoke`
//! fast path.

use std::process::Command;

fn run_smoke(bin_path: &str, expect: &str) {
    let out = Command::new(bin_path)
        .arg("--smoke")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin_path}: {e}"));
    assert!(
        out.status.success(),
        "{bin_path} --smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(expect),
        "{bin_path} output missing {expect:?}:\n{stdout}"
    );
}

#[test]
fn fig4a_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_fig4a"), "Figure 4(a)");
}

#[test]
fn squid_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_squid"), "squid-sim");
}

#[test]
fn table1_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_table1"), "Table 1");
}

#[test]
fn uninit_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_uninit"), "Theorem 3");
}

/// `perf_report --smoke` must emit a JSON report containing every
/// registered kernel (the CI completeness gate) at the requested path.
#[test]
fn perf_report_smoke_emits_complete_json() {
    // Cargo-provided per-target temp dir plus the test process id: no
    // collision with a concurrent run of this same test elsewhere.
    let out = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("perf_report_smoke_{}.json", std::process::id()));
    let out_str = out.to_str().unwrap();
    let result = Command::new(env!("CARGO_BIN_EXE_perf_report"))
        .args(["--smoke", "--out", out_str])
        .output()
        .expect("spawn perf_report");
    assert!(
        result.status.success(),
        "perf_report --smoke failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let json = std::fs::read_to_string(&out).expect("report written");
    let missing = diehard_bench::perf::missing_kernels(&json);
    assert!(
        missing.is_empty(),
        "kernels missing from report: {missing:?}"
    );
    let _ = std::fs::remove_file(&out);
}
