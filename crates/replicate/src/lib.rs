//! # diehard-replicate
//!
//! Process-level replication (§5): "DieHard spawns each replica in a
//! separate process ... Each replica receives its standard input from
//! DieHard via a pipe ... DieHard manages output from the replicas by
//! periodically synchronizing at barriers. Whenever all currently-live
//! replicas terminate or fill their output buffers (currently 4K each, the
//! unit of transfer of a pipe), the voter compares the contents of each
//! replica's output buffer."
//!
//! The paper's launcher points `LD_PRELOAD` at `libdiehard.so` so every
//! replica gets a differently-seeded allocator. The Rust analogue: child
//! programs link the `diehard_core::global::DieHard` allocator and read
//! their seed from `DIEHARD_SEED`, which this launcher sets uniquely per
//! replica. (An `LD_PRELOAD` passthrough is provided for C binaries.)
//!
//! The engine is three layers, each unit-testable in isolation:
//!
//! * [`reactor`] — a generic `poll(2)` registration/dispatch loop that
//!   knows nothing about replicas;
//! * [`session`] — the §5.2 voting state machine for **one** client
//!   stream: the bounded ≤ chunk input window, per-chunk vote barriers
//!   with mid-run SIGKILL of outvoted replicas, bounded stderr captures,
//!   and the closing stderr/exit ballots. Peak memory per session is
//!   `(2 × replicas + 1) × chunk` no matter how much the replicas
//!   produce, so long-running/server-style commands work;
//! * transports — [`event`] re-expresses the original pipe path
//!   (stdin → N replicas → stdout) on the two layers below with
//!   byte-identical [`StreamOutcome`]s, and [`proxy`] serves the paper's
//!   squid scenario for real: a TCP front end that fans each accepted
//!   connection to its own N-replica set, votes response chunks at the
//!   same barriers, and returns only quorum bytes — many concurrent voted
//!   sessions multiplexed over one reactor.
//!
//! Orthogonal to the layers, [`pool`] keeps complete replica sets
//! pre-spawned and parked (`--pool <depth>`), so a transport takes a ready
//! [`Session`] in O(1) instead of paying the multi-millisecond fork/exec
//! at accept time; seed discipline makes the pool invisible to vote
//! outcomes, and depth 0 is the byte-identical cold path.
//!
//! The [`Voter`] referees every ballot. [`run_replicated`] is a
//! convenience wrapper over [`run_streamed`] for in-memory input/output;
//! the `diehard` binary streams its real stdin/stdout through the same
//! engine, and the `diehard-proxy` binary serves the TCP front end. The
//! surviving replicas' exit statuses are voted as a final ballot (signal
//! deaths count as crashes, nonzero exits do not), so a command that
//! legitimately fails identically everywhere keeps both its output and
//! its status.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod net;
pub mod pool;
pub mod proxy;
pub mod reactor;
pub mod session;
pub mod voter;

pub use event::{run_pooled, run_streamed, InputSource, StreamOutcome};
pub use pool::{Pool, PoolStats};
pub use session::{Phase, Session, SessionInput, SessionIo};
pub use voter::{ChunkVote, Voter};

/// The default barrier chunk size the voter compares — the pipe-buffer
/// transfer unit the paper votes on (§5.2).
pub const CHUNK: usize = 4096;

/// Smallest configurable barrier chunk ([`LaunchConfig::chunk`]).
pub const CHUNK_MIN: usize = 512;

/// Largest configurable barrier chunk ([`LaunchConfig::chunk`]).
pub const CHUNK_MAX: usize = 65536;

/// Configuration for a replicated launch.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Number of replicas (1, or at least 3 — a 1-1 tie cannot be broken).
    pub replicas: usize,
    /// The command and its arguments.
    pub command: Vec<String>,
    /// Bytes broadcast to every replica's standard input.
    pub input: Vec<u8>,
    /// Explicit per-replica seeds; when empty, true-random seeds are drawn
    /// (the paper seeds each replica from `/dev/urandom`).
    pub seeds: Vec<u64>,
    /// Optional path exported as `LD_PRELOAD` for C binaries using the
    /// original interposition mechanism.
    pub preload: Option<String>,
    /// Barrier chunk size in bytes (default [`CHUNK`]): how much output
    /// each replica buffers before a vote, and the size of the broadcast
    /// input window. Must be a power of two in
    /// `[`[`CHUNK_MIN`]`, `[`CHUNK_MAX`]`]` — validated when the session
    /// launches, so benches can sweep barrier granularity without a
    /// recompile.
    pub chunk: usize,
}

impl LaunchConfig {
    /// A config with `replicas` copies of `command`, reading `input`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is 0 or 2, or `command` is empty.
    #[must_use]
    pub fn new(replicas: usize, command: Vec<String>, input: Vec<u8>) -> Self {
        assert!(replicas != 0, "at least one replica");
        assert!(replicas != 2, "two replicas cannot vote (§6)");
        assert!(!command.is_empty(), "command required");
        Self {
            replicas,
            command,
            input,
            seeds: Vec::new(),
            preload: None,
            chunk: CHUNK,
        }
    }

    /// Builder form of setting [`chunk`](Self::chunk).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Validates and returns [`chunk`](Self::chunk).
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidInput`] unless the chunk is a
    /// power of two in `[`[`CHUNK_MIN`]`, `[`CHUNK_MAX`]`]`.
    pub fn validated_chunk(&self) -> std::io::Result<usize> {
        if !self.chunk.is_power_of_two() || !(CHUNK_MIN..=CHUNK_MAX).contains(&self.chunk) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "chunk {} must be a power of two in [{CHUNK_MIN}, {CHUNK_MAX}]",
                    self.chunk
                ),
            ));
        }
        Ok(self.chunk)
    }
}

/// The result of a replicated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicatedExit {
    /// The voted output committed to the caller.
    pub output: Vec<u8>,
    /// Whether the voter detected an unresolvable divergence (the §6.3
    /// uninitialized-read signal): no strict plurality agreed on some
    /// output chunk or on the final exit-status ballot.
    pub diverged: bool,
    /// Replica indices killed for disagreeing or crashing, in kill order.
    pub killed: Vec<usize>,
    /// The exit status the surviving quorum agreed on; `None` when the run
    /// diverged or no replica survived. Nonzero statuses are *not* crashes:
    /// a command that fails identically in every replica keeps its output
    /// and forwards its status.
    pub exit_code: Option<i32>,
    /// The winning replica's captured standard error: the first ≤ 4 KB it
    /// wrote (bytes beyond the cap are drained and discarded so the replica
    /// never blocks on stderr). Empty on divergence or total crash. Stderr
    /// is captured and forwarded, not voted.
    pub stderr: Vec<u8>,
}

/// Spawns the replicas, broadcasts `config.input`, votes on stdout at 4 KB
/// barriers while the replicas run, and returns the committed output.
///
/// This is a thin in-memory wrapper over [`run_streamed`] — same engine,
/// same incremental voting and mid-stream kills; only the input source
/// (a buffer) and the sink (a `Vec`) differ from the launcher binary.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidInput`] when `config.seeds` is
/// non-empty but does not provide exactly one seed per replica; otherwise
/// propagates process-spawn and pipe I/O failures. Replica *crashes* are
/// not errors — the voter handles them by decrementing the live set.
pub fn run_replicated(config: &LaunchConfig) -> std::io::Result<ReplicatedExit> {
    let mut output = Vec::new();
    let outcome = event::run_streamed(
        config,
        InputSource::Buffer(config.input.clone()),
        &mut output,
    )?;
    Ok(ReplicatedExit {
        output,
        diverged: outcome.diverged,
        killed: outcome.killed,
        exit_code: outcome.exit_code,
        stderr: outcome.stderr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), script.into()]
    }

    #[test]
    fn unanimous_replicas_commit_output() {
        let cfg = LaunchConfig::new(3, sh("cat"), b"hello replicated world\n".to_vec());
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"hello replicated world\n");
        assert!(exit.killed.is_empty());
    }

    #[test]
    fn seed_dependent_output_diverges() {
        // Every replica prints its own seed: no two agree → detected.
        let cfg = LaunchConfig::new(3, sh("echo $DIEHARD_SEED"), Vec::new());
        let exit = run_replicated(&cfg).unwrap();
        assert!(exit.diverged, "distinct outputs must trigger divergence");
    }

    #[test]
    fn majority_outvotes_a_bad_replica() {
        let mut cfg = LaunchConfig::new(
            3,
            sh("if [ \"$DIEHARD_SEED\" = \"7\" ]; then echo bad; else echo good; fi"),
            Vec::new(),
        );
        cfg.seeds = vec![1, 7, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"good\n");
        assert_eq!(exit.killed, vec![1], "replica with seed 7 must be killed");
    }

    #[test]
    fn crashing_replica_is_tolerated() {
        // Seed-7 dies from a genuine signal (SIGSEGV) before producing
        // output; the survivors' quorum carries both output and status.
        let mut cfg = LaunchConfig::new(
            3,
            sh("if [ \"$DIEHARD_SEED\" = \"7\" ]; then kill -s SEGV $$; fi; echo ok"),
            Vec::new(),
        );
        cfg.seeds = vec![7, 1, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"ok\n");
        assert!(exit.killed.contains(&0));
        assert_eq!(exit.exit_code, Some(0));
    }

    #[test]
    fn unanimous_nonzero_exit_is_not_a_crash() {
        // The grep-with-zero-matches shape: output, then exit 1, in every
        // replica. The old voter pre-killed all three and dropped the
        // output; now the output commits and the status is the ballot.
        let cfg = LaunchConfig::new(3, sh("printf '0\\n'; exit 1"), Vec::new());
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"0\n");
        assert!(exit.killed.is_empty(), "identical failures are agreement");
        assert_eq!(exit.exit_code, Some(1));
    }

    #[test]
    fn exit_status_is_voted_like_a_chunk() {
        // Same output everywhere, but seed 7 exits 5: it loses the final
        // ballot 2-1 and the agreed status 0 wins.
        let mut cfg = LaunchConfig::new(
            3,
            sh("echo same; if [ \"$DIEHARD_SEED\" = \"7\" ]; then exit 5; fi"),
            Vec::new(),
        );
        cfg.seeds = vec![1, 7, 2];
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output, b"same\n");
        assert_eq!(exit.killed, vec![1], "status loser is recorded as killed");
        assert_eq!(exit.exit_code, Some(0));
    }

    #[test]
    fn seed_count_mismatch_is_invalid_input() {
        let mut cfg = LaunchConfig::new(3, sh("cat"), Vec::new());
        cfg.seeds = vec![1, 2]; // 2 seeds for 3 replicas: hard error now
        let err = run_replicated(&cfg).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn single_replica_passthrough() {
        let cfg = LaunchConfig::new(1, sh("cat"), b"solo\n".to_vec());
        let exit = run_replicated(&cfg).unwrap();
        assert_eq!(exit.output, b"solo\n");
    }

    #[test]
    fn large_output_voted_in_chunks() {
        // 3 replicas each emit ~34 KB of identical output: nine chunks,
        // all committed.
        let cfg = LaunchConfig::new(
            3,
            sh("i=0; while [ $i -lt 1000 ]; do echo 'line of deterministic output data'; i=$((i+1)); done"),
            Vec::new(),
        );
        let exit = run_replicated(&cfg).unwrap();
        assert!(!exit.diverged);
        assert_eq!(exit.output.len(), 34_000, "1000 x 34-byte lines");
    }

    #[test]
    #[should_panic(expected = "two replicas cannot vote")]
    fn two_replicas_rejected() {
        let _ = LaunchConfig::new(2, sh("cat"), Vec::new());
    }
}
