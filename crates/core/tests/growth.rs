//! Integration suite for elastic region growth: the §9 adaptive-heap idea
//! carried into the concurrent stack. A heap born at a fraction of its
//! maximum capacity must absorb a max-capacity workload by doubling under
//! `1/M`-cap pressure (no OOM), spill — not crash — past the final cap,
//! keep single-threaded histories bit-identical across every layer, and
//! keep its statistics exact while growth races allocations, frees, and
//! magazine refills. Run with `RUST_TEST_THREADS=8` in CI so the race
//! tests overlap with each other as well as within themselves.

use diehard_core::adaptive::{AdaptiveHeap, DEFAULT_INITIAL_FRACTION_LOG2};
use diehard_core::config::HeapConfig;
use diehard_core::engine::AllocOutcome;
use diehard_core::magazine::MagazineHeap;
use diehard_core::rng::Mwc;
use diehard_core::sharded::ShardedHeap;
use diehard_core::size_class::SizeClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// The acceptance scenario: a heap started at 1/64 of its maximum absorbs
/// a max-capacity workload in **every** class with no OOM — each class
/// serves its full-size `1/M` allowance — and the request past the final
/// cap is [`AllocOutcome::Spill`], not a crash. Growth is exact: each
/// class doubles precisely `log2(max / start)` times.
#[test]
fn heap_started_at_one_64th_absorbs_max_capacity_workload() {
    let config = HeapConfig::default();
    let heap = ShardedHeap::new_elastic(config.clone(), 0xACCE57, 6).unwrap();
    let mut expected_doublings = 0u64;
    for class in SizeClass::all() {
        let size = class.object_size();
        let allowance = config.threshold(class);
        for i in 0..allowance {
            assert!(
                heap.try_alloc(size).placed().is_some(),
                "class {} allocation {i} of {allowance} must not OOM",
                class.index()
            );
        }
        assert_eq!(
            heap.try_alloc(size),
            AllocOutcome::Spill,
            "class {} past its final 1/M cap",
            class.index()
        );
        let max = heap.geometry().capacity(class) as u64;
        let start = heap.geometry().initial_capacity(class) as u64;
        expected_doublings += u64::from(max.trailing_zeros() - start.trailing_zeros());
    }
    assert_eq!(heap.growth_events(), expected_doublings);
    for class in SizeClass::all() {
        assert_eq!(
            heap.with_partition(class, |p| p.capacity()),
            heap.geometry().capacity(class),
            "class {} grew to its maximum",
            class.index()
        );
    }
}

/// Single-threaded alloc-only histories are bit-identical across all three
/// layers — locked adaptive, lock-free elastic sharded, and the elastic
/// magazine stack — at the same seed and start fraction: growth triggers
/// at the same pressure points in each and consumes no RNG draws.
#[test]
fn single_threaded_histories_identical_across_layers() {
    let seed = 0xD17EC7;
    let sharded =
        ShardedHeap::new_elastic(HeapConfig::default(), seed, DEFAULT_INITIAL_FRACTION_LOG2)
            .unwrap();
    let mut adaptive = AdaptiveHeap::new(HeapConfig::default(), seed).unwrap();
    let mag = MagazineHeap::new_elastic(HeapConfig::default(), seed, DEFAULT_INITIAL_FRACTION_LOG2)
        .unwrap();
    let mut cache = mag.thread_cache();
    let mut rng = Mwc::seeded(seed ^ 0x5EED);
    for i in 0..4000usize {
        let size = 1 + rng.below(16 * 1024);
        let s = sharded.alloc(size);
        assert_eq!(s, adaptive.alloc(size), "op {i} (size {size}): adaptive");
        assert_eq!(s, cache.alloc(size), "op {i} (size {size}): magazine");
        if let Some(slot) = s {
            assert_eq!(sharded.offset_of(slot), adaptive.offset_of(slot));
        }
    }
    assert_eq!(sharded.growth_events(), adaptive.growth_events());
    assert_eq!(sharded.growth_events(), mag.growth_events());
    assert!(
        sharded.growth_events() > 0,
        "the workload must cross growth"
    );
}

/// Mixed alloc/free histories stay bit-identical between the adaptive and
/// elastic sharded layers (both free immediately): every placement, every
/// free outcome, and the growth count agree across 20k interleaved ops.
#[test]
fn mixed_history_identical_before_and_after_growth() {
    let seed = 0x6F0ED1;
    let sharded =
        ShardedHeap::new_elastic(HeapConfig::default(), seed, DEFAULT_INITIAL_FRACTION_LOG2)
            .unwrap();
    let mut adaptive = AdaptiveHeap::new(HeapConfig::default(), seed).unwrap();
    let mut rng = Mwc::seeded(seed);
    let mut live: Vec<usize> = Vec::new();
    for i in 0..20_000usize {
        if rng.below(3) < 2 || live.is_empty() {
            let size = 1 + rng.below(1024);
            let s = sharded.alloc(size);
            assert_eq!(s, adaptive.alloc(size), "op {i}: placement diverged");
            if let Some(slot) = s {
                live.push(sharded.offset_of(slot));
            }
        } else {
            let off = live.swap_remove(rng.below(live.len()));
            assert_eq!(
                sharded.free_at(off),
                adaptive.free_at(off),
                "op {i}: free outcome diverged"
            );
        }
    }
    assert_eq!(sharded.growth_events(), adaptive.growth_events());
}

/// Elastic with fraction 0 *is* the fixed heap: initial == maximum, zero
/// growth events, and a bit-identical mixed history against `new`.
#[test]
fn elastic_fraction_zero_is_bit_identical_to_fixed() {
    let seed = 0xF1DE77;
    let fixed = ShardedHeap::new(HeapConfig::default(), seed).unwrap();
    let elastic = ShardedHeap::new_elastic(HeapConfig::default(), seed, 0).unwrap();
    let mut rng = Mwc::seeded(seed ^ 1);
    let mut live: Vec<usize> = Vec::new();
    for _ in 0..5000usize {
        if rng.below(2) == 0 || live.is_empty() {
            let size = 1 + rng.below(16 * 1024);
            let f = fixed.alloc(size);
            assert_eq!(f, elastic.alloc(size));
            if let Some(slot) = f {
                live.push(fixed.offset_of(slot));
            }
        } else {
            let off = live.swap_remove(rng.below(live.len()));
            assert_eq!(fixed.free_at(off), elastic.free_at(off));
        }
    }
    assert_eq!(elastic.growth_events(), 0);
}

/// Growth racing lock-free allocations and frees: 8 threads push one class
/// from its 1/64 start to its maximum with no frees in flight, so the
/// ticket cap makes the outcome exact — the served total is the full-size
/// threshold, the doubling count is exactly `log2(max / start)`, and the
/// post-drain accounting reconciles to zero.
#[test]
fn concurrent_alloc_pressure_grows_exactly_once_per_threshold() {
    const THREADS: u64 = 8;
    let config = HeapConfig::default().with_region_bytes(256 * 1024);
    let class0 = SizeClass::from_index(0);
    let h = Arc::new(ShardedHeap::new_elastic(config.clone(), 0x6A0E, 6).unwrap());
    let attempted = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    // No thread frees until every thread has spilled: with zero frees in
    // flight during the pressure phase, occupancy is monotone and the
    // served total is exactly the full-size threshold.
    let drained = Arc::new(Barrier::new(THREADS as usize));

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let h = Arc::clone(&h);
        let attempted = Arc::clone(&attempted);
        let served = Arc::clone(&served);
        let drained = Arc::clone(&drained);
        handles.push(std::thread::spawn(move || {
            let mut live: Vec<usize> = Vec::new();
            loop {
                attempted.fetch_add(1, Ordering::Relaxed);
                match h.try_alloc(8) {
                    AllocOutcome::Placed(slot) => {
                        served.fetch_add(1, Ordering::Relaxed);
                        live.push(h.offset_of(slot));
                    }
                    AllocOutcome::Spill => break,
                    AllocOutcome::Unsupported => panic!("8 bytes is a supported class"),
                }
            }
            drained.wait();
            for off in live {
                assert!(h.free_at(off).freed(), "own offset {off} must free");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let max = h.geometry().capacity(class0);
    let start = h.geometry().initial_capacity(class0);
    assert_eq!(
        served.load(Ordering::Relaxed),
        config.threshold(class0) as u64,
        "the ticket cap admits exactly the full-size allowance"
    );
    assert_eq!(
        h.growth_events(),
        u64::from(max.trailing_zeros() - start.trailing_zeros()),
        "one doubling per threshold crossing, never more"
    );
    assert_eq!(h.with_partition(class0, |p| p.capacity()), max);
    assert_eq!(h.live_objects(), 0);
    let stats = h.stats();
    assert_eq!(stats.allocs, served.load(Ordering::Relaxed));
    assert_eq!(stats.frees, stats.allocs);
    assert_eq!(
        stats.exhausted,
        attempted.load(Ordering::Relaxed) - served.load(Ordering::Relaxed),
        "every failed attempt was a spill at the final cap"
    );
}

/// Growth racing magazine refills and free-buffer flushes: the refill path
/// grows the class under the maintenance lock it already holds (the
/// deadlock-prone re-entry path), spills are counted per denied request,
/// and after every cache flushes the accounting reconciles exactly —
/// `exhausted == attempted − served`, zero leaked reservations.
#[test]
fn magazine_refills_race_growth_and_reconcile() {
    const THREADS: u64 = 8;
    const OPS: usize = 4000;
    const WINDOW: usize = 1500;
    let config = HeapConfig::default().with_region_bytes(128 * 1024);
    let h = Arc::new(MagazineHeap::new_elastic(config, 0xBEEF6, 6).unwrap());
    let attempted = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = Arc::clone(&h);
        let attempted = Arc::clone(&attempted);
        let served = Arc::clone(&served);
        handles.push(std::thread::spawn(move || {
            let mut cache = h.thread_cache();
            let mut rng = Mwc::seeded(0xF00D ^ t);
            let mut live: Vec<usize> = Vec::new();
            for _ in 0..OPS {
                attempted.fetch_add(1, Ordering::Relaxed);
                if let Some(slot) = cache.alloc(8) {
                    served.fetch_add(1, Ordering::Relaxed);
                    live.push(h.offset_of(slot));
                }
                if live.len() > WINDOW {
                    let victim = live.swap_remove(rng.below(live.len()));
                    cache.free_at(victim);
                }
            }
            for off in live {
                cache.free_at(off);
            }
            // cache drops here: flush frees, return reservations
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    assert!(h.growth_events() > 0, "refill pressure must grow the class");
    assert_eq!(h.reserved_slots(), 0, "zero leaked reservations");
    assert_eq!(h.live_objects(), 0);
    let stats = h.stats();
    assert_eq!(stats.allocs, served.load(Ordering::Relaxed));
    assert_eq!(stats.frees, stats.allocs);
    assert_eq!(
        stats.exhausted,
        attempted.load(Ordering::Relaxed) - served.load(Ordering::Relaxed),
        "spill accounting is exact through the cached stack"
    );
}
