//! # diehard-runtime
//!
//! The evaluation harness for the DieHard (PLDI 2006) reproduction:
//!
//! * [`ops`] — simulated C programs as deterministic op streams;
//! * [`exec`] — the executor, the infinite-heap oracle, and the
//!   correct/corrupt/crash/hang/abort verdict model;
//! * [`systems`] — each runtime system of Table 1 (libc, BDW GC, CCured,
//!   Rx, failure-oblivious, DieHard) as a runnable configuration;
//! * [`replicas`] — replicated DieHard with 4 KB output voting (§5);
//! * [`output`] — program output streams and chunking;
//! * [`heap_diff`] — the §9 heap-differencing debugging aid.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod heap_diff;
pub mod ops;
pub mod output;
pub mod replicas;
pub mod systems;

pub use exec::{
    oracle_output, run_program, verdict, CheckPolicy, ExecOptions, RunOutcome, Verdict,
};
pub use ops::{Op, Program};
pub use output::Output;
pub use replicas::{ReplicaSet, ReplicatedOutcome, ReplicatedRun};
pub use systems::System;
