//! The operation model: simulated C programs as deterministic op streams.
//!
//! A [`Program`] is the unit the whole evaluation runs on: the workload
//! generators in `diehard-workloads` emit programs mimicking the paper's
//! benchmarks, the fault injector in `diehard-inject` rewrites them to
//! contain memory errors, and the executor replays them against any
//! [`diehard_sim::SimAllocator`].

/// One step of a simulated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `p = malloc(size)`, binding the pointer to logical handle `id`.
    Alloc {
        /// Handle the program uses for this object from now on.
        id: u32,
        /// Requested size in bytes. (The fault injector shrinks this to
        /// model under-allocation while later accesses keep the original
        /// length — a buffer overflow.)
        size: usize,
    },
    /// `free(p)` — the handle's pointer *value* survives until [`Op::Forget`],
    /// so use-after-free and double-free remain expressible, and conservative
    /// collectors still see the pointer as a root.
    Free {
        /// Handle to free.
        id: u32,
    },
    /// `free(p + delta)` — an invalid free of a non-pointer address.
    FreeRaw {
        /// Handle whose pointer is misused.
        id: u32,
        /// Byte offset added to the pointer before freeing.
        delta: isize,
    },
    /// The program drops its last reference: the handle disappears from the
    /// root set. Generators emit `Free` immediately followed by `Forget`;
    /// the injector separates them to create dangling windows.
    Forget {
        /// Handle to drop.
        id: u32,
    },
    /// `memset(p + offset, f(id, seed), len)` — writes a deterministic
    /// pattern the matching [`Op::Read`] can verify end to end.
    Write {
        /// Target handle.
        id: u32,
        /// Byte offset within the object.
        offset: usize,
        /// Bytes written. May exceed the *allocated* size after injection —
        /// that is precisely a heap buffer overflow.
        len: usize,
        /// Pattern discriminator.
        seed: u8,
    },
    /// Store the address of `src` into `dst` at `offset` — a heap pointer,
    /// visible to conservative collectors and corruptible by overflows.
    WritePtr {
        /// Object written into.
        dst: u32,
        /// Byte offset of the pointer slot.
        offset: usize,
        /// Handle whose address is stored.
        src: u32,
    },
    /// Read `len` bytes at `offset` and append them to program output
    /// (prefix + hash). This is where corruption becomes *observable*.
    Read {
        /// Source handle.
        id: u32,
        /// Byte offset within the object.
        offset: usize,
        /// Bytes read.
        len: usize,
    },
    /// Load a pointer previously stored with [`Op::WritePtr`] and read
    /// `len` bytes through it — crashes if the pointer was corrupted.
    ReadThroughPtr {
        /// Object holding the pointer.
        dst: u32,
        /// Byte offset of the pointer slot.
        offset: usize,
        /// Bytes to read through the loaded pointer.
        len: usize,
    },
    /// `strcpy(p, payload)` — copied through the allocator's (or DieHard's
    /// bounded) string routine in systems that replace libc (§4.4); an
    /// ordinary unbounded copy elsewhere.
    Strcpy {
        /// Destination handle.
        id: u32,
        /// NUL-free payload; a terminator is appended on copy.
        payload: Vec<u8>,
    },
    /// Pure computation: `units` rounds of arithmetic between memory
    /// operations. Dilutes allocator overhead exactly as real application
    /// work does (alloc-intensive benchmarks have little of it, SPEC-style
    /// ones a lot).
    Compute {
        /// Work units to burn.
        units: u32,
    },
    /// Append literal bytes to the program output (e.g. a banner — output
    /// that does not depend on heap contents).
    Print {
        /// Bytes to emit.
        bytes: Vec<u8>,
    },
}

/// A deterministic simulated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable benchmark name (e.g. `"espresso"`).
    pub name: String,
    /// The op stream, executed front to back.
    pub ops: Vec<Op>,
}

impl Program {
    /// Creates a program from parts.
    #[must_use]
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        Self {
            name: name.into(),
            ops,
        }
    }

    /// Number of allocation ops (the paper reports memory ops/sec).
    #[must_use]
    pub fn alloc_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Alloc { .. }))
            .count()
    }

    /// Number of memory-management ops (allocs + frees).
    #[must_use]
    pub fn mem_op_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Alloc { .. } | Op::Free { .. } | Op::FreeRaw { .. }))
            .count()
    }

    /// The deterministic byte pattern `Write`/`Read` pairs verify.
    #[must_use]
    #[inline]
    pub fn pattern_byte(id: u32, seed: u8, position: usize) -> u8 {
        // Cheap position-dependent mix; any bijection-ish function works —
        // what matters is that corrupted bytes almost never match it.
        let x = (id as usize)
            .wrapping_mul(0x9E37)
            .wrapping_add(position)
            .wrapping_mul(usize::from(seed) | 1);
        (x ^ (x >> 8)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let p = Program::new(
            "t",
            vec![
                Op::Alloc { id: 0, size: 8 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 8,
                    seed: 1,
                },
                Op::Free { id: 0 },
                Op::Forget { id: 0 },
                Op::Alloc { id: 1, size: 16 },
                Op::FreeRaw { id: 1, delta: 4 },
            ],
        );
        assert_eq!(p.alloc_count(), 2);
        assert_eq!(p.mem_op_count(), 4);
    }

    #[test]
    fn pattern_is_deterministic_and_varied() {
        let a = Program::pattern_byte(1, 7, 0);
        assert_eq!(a, Program::pattern_byte(1, 7, 0));
        let distinct: std::collections::HashSet<u8> =
            (0..256).map(|i| Program::pattern_byte(1, 7, i)).collect();
        assert!(
            distinct.len() > 64,
            "pattern too repetitive: {}",
            distinct.len()
        );
        assert_ne!(
            (0..32)
                .map(|i| Program::pattern_byte(1, 7, i))
                .collect::<Vec<_>>(),
            (0..32)
                .map(|i| Program::pattern_byte(2, 7, i))
                .collect::<Vec<_>>(),
        );
    }
}
