//! The Rx emulation: checkpoint/rollback with an allergen-avoiding allocator.
//!
//! Rx (Qin et al., SOSP 2005; §8 of the DieHard paper) "rolls back the
//! application and restarts with an allocator that selectively ignores
//! double frees, zero-fills buffers, pads object requests, and defers
//! frees". Our executor's programs are replayable from the start, so the
//! checkpoint is the program entry: on a crash or hang, the run is retried
//! once under [`RxPaddedHeap`].

use diehard_baselines::LeaSimAllocator;
use diehard_sim::arena::PagedArena;
use diehard_sim::fault::Fault;
use diehard_sim::traits::{Addr, SimAllocator};

/// Padding added to every request on the retry path ("pads object
/// requests"); 64 bytes soaks up the small overflows Rx targets.
pub const RX_PAD: usize = 64;

/// The recovery-mode allocator: a Lea heap behind request padding, deferred
/// frees, zero-filling, and double-free absorption.
#[derive(Debug)]
pub struct RxPaddedHeap {
    inner: LeaSimAllocator,
    /// Frees are deferred indefinitely during recovery: the dangling window
    /// can never close on a reused chunk.
    deferred: Vec<Addr>,
}

impl RxPaddedHeap {
    /// Creates a recovery heap with `max_span` bytes.
    #[must_use]
    pub fn new(max_span: usize) -> Self {
        Self {
            inner: LeaSimAllocator::new(max_span),
            deferred: Vec::new(),
        }
    }

    /// Number of frees deferred so far.
    #[must_use]
    pub fn deferred_frees(&self) -> usize {
        self.deferred.len()
    }
}

impl SimAllocator for RxPaddedHeap {
    fn name(&self) -> &'static str {
        "rx-recovery"
    }

    fn malloc(&mut self, size: usize, roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        let padded = size.saturating_add(RX_PAD);
        match self.inner.malloc(padded, roots)? {
            Some(addr) => {
                // "zero-fills buffers": scrubs stale data so dangling reads
                // and uninit reads see deterministic zeros.
                self.inner.memory_mut().fill_bytes(addr, 0, padded)?;
                Ok(Some(addr))
            }
            None => Ok(None),
        }
    }

    fn free(&mut self, addr: Addr) -> Result<(), Fault> {
        // "defers frees" (and thereby ignores double and invalid frees).
        self.deferred.push(addr);
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        self.inner.memory()
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        self.inner.memory_mut()
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        self.inner.usable_size(addr)
    }

    fn live_bytes(&self) -> usize {
        self.inner.live_bytes()
    }

    fn work(&self) -> u64 {
        self.inner.work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_absorbs_small_overflow() {
        let mut rx = RxPaddedHeap::new(1 << 20);
        let a = rx.malloc(24, &[]).unwrap().unwrap();
        let b = rx.malloc(24, &[]).unwrap().unwrap();
        rx.memory_mut().write(b, &[0x11; 24]).unwrap();
        // Overflow `a` by 4 bytes (the §7.3.1 injection): lands in padding.
        rx.memory_mut().write(a, &[0xFF; 28]).unwrap();
        let mut buf = [0u8; 24];
        rx.memory().read(b, &mut buf).unwrap();
        assert_eq!(buf, [0x11; 24], "padding must protect the neighbour");
    }

    #[test]
    fn frees_deferred_so_dangling_is_safe() {
        let mut rx = RxPaddedHeap::new(1 << 20);
        let a = rx.malloc(64, &[]).unwrap().unwrap();
        rx.memory_mut().write(a, &[0x22; 64]).unwrap();
        rx.free(a).unwrap();
        rx.free(a).unwrap(); // double free: absorbed
        assert_eq!(rx.deferred_frees(), 2);
        // New allocations cannot reuse the chunk.
        for _ in 0..50 {
            let p = rx.malloc(64, &[]).unwrap().unwrap();
            assert_ne!(p, a);
        }
        let mut buf = [0u8; 64];
        rx.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x22; 64]);
    }

    #[test]
    fn zero_fill_scrubs_recycled_memory() {
        // Even without reuse (frees deferred), fresh chunks are zeroed, so
        // uninitialized reads return deterministic zeros.
        let mut rx = RxPaddedHeap::new(1 << 20);
        let a = rx.malloc(64, &[]).unwrap().unwrap();
        let mut buf = [1u8; 64];
        rx.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }
}
