//! Figure 4(a): probability of masking single-object buffer overflows, for
//! varying replicas (1, 3, 4, 5, 6) and degrees of heap fullness (1/8,
//! 1/4, 1/2) — Theorem 1's closed form validated by Monte Carlo against
//! the actual randomized allocator.
//!
//! Run: `cargo run --release -p diehard-bench --bin fig4a`

use diehard_bench::{pct, smoke_scaled, TextTable};
use diehard_core::analysis::p_overflow_mask;
use diehard_core::partition::Partition;
use diehard_core::rng::{splitmix, Mwc};
use diehard_core::size_class::SizeClass;

/// Slots per simulated region (the probability depends only on fullness,
/// not capacity, for single-slot draws; 4096 keeps trials fast).
const CAPACITY: usize = 4096;
/// Objects' worth of bytes overflowed (Figure 4a plots O = 1).
const OVERFLOW_OBJECTS: usize = 1;
const TRIALS: usize = 20_000;

/// One Monte Carlo trial: fill `k` independent randomized regions to
/// `fullness`, then land an overflow of `OVERFLOW_OBJECTS` slots at a
/// uniformly random position in each; the overflow is masked if in at
/// least one replica it touched no live slot.
fn trial(fullness: f64, replicas: usize, rng: &mut Mwc) -> bool {
    (0..replicas).any(|_| {
        let mut part = Partition::new(
            SizeClass::from_index(0),
            CAPACITY,
            CAPACITY,
            splitmix(rng.next_u64()),
        );
        let live_target = (CAPACITY as f64 * fullness) as usize;
        for _ in 0..live_target {
            part.alloc().expect("below capacity");
        }
        let start = rng.below(CAPACITY - OVERFLOW_OBJECTS);
        (start..start + OVERFLOW_OBJECTS).all(|slot| !part.is_live(slot))
    })
}

fn main() {
    let trials = smoke_scaled(TRIALS, 300);
    println!("Figure 4(a) — Probability of Avoiding Buffer Overflow");
    println!("(single-object overflow; analytic = Theorem 1; {trials} Monte Carlo trials/cell)\n");

    let mut table = TextTable::new(vec![
        "replicas",
        "heap fullness",
        "analytic",
        "monte carlo",
        "abs err",
    ]);
    let mut rng = Mwc::seeded(0xF164A);
    for &fullness in &[1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0] {
        for &k in &[1usize, 3, 4, 5, 6] {
            let analytic = p_overflow_mask(1.0 - fullness, OVERFLOW_OBJECTS as u32, k as u32);
            let masked = (0..trials).filter(|_| trial(fullness, k, &mut rng)).count();
            let empirical = masked as f64 / trials as f64;
            table.row(vec![
                k.to_string(),
                format!("1/{}", (1.0 / fullness).round() as u32),
                pct(analytic),
                pct(empirical),
                format!("{:.4}", (analytic - empirical).abs()),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper anchors: 1 replica @ 1/8 full = 87.5%; 3 replicas @ 1/8 full > 99%.");
}
