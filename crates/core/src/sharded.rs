//! The sharded DieHard heap: per-size-class locking over shared-nothing
//! partition shards.
//!
//! The paper's allocator (§4.2) is embarrassingly partitionable: each of the
//! twelve size-class regions owns its bitmap, its `1/M` threshold, and its
//! probe loop, and `DieHardFree`'s validation resolves any offset to exactly
//! one region with pure arithmetic. [`ShardedHeap`] exploits that structure:
//! every partition (with its private RNG stream, seeded by splitting the
//! master seed) sits behind its own [`SpinLock`], so concurrent allocations
//! in *different* classes never contend, and a free locks only the shard
//! that [`locate_free`] resolves to. Heap-wide counters are lock-free
//! atomics ([`AtomicHeapStats`]).
//!
//! The isolation property that makes this decomposition sound is DieHard's
//! own: a (validated) free in one region can never mutate another region's
//! metadata, so shard locks compose without any ordering discipline — no
//! operation ever holds two shard locks at once.
//!
//! [`HeapCore`](crate::engine::HeapCore) remains the single-threaded,
//! lock-free-by-`&mut` facade used by the Monte Carlo harnesses; both run
//! the same [`Partition`] placement logic and the same offset arithmetic
//! from [`engine`](crate::engine).

use crate::config::{ConfigError, HeapConfig, HeapGeometry};
use crate::engine::{
    build_partitions, build_partitions_from_storage, locate_free, slot_at, slot_offset,
    AtomicHeapStats, FreeOutcome, HeapCore, HeapStats, Slot,
};
use crate::partition::Partition;
use crate::size_class::{SizeClass, NUM_CLASSES};
use crate::sync::SpinLock;

/// A thread-safe DieHard heap with one lock per size class.
///
/// All operations take `&self`; the heap is `Sync` and designed to be
/// shared across threads (the real global allocator embeds one behind its
/// once-initialized header).
///
/// # Examples
///
/// ```
/// use diehard_core::{config::HeapConfig, sharded::ShardedHeap};
///
/// let heap = ShardedHeap::new(HeapConfig::default(), 42)?;
/// let slot = heap.alloc(100).expect("space available");
/// assert_eq!(slot.size(), 128);
/// let off = heap.offset_of(slot);
/// assert!(heap.is_live_at(off));
/// assert!(heap.free_at(off).freed());
/// assert!(!heap.free_at(off).freed()); // double free: ignored
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct ShardedHeap {
    geometry: HeapGeometry,
    shards: [SpinLock<Partition>; NUM_CLASSES],
    stats: AtomicHeapStats,
}

impl ShardedHeap {
    /// Creates an empty sharded heap; shard `i` probes with the RNG stream
    /// `stream_seed(seed, i)`, so one master seed reproduces the layout.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new(config)?;
        let shards = build_partitions(&geometry, seed).map(SpinLock::new);
        Ok(Self {
            geometry,
            shards,
            stats: AtomicHeapStats::new(),
        })
    }

    /// As [`new`](Self::new), but hosting all twelve allocation bitmaps in
    /// caller-provided storage so that construction performs **no heap
    /// allocation** — required when DieHard itself is the process's global
    /// allocator (metadata lives in a segregated mmap arena, §4.1).
    ///
    /// # Safety
    ///
    /// `bitmap_words` must point to at least
    /// [`bitmap_words_needed`](Self::bitmap_words_needed)`(&config)` zeroed
    /// `u64`s, valid and exclusively owned for the heap's lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub unsafe fn from_raw_parts(
        config: HeapConfig,
        seed: u64,
        bitmap_words: *mut u64,
    ) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new(config)?;
        // SAFETY: forwarded caller contract.
        let shards = unsafe { build_partitions_from_storage(&geometry, seed, bitmap_words) }
            .map(SpinLock::new);
        Ok(Self {
            geometry,
            shards,
            stats: AtomicHeapStats::new(),
        })
    }

    /// Number of `u64` words of bitmap storage
    /// [`from_raw_parts`](Self::from_raw_parts) requires for `config`
    /// (identical to the facade's layout).
    #[must_use]
    pub fn bitmap_words_needed(config: &HeapConfig) -> usize {
        HeapCore::bitmap_words_needed(config)
    }

    /// The heap's configuration (lock-free; the config is immutable).
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        self.geometry.config()
    }

    /// The heap's precomputed shift/mask geometry (lock-free; immutable).
    #[must_use]
    #[inline]
    pub fn geometry(&self) -> &HeapGeometry {
        &self.geometry
    }

    /// Counters since construction (lock-free snapshot).
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.stats.snapshot()
    }

    /// Bytes spanned by the small-object heap (12 × region size).
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.geometry.heap_span()
    }

    /// Allocates `size` bytes, locking only the size class that serves the
    /// request. Returns `None` when the request is zero, larger than 16 KB
    /// (large-object path), or the class region is at its `1/M` cap.
    pub fn alloc(&self, size: usize) -> Option<Slot> {
        let class = SizeClass::for_size(size)?;
        let index = self.shards[class.index()].lock().alloc();
        match index {
            Some(index) => {
                self.stats.record_alloc();
                Some(Slot { class, index })
            }
            None => {
                self.stats.record_exhausted();
                None
            }
        }
    }

    /// Byte offset of `slot` within the heap span (pure arithmetic, no
    /// lock).
    #[must_use]
    #[inline]
    pub fn offset_of(&self, slot: Slot) -> usize {
        slot_offset(&self.geometry, slot)
    }

    /// Resolves a byte offset (any interior pointer) to the slot containing
    /// it (pure arithmetic, no lock).
    #[must_use]
    pub fn slot_containing(&self, offset: usize) -> Option<Slot> {
        slot_at(&self.geometry, offset)
    }

    /// `DieHardFree` (§4.3): validates and frees the object at `offset`,
    /// locking only the shard the offset resolves to — the span and
    /// alignment checks are lock-free arithmetic.
    pub fn free_at(&self, offset: usize) -> FreeOutcome {
        let slot = match locate_free(&self.geometry, offset) {
            Ok(slot) => slot,
            Err(outcome) => {
                if outcome == FreeOutcome::MisalignedOffset {
                    self.stats.record_ignored_free();
                }
                return outcome;
            }
        };
        let freed = self.shards[slot.class.index()].lock().free(slot.index);
        if freed {
            self.stats.record_free();
            FreeOutcome::Freed(slot)
        } else {
            self.stats.record_ignored_free();
            FreeOutcome::NotAllocated
        }
    }

    /// Whether the object at `offset` (any interior pointer) is live; locks
    /// only that offset's shard.
    #[must_use]
    pub fn is_live_at(&self, offset: usize) -> bool {
        match slot_at(&self.geometry, offset) {
            Some(slot) => self.shards[slot.class.index()].lock().is_live(slot.index),
            None => false,
        }
    }

    /// The lock guarding the partition that serves `class` — the magazine
    /// layer refills and flushes against a shard directly so that one lock
    /// acquisition covers a whole batch.
    #[inline]
    pub(crate) fn shard(&self, class: SizeClass) -> &SpinLock<Partition> {
        &self.shards[class.index()]
    }

    /// The heap-wide atomic counters, shared with wrappers (the magazine
    /// layer records handouts and batched frees into the same stats so the
    /// aggregate numbers stay exact whichever path served an operation).
    #[inline]
    pub(crate) fn stats_ref(&self) -> &AtomicHeapStats {
        &self.stats
    }

    /// Runs `f` against the (locked) partition serving `class` — shard-local
    /// diagnostics without exposing the guard type.
    pub fn with_partition<R>(&self, class: SizeClass, f: impl FnOnce(&Partition) -> R) -> R {
        f(&self.shards[class.index()].lock())
    }

    /// Total live objects across all regions. Locks each shard in turn, so
    /// the result is a consistent per-shard sum but only an instantaneous
    /// total when the heap is quiescent.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.shards.iter().map(|s| s.lock().in_use()).sum()
    }

    /// Cumulative probe statistics summed across every shard:
    /// `(allocations, total probes)` — the concurrent-stack counterpart of
    /// [`Partition::probe_stats`], so §4.2's E[probes] = 1/(1 − 1/M) claim
    /// is checkable on the sharded heap too. Locks each shard briefly in
    /// turn; exact totals once the threads touching the heap are joined.
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(allocs, probes), shard| {
            let (a, p) = shard.lock().probe_stats();
            (allocs + a, probes + p)
        })
    }

    /// Total live bytes across all regions (rounded object sizes); same
    /// quiescence caveat as [`live_objects`](Self::live_objects).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let p = s.lock();
                p.in_use() * p.class().object_size()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HeapCore;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn heap(seed: u64) -> ShardedHeap {
        ShardedHeap::new(HeapConfig::default(), seed).unwrap()
    }

    #[test]
    fn matches_facade_layout_for_same_seed() {
        // The facade and the sharded heap split the master seed the same
        // way, so single-threaded histories coincide exactly.
        let sharded = heap(0xABCD);
        let mut facade = HeapCore::new(HeapConfig::default(), 0xABCD).unwrap();
        for req in [8usize, 8, 24, 100, 1000, 4000, 16_000, 8, 64] {
            assert_eq!(sharded.alloc(req), facade.alloc(req), "request {req}");
        }
        assert_eq!(sharded.stats(), facade.stats());
    }

    #[test]
    fn free_validation_pipeline() {
        let h = heap(4);
        let slot = h.alloc(64).unwrap();
        let off = h.offset_of(slot);

        assert_eq!(h.free_at(off + 1), FreeOutcome::MisalignedOffset);
        assert!(h.is_live_at(off));
        assert_eq!(h.free_at(off), FreeOutcome::Freed(slot));
        assert!(!h.is_live_at(off));
        assert_eq!(h.free_at(off), FreeOutcome::NotAllocated);
        assert_eq!(h.free_at(usize::MAX / 2), FreeOutcome::NotInHeap);

        let stats = h.stats();
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.ignored_frees, 2);
    }

    #[test]
    fn concurrent_mixed_class_churn_keeps_accounting_exact() {
        const THREADS: usize = 8;
        const OPS: usize = 3000;
        let h = Arc::new(heap(7));
        let allocated = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            let allocated = Arc::clone(&allocated);
            handles.push(std::thread::spawn(move || {
                let mut live: Vec<usize> = Vec::new();
                let mut rng = crate::rng::Mwc::seeded(0x1000 + t as u64);
                for _ in 0..OPS {
                    let size = 1 + rng.below(16 * 1024);
                    if let Some(slot) = h.alloc(size) {
                        allocated.fetch_add(1, Ordering::Relaxed);
                        live.push(h.offset_of(slot));
                    }
                    if live.len() > 32 {
                        let victim = live.swap_remove(rng.below(live.len()));
                        assert!(h.free_at(victim).freed(), "own offset must free");
                    }
                }
                for off in live {
                    assert!(h.free_at(off).freed());
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = h.stats();
        assert_eq!(h.live_objects(), 0);
        assert_eq!(stats.allocs, allocated.load(Ordering::Relaxed) as u64);
        assert_eq!(
            stats.frees, stats.allocs,
            "every alloc was freed exactly once"
        );
        assert_eq!(stats.ignored_frees, 0);
    }

    /// §4.2 on the concurrent stack: with the 8-byte class held essentially
    /// at its `1/M` cap and four threads churning alloc/free pairs, the
    /// measured mean probes per allocation approaches 1/(1 − 1/M) = 2 for
    /// M = 2 — the claim was previously only checkable on a single-threaded
    /// [`Partition`].
    #[test]
    fn concurrent_probe_expectation_matches_paper() {
        const THREADS: usize = 4;
        const OPS: usize = 20_000;
        let h = Arc::new(heap(0xE1E1));
        // Fill class 0 to its threshold, then free a sliver of headroom so
        // the churn below oscillates just under the cap.
        let mut offs = Vec::new();
        while let Some(slot) = h.alloc(8) {
            offs.push(h.offset_of(slot));
        }
        for off in offs.drain(..THREADS * 4) {
            assert!(h.free_at(off).freed());
        }
        let (a0, p0) = h.probe_stats();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    // A momentary at-threshold denial (another thread's
                    // alloc in flight) just skips the pair.
                    if let Some(slot) = h.alloc(8) {
                        assert!(h.free_at(h.offset_of(slot)).freed());
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let (a1, p1) = h.probe_stats();
        assert!(a1 - a0 > (THREADS * OPS) as u64 / 2, "churn mostly served");
        let mean = (p1 - p0) as f64 / (a1 - a0) as f64;
        assert!(
            (mean - 2.0).abs() < 0.2,
            "concurrent steady-state probes {mean}, expected ≈ 2"
        );
    }

    proptest! {
        /// The sharded heap matches the same shadow model as the facade
        /// (mirrors `engine_matches_shadow_model`).
        #[test]
        fn sharded_matches_shadow_model(
            seed in any::<u64>(),
            ops in proptest::collection::vec((0usize..3, 1usize..20_000), 1..300),
        ) {
            let h = heap(seed);
            let mut model: HashMap<usize, Slot> = HashMap::new();
            let mut rng = crate::rng::Mwc::seeded(seed ^ 0xABCD);
            for (op, arg) in ops {
                match op {
                    0 => {
                        if let Some(slot) = h.alloc(arg.min(16 * 1024)) {
                            let off = h.offset_of(slot);
                            prop_assert!(!model.contains_key(&off), "offset reuse while live");
                            model.insert(off, slot);
                        }
                    }
                    1 => {
                        if !model.is_empty() {
                            let keys: Vec<usize> = model.keys().copied().collect();
                            let off = keys[rng.below(keys.len())];
                            prop_assert!(h.free_at(off).freed());
                            model.remove(&off);
                        }
                    }
                    _ => {
                        let off = rng.below(h.heap_span() + 1000);
                        let before = h.live_objects();
                        match h.free_at(off) {
                            FreeOutcome::Freed(_) => {
                                prop_assert!(model.remove(&off).is_some(),
                                    "freed an object the model did not know");
                            }
                            _ => prop_assert_eq!(h.live_objects(), before),
                        }
                    }
                }
                prop_assert_eq!(h.live_objects(), model.len());
            }
        }
    }
}
