//! §7.2.3: replicated-execution scaling — "Running 16 replicas
//! simultaneously increases runtime by approximately 50% versus running a
//! single replica with the replicated version of the runtime."
//!
//! Replicas run on OS threads (the paper's 16-way Sun server analogue).
//! lindsay is excluded, exactly as in the paper ("which has an
//! uninitialized read error that DieHard detects and terminates") — and we
//! additionally *demonstrate* that exclusion reason by running it last.
//!
//! Run: `cargo run --release -p diehard-bench --bin replicated_scaling [scale]`

use diehard_bench::{geomean, measured_seconds, norm, TextTable};
use diehard_core::config::HeapConfig;
use diehard_runtime::{ReplicaSet, ReplicatedOutcome};
use diehard_workloads::alloc_intensive_suite;

fn main() {
    let scale: f64 = diehard_bench::positional_args()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| diehard_bench::smoke_scaled(0.1, 0.02));
    let replicas = 16usize;
    println!("§7.2.3 — Replicated DieHard scaling ({replicas} replicas on OS threads)");
    println!("(workload scale {scale}; mean of 3 runs after 1 warm-up)\n");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On fewer than 16 cores the replicas serialize: the best possible
    // 16-replica time is ceil(16/cores)x. The paper's +50% claim concerns
    // the overhead *beyond* that hardware floor (they had 16 CPUs).
    let ideal = (replicas as f64 / cores as f64).ceil().max(1.0);
    let mut table = TextTable::new(vec![
        "benchmark",
        "1 replica",
        "16 replicas",
        "core-limited ideal",
        "overhead vs ideal",
    ]);
    let mut overheads = Vec::new();
    for profile in alloc_intensive_suite() {
        if profile.uninit_read_bug {
            continue; // lindsay: excluded as in the paper, shown below.
        }
        let prog = profile.generate(scale, 0x5CA1E);
        let one = ReplicaSet::new(1, 0xAA, HeapConfig::default());
        let many = ReplicaSet::new(replicas, 0xAA, HeapConfig::default());
        let t1 = measured_seconds(1, 3, || {
            let _ = one.run_parallel(&prog);
        });
        let t16 = measured_seconds(1, 3, || {
            let _ = many.run_parallel(&prog);
        });
        let overhead = t16 / t1;
        table.row(vec![
            profile.name.to_string(),
            norm(1.0),
            norm(overhead),
            norm(ideal),
            format!("{:+.0}%", (overhead / ideal - 1.0) * 100.0),
        ]);
        overheads.push(overhead / ideal);
    }
    table.row(vec![
        "GEOMEAN".to_string(),
        norm(1.0),
        String::new(),
        String::new(),
        format!("{:+.0}%", (geomean(&overheads) - 1.0) * 100.0),
    ]);
    println!("{}", table.render());
    println!(
        "Paper: ~+50% beyond a single replica on a 16-way machine. This host\n\
         has {cores} core(s), so the fair comparison is against the core-limited\n\
         ideal of {ideal:.0}x; the overhead beyond it is voting + scheduling.\n"
    );

    // Why lindsay was excluded: the voter detects its uninitialized read.
    let lindsay = alloc_intensive_suite()
        .into_iter()
        .find(|p| p.uninit_read_bug)
        .expect("lindsay profile");
    let prog = lindsay.generate(scale, 0x5CA1E);
    let set = ReplicaSet::new(3, 0xAA, HeapConfig::default());
    match set.run_parallel(&prog).outcome {
        ReplicatedOutcome::Divergence { at_chunk } => println!(
            "lindsay: replicas diverged at output chunk {at_chunk} — the voter detected\n\
             its uninitialized read and terminated, as reported in §7.2.3."
        ),
        other => println!("lindsay: unexpected outcome {other:?}"),
    }
}
