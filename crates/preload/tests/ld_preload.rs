//! End-to-end `LD_PRELOAD` tests: run *real, unmodified system binaries*
//! with `libdiehard.so` interposed and check their output is untouched.
//!
//! The cdylib is not a Cargo test artifact, so there is no
//! `CARGO_BIN_EXE_*`-style env var for it; it is located relative to this
//! test binary (`target/<profile>/deps/ld_preload-*` → `target/<profile>/
//! libdiehard.so`). When the library has not been built in this profile
//! the tests skip with a notice instead of failing — CI builds it
//! explicitly first.

use std::path::PathBuf;
use std::process::{Command, Stdio};

/// `target/<profile>/libdiehard.so`, if it has been built.
fn preload_path() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?; // strip deps/<test-bin>
    let so = profile_dir.join("libdiehard.so");
    so.exists().then_some(so)
}

/// Runs `cmd` with the interposer preloaded and `input` on stdin,
/// returning (stdout, success).
fn run_preloaded(so: &PathBuf, cmd: &[&str], input: &str, seed: Option<&str>) -> (String, bool) {
    let mut command = Command::new(cmd[0]);
    command
        .args(&cmd[1..])
        .env("LD_PRELOAD", so)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(seed) = seed {
        command.env("DIEHARD_SEED", seed);
    }
    let mut child = command.spawn().expect("spawn preloaded binary");
    use std::io::Write;
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("feed stdin");
    let out = child.wait_with_output().expect("collect output");
    assert!(
        out.stderr.is_empty(),
        "stderr from {:?}: {}",
        cmd,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

macro_rules! require_so {
    () => {
        match preload_path() {
            Some(so) => so,
            None => {
                eprintln!("skipping: libdiehard.so not built in this profile");
                return;
            }
        }
    };
}

#[test]
fn cat_round_trips_bytes() {
    let so = require_so!();
    let input = "hello from the randomized heap\nsecond line\n";
    let (out, ok) = run_preloaded(&so, &["cat"], input, None);
    assert!(ok);
    assert_eq!(out, input);
}

#[test]
fn tr_transforms_text() {
    let so = require_so!();
    let (out, ok) = run_preloaded(&so, &["tr", "a-z", "A-Z"], "vote on me\n", Some("42"));
    assert!(ok);
    assert_eq!(out, "VOTE ON ME\n");
}

#[test]
fn shell_pipeline_survives_fork_and_exec() {
    let so = require_so!();
    // `sh -c` forks and execs children; LD_PRELOAD and the atfork hooks
    // ride along into every process of the pipeline.
    let (out, ok) = run_preloaded(
        &so,
        &["sh", "-c", "echo abc | tr a-z A-Z; echo done"],
        "",
        None,
    );
    assert!(ok);
    assert_eq!(out, "ABC\ndone\n");
}

#[test]
fn sort_handles_allocation_heavy_input() {
    let so = require_so!();
    // sort(1) slurps everything through malloc/realloc before sorting —
    // a denser allocation workload than cat/tr.
    let input: String = (0..3000).rev().map(|i| format!("{i}\n")).collect();
    let (out, ok) = run_preloaded(&so, &["sort", "-n"], &input, Some("1234"));
    assert!(ok);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3000);
    assert_eq!(lines[0], "0");
    assert_eq!(lines[2999], "2999");
}

#[test]
fn distinct_seeds_still_produce_identical_output() {
    let so = require_so!();
    // The whole point of replication: different randomized layouts, same
    // observable behavior for a correct program.
    let input = "determinism survives randomization\n";
    let (a, ok_a) = run_preloaded(&so, &["tr", "a-z", "A-Z"], input, Some("1"));
    let (b, ok_b) = run_preloaded(&so, &["tr", "a-z", "A-Z"], input, Some("99"));
    assert!(ok_a && ok_b);
    assert_eq!(a, b);
}
