//! Ablation: the space/reliability dial.
//!
//! "DieHard allows an explicit trade-off between memory usage and error
//! tolerance" (§9). This sweep varies the expansion factor `M` and
//! measures everything it buys and costs at once:
//!
//! * survival rate of espresso under §7.3.1-style overflow injection,
//! * survival rate under dangling-pointer injection,
//! * expected and measured probes per allocation (the CPU cost),
//! * committed memory relative to live data (the space cost),
//!
//! plus the same sweep for the adaptive-growth variant (§9 future work),
//! which trades early-run protection for a smaller footprint.
//!
//! Run: `cargo run --release -p diehard-bench --bin ablation`

use diehard_bench::{pct, TextTable};
use diehard_core::adaptive::AdaptiveHeap;
use diehard_core::analysis::expected_probes_at_cap;
use diehard_core::config::HeapConfig;
use diehard_inject::{inject, Injection};
use diehard_runtime::{System, Verdict};
use diehard_workloads::profile_by_name;

const RUNS: u64 = 12;
const SCALE: f64 = 0.1;

/// The paper sizes the heap as "M times larger than the maximum required"
/// (§3.1): the per-class region grows with M while the workload (and hence
/// the live data) stays fixed, so fullness at the cap is 1/M.
fn region_for(m: f64) -> usize {
    (((24 * 1024) as f64 * m) as usize)
        .next_power_of_two()
        .max(HeapConfig::min_region_bytes(m))
}

fn survival(config: &HeapConfig, injection: &Injection, runs: u64) -> f64 {
    let espresso = profile_by_name("espresso").expect("espresso");
    let scale = diehard_bench::smoke_scaled(SCALE, 0.02);
    let mut ok = 0;
    for run in 0..runs {
        let prog = espresso.generate(scale, 0xAB1A + run);
        let bad = inject(&prog, injection, 0x1D3A + run);
        let v = System::DieHard {
            config: config.clone(),
            seed: run,
        }
        .evaluate(&bad);
        if v == Verdict::Correct {
            ok += 1;
        }
    }
    ok as f64 / runs as f64
}

fn main() {
    println!("Ablation — the M dial: space vs probabilistic protection");
    let runs = diehard_bench::smoke_scaled(RUNS, 3);
    println!("(espresso, {runs} runs/cell; overflow = 5% of allocs ≥32 B short a granule;");
    println!(" dangling = 50% of frees 30 allocations early; heap = M x required)\n");

    let overflow = Injection::Underflow {
        rate: 0.05,
        min_size: 32,
        shrink_by: 16,
    };
    let dangling = Injection::Dangling {
        frequency: 0.5,
        distance: 30,
    };

    let mut table = TextTable::new(vec![
        "M",
        "overflow survival",
        "dangling survival",
        "E[probes]",
        "heap/live (space)",
    ]);
    for &m in &[1.25f64, 1.5, 2.0, 4.0, 8.0] {
        let region = region_for(m);
        let config = HeapConfig::default()
            .with_region_bytes(region)
            .with_multiplier(m);
        let o = survival(&config, &overflow, runs);
        let d = survival(&config, &dangling, runs);
        table.row(vec![
            format!("{m:.2}"),
            pct(o),
            pct(d),
            format!("{:.2}", expected_probes_at_cap(m.max(1.01))),
            format!("{} KB/class", region / 1024),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading the dial: larger M = emptier regions = better masking odds\n\
         (Theorems 1 & 2) and *cheaper* allocation (fewer probe collisions),\n\
         paid for in address space.\n"
    );

    // Adaptive variant: same protection maths on the *current* region size.
    println!("Adaptive growth (§9): footprint of fixed vs adaptive heaps after");
    println!("a 2,000-allocation espresso prefix (M = 2):\n");
    let config = HeapConfig::default().with_region_bytes(4 << 20);
    let fixed_commit = config.heap_span();
    let mut adaptive = AdaptiveHeap::new(config, 9).unwrap();
    let espresso = profile_by_name("espresso").expect("espresso");
    let prog = espresso.generate(0.08, 0xADA);
    let mut served = 0usize;
    for op in &prog.ops {
        if let diehard_runtime::Op::Alloc { size, .. } = op {
            if adaptive.alloc(*size).is_some() {
                served += 1;
            }
        }
    }
    let mut t2 = TextTable::new(vec!["heap", "slot bytes committed", "vs fixed"]);
    t2.row(vec![
        "fixed (reserve max)".to_string(),
        format!("{} KB", fixed_commit / 1024),
        "1.00x".to_string(),
    ]);
    t2.row(vec![
        format!(
            "adaptive ({} allocs, {} growths)",
            served,
            adaptive.growth_events()
        ),
        format!("{} KB", adaptive.committed_bytes() / 1024),
        format!(
            "{:.3}x",
            adaptive.committed_bytes() as f64 / fixed_commit as f64
        ),
    ]);
    println!("{}", t2.render());
    println!(
        "The adaptive heap commits a small fraction of the fixed reservation\n\
         while serving the same requests — the trade-off sketched in §9\n\
         (its dangling/overflow odds scale with the *current* region size)."
    );
}
