//! Quickstart: DieHard's probabilistic memory safety in two minutes.
//!
//! Demonstrates the core guarantees on a simulated heap: randomized
//! placement, tolerated erroneous frees, overflow masking, and dangling-
//! pointer survival — each compared against what the dlmalloc-style
//! baseline does with the very same program.
//!
//! Run: `cargo run --example quickstart`

use diehard::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== DieHard quickstart ==\n");

    // 1. Randomized placement: identical request sequences land in
    //    different places under different seeds.
    let mut a = DieHardSimHeap::new(HeapConfig::default(), 1)?;
    let mut b = DieHardSimHeap::new(HeapConfig::default(), 2)?;
    let pa = a.malloc(64, &[])?.unwrap();
    let pb = b.malloc(64, &[])?.unwrap();
    println!("same request, two seeds: {pa:#x} vs {pb:#x} (randomized layout)");

    // 2. Erroneous frees are validated and ignored (§4.3).
    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 42)?;
    let p = heap.malloc(100, &[])?.unwrap();
    heap.memory_mut().write(p, b"important data")?;
    heap.free(p + 1)?; // misaligned: ignored
    heap.free(0xBAD_0000)?; // wild pointer: ignored
    heap.free(p)?; // valid
    heap.free(p)?; // double free: ignored
    let stats = heap.stats();
    println!(
        "frees: {} honored, {} erroneous ones ignored (no crash, no corruption)",
        stats.frees, stats.ignored_frees
    );

    // 3. Overflows usually land on empty space (§6.1): run the same buggy
    //    program under DieHard and under the dlmalloc-style baseline.
    let overflow_prog = Program::new(
        "overflow-demo",
        vec![
            Op::Alloc { id: 0, size: 24 },
            Op::Alloc { id: 1, size: 24 },
            Op::Write {
                id: 1,
                offset: 0,
                len: 24,
                seed: 7,
            },
            Op::Write {
                id: 0,
                offset: 0,
                len: 48,
                seed: 9,
            }, // 24-byte overflow!
            Op::Free { id: 1 },
            Op::Forget { id: 1 },
            Op::Alloc { id: 2, size: 24 },
            Op::Read {
                id: 2,
                offset: 0,
                len: 8,
            },
        ],
    );
    let libc = System::Libc.evaluate(&overflow_prog);
    let dh = System::DieHard {
        config: HeapConfig::default(),
        seed: 3,
    }
    .evaluate(&overflow_prog);
    println!("\nbuggy program (24-byte heap overflow):");
    println!("  dlmalloc-style allocator: {libc}");
    println!("  DieHard:                  {dh}");

    // 4. The analytical guarantee behind that behaviour (Theorem 1).
    println!("\nTheorem 1 — P(mask a single-object overflow):");
    for (label, frac) in [("1/8", 7.0 / 8.0), ("1/4", 3.0 / 4.0), ("1/2", 1.0 / 2.0)] {
        println!(
            "  heap {label} full: stand-alone {:5.1}%, three replicas {:6.2}%",
            100.0 * diehard::core::analysis::p_overflow_mask(frac, 1, 1),
            100.0 * diehard::core::analysis::p_overflow_mask(frac, 1, 3),
        );
    }

    // 5. Replication detects uninitialized reads (§3.2).
    let uninit_prog = Program::new(
        "uninit-demo",
        vec![
            Op::Alloc { id: 0, size: 64 },
            Op::Read {
                id: 0,
                offset: 0,
                len: 8,
            }, // never written
        ],
    );
    let set = ReplicaSet::new(3, 0xCAFE, HeapConfig::default());
    match set.run(&uninit_prog).outcome {
        ReplicatedOutcome::Divergence { at_chunk } => println!(
            "\nreplicated mode: 3 replicas disagreed at chunk {at_chunk} — \
             uninitialized read detected and terminated"
        ),
        other => println!("\nreplicated mode: {other:?}"),
    }
    Ok(())
}
