//! Program output streams.
//!
//! Replicated DieHard votes on program output in 4 KB chunks ("the unit of
//! transfer of a pipe", §5.2). [`Output`] models a program's standard
//! output: executors append the bytes that reads produce, and the voter
//! compares outputs chunk by chunk.

/// Chunk granularity for voting (the paper's pipe-buffer size).
pub const CHUNK: usize = 4096;

/// FNV-1a 64-bit hash, used to fingerprint long reads compactly.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A program's observable output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Output {
    bytes: Vec<u8>,
}

impl Output {
    /// An empty output stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes (something the program printed).
    pub fn push(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends the observable result of reading `data`: a short raw prefix
    /// (so uninitialized garbage propagates verbatim, as §3.2 requires)
    /// plus a hash covering the whole read.
    pub fn push_read(&mut self, data: &[u8]) {
        let prefix = data.len().min(32);
        self.bytes.extend_from_slice(&data[..prefix]);
        self.bytes.extend_from_slice(&fnv1a(data).to_le_bytes());
    }

    /// Total output length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the program produced no output.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw output bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A stable fingerprint of the whole stream.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(&self.bytes)
    }

    /// The output split into voting chunks; the final chunk may be short.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.bytes.chunks(CHUNK)
    }

    /// Number of voting chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.bytes.len().div_ceil(CHUNK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn push_read_includes_prefix_and_hash() {
        let mut o = Output::new();
        o.push_read(b"hello");
        assert_eq!(o.len(), 5 + 8);
        assert_eq!(&o.as_bytes()[..5], b"hello");
    }

    #[test]
    fn long_reads_capped_prefix() {
        let mut o = Output::new();
        let data = vec![7u8; 1000];
        o.push_read(&data);
        assert_eq!(o.len(), 32 + 8);
    }

    #[test]
    fn different_data_different_output() {
        let mut a = Output::new();
        let mut b = Output::new();
        // Same 32-byte prefix, difference beyond it: the hash still catches it.
        let mut da = vec![1u8; 64];
        let db = vec![1u8; 64];
        da[50] = 2;
        a.push_read(&da);
        b.push_read(&db);
        assert_ne!(a, b);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn chunking() {
        let mut o = Output::new();
        o.push(&vec![0u8; CHUNK + 100]);
        assert_eq!(o.chunk_count(), 2);
        let chunks: Vec<&[u8]> = o.chunks().collect();
        assert_eq!(chunks[0].len(), CHUNK);
        assert_eq!(chunks[1].len(), 100);
    }

    #[test]
    fn empty_output() {
        let o = Output::new();
        assert!(o.is_empty());
        assert_eq!(o.chunk_count(), 0);
    }
}
