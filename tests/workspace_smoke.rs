//! Workspace-wiring smoke tests: one op-stream program driven through the
//! whole stack — facade prelude → runtime executor → DieHard-on-sim and the
//! infinite-heap oracle — plus a subprocess check that the evaluation
//! binaries' `--smoke` fast path stays healthy. These exist so a bad
//! manifest edge (crate not linked, bin not registered, feature misrouted)
//! fails loudly in CI rather than at the first real experiment.

use diehard::prelude::*;

/// A small but representative program: churn across size classes, verified
/// writes and reads, a benign double free, and literal output.
fn smoke_program() -> Program {
    let mut ops = vec![Op::Print {
        bytes: b"workspace smoke\n".to_vec(),
    }];
    for i in 0..24u32 {
        ops.push(Op::Alloc {
            id: i,
            size: 8 + (i as usize * 37) % 2048,
        });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 8,
            seed: i as u8,
        });
    }
    for i in 0..24u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 8,
        });
        if i % 3 == 0 {
            ops.push(Op::Free { id: i });
            ops.push(Op::Forget { id: i });
        }
    }
    // A double free on a still-bound handle: DieHard validates and ignores
    // it; the infinite heap has no reuse to corrupt either way.
    ops.push(Op::Alloc { id: 100, size: 64 });
    ops.push(Op::Free { id: 100 });
    ops.push(Op::Free { id: 100 });
    ops.push(Op::Forget { id: 100 });
    Program::new("workspace-smoke", ops)
}

#[test]
fn diehard_matches_infinite_heap_oracle() {
    let prog = smoke_program();
    let oracle = oracle_output(&prog);

    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 0x5140E).unwrap();
    let outcome = run_program(&mut heap, &prog, &ExecOptions::default());
    assert_eq!(
        verdict(&outcome, &oracle),
        Verdict::Correct,
        "DieHard run must reproduce the infinite-heap output"
    );

    let mut infinite = InfiniteHeap::new();
    let oracle_outcome = run_program(&mut infinite, &prog, &ExecOptions::default());
    assert_eq!(verdict(&oracle_outcome, &oracle), Verdict::Correct);
}

#[test]
fn system_diehard_emulator_agrees() {
    let prog = smoke_program();
    let v = System::DieHard {
        config: HeapConfig::default(),
        seed: 7,
    }
    .evaluate(&prog);
    assert_eq!(v, Verdict::Correct);
}

/// Every crate in the workspace is reachable through the facade; touching
/// one symbol per crate catches a manifest that silently dropped an edge.
#[test]
fn facade_links_every_crate() {
    let _ = diehard::core::analysis::p_overflow_mask(0.5, 1, 3);
    let _ = diehard::sim::PagedArena::new(1 << 20);
    let _ = diehard::baselines::LeaSimAllocator::new(1 << 20);
    let _ = diehard::runtime::Program::new("empty", Vec::new());
    let _ = diehard::inject::Injection::Dangling {
        frequency: 0.5,
        distance: 1,
    };
    let _ = diehard::workloads::profile_by_name("espresso").expect("espresso exists");
    let _ = diehard::replicate::CHUNK;
}
