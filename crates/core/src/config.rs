//! Heap configuration: the `M` multiplier and region geometry.
//!
//! The paper (§3.1): "We replace the infinite heap with one that is M times
//! larger than the maximum required to obtain an M-approximation to
//! infinite-heap semantics." Each of the twelve per-class regions is allowed
//! to become at most `1/M` full (§4.1).

use crate::size_class::{SizeClass, MAX_OBJECT_SIZE, NUM_CLASSES};

/// Whether newly served memory is filled with random values.
///
/// The replicated version of DieHard fills the heap and every allocated
/// object with random values so that uninitialized reads diverge across
/// replicas and are caught by the voter (§3.2, §4.2). The stand-alone
/// version skips the fill for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPolicy {
    /// Leave memory as the substrate provides it (stand-alone mode).
    #[default]
    None,
    /// Fill allocations (and, conceptually, the whole heap) with
    /// pseudo-random values drawn from the heap's RNG (replicated mode).
    Random,
}

/// Configuration for a DieHard heap.
///
/// # Examples
///
/// ```
/// use diehard_core::config::HeapConfig;
///
/// let cfg = HeapConfig::default();          // M = 2, 1 MB regions
/// assert_eq!(cfg.multiplier, 2.0);
/// let big = HeapConfig::paper_default();    // the paper's 384 MB heap
/// assert_eq!(big.region_bytes * 12, 384 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeapConfig {
    /// The heap expansion factor `M`: each region may be at most `1/M` full.
    /// The paper's default configuration uses `M = 2` ("up to 1/2 is
    /// available for allocation", §7.1).
    pub multiplier: f64,
    /// Bytes reserved for each of the twelve size-class regions. Must be a
    /// power of two, at least [`min_region_bytes`](Self::min_region_bytes).
    pub region_bytes: usize,
    /// Random-fill policy for detecting uninitialized reads.
    pub fill: FillPolicy,
}

impl HeapConfig {
    /// Experiment-friendly default: `M = 2` with 1 MB regions (12 MB total),
    /// small enough that Monte Carlo campaigns run thousands of heaps.
    #[must_use]
    pub fn new() -> Self {
        Self {
            multiplier: 2.0,
            region_bytes: 1 << 20,
            fill: FillPolicy::None,
        }
    }

    /// The paper's evaluation configuration (§7.1): a 384 MB heap — twelve
    /// 32 MB regions — of which up to half is available for allocation.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            multiplier: 2.0,
            region_bytes: 32 << 20,
            fill: FillPolicy::None,
        }
    }

    /// Sets the expansion factor `M` (builder style).
    #[must_use]
    pub fn with_multiplier(mut self, m: f64) -> Self {
        self.multiplier = m;
        self
    }

    /// Sets the per-class region size in bytes (builder style).
    #[must_use]
    pub fn with_region_bytes(mut self, bytes: usize) -> Self {
        self.region_bytes = bytes;
        self
    }

    /// Sets the fill policy (builder style).
    #[must_use]
    pub fn with_fill(mut self, fill: FillPolicy) -> Self {
        self.fill = fill;
        self
    }

    /// Smallest legal region size for a given multiplier: the largest size
    /// class (16 KB) must be able to hold at least one live object below the
    /// `1/M` threshold.
    #[must_use]
    pub fn min_region_bytes(multiplier: f64) -> usize {
        let needed = (multiplier.max(1.0) * MAX_OBJECT_SIZE as f64).ceil() as usize;
        needed.next_power_of_two()
    }

    /// Number of object slots in the region for `class`.
    #[must_use]
    #[inline]
    pub fn capacity(&self, class: SizeClass) -> usize {
        self.region_bytes >> class.shift()
    }

    /// Maximum live objects allowed in `class`'s region: `capacity / M`
    /// (§4.1: "Each region is allowed to become at most 1/M full").
    #[must_use]
    #[inline]
    pub fn threshold(&self, class: SizeClass) -> usize {
        self.threshold_for(self.capacity(class))
    }

    /// `⌊capacity / M⌋` in exact integer arithmetic, for an arbitrary slot
    /// count (the adaptive heap's growing partitions use non-class
    /// capacities).
    ///
    /// The obvious `(capacity as f64 / M) as usize` drifts: above 2⁵³ the
    /// capacity itself is not representable, and even below that the rounded
    /// quotient can land on the wrong side of an integer, overshooting the
    /// paper's `1/M` cap by a slot. Every finite `f64` is a dyadic rational
    /// `mant × 2^e`, so the floor is computed exactly as
    /// `⌊capacity × 2^-e / mant⌋` in 128-bit integers.
    #[must_use]
    pub fn threshold_for(&self, capacity: usize) -> usize {
        let m = self.multiplier;
        if !m.is_finite() || m < 1.0 {
            // Out-of-contract multiplier ([`validate`](Self::validate)
            // rejects it): keep the historical float behaviour rather than
            // asserting in a non-validating accessor.
            return (capacity as f64 / m) as usize;
        }
        // m >= 1.0 is normal: m = (2^52 | frac) × 2^(exp - 1075), exactly.
        let bits = m.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let mut mant = (1u64 << 52) | (bits & ((1u64 << 52) - 1));
        let mut e = exp - 1075;
        let tz = mant.trailing_zeros();
        mant >>= tz;
        e += tz as i32;
        if e >= 0 {
            // m is the integer mant << e; a denominator above usize::MAX
            // floors everything to zero.
            if e >= 64 {
                return 0;
            }
            (capacity as u128 / ((mant as u128) << e)) as usize
        } else {
            // mant is odd and < 2^53 with m >= 1, so -e <= 52 and the
            // shifted numerator fits comfortably in 128 bits.
            (((capacity as u128) << -e) / mant as u128) as usize
        }
    }

    /// Total bytes spanned by the twelve small-object regions.
    #[must_use]
    pub fn heap_span(&self) -> usize {
        self.region_bytes * NUM_CLASSES
    }

    /// Byte offset of the start of `class`'s region within the heap span.
    ///
    /// The twelve regions are laid out back to back; converting a heap
    /// offset to (class, slot) is two shifts and a mask, matching the
    /// paper's bit-shifting arithmetic (§4.1).
    #[must_use]
    #[inline]
    pub fn region_base(&self, class: SizeClass) -> usize {
        class.index() * self.region_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `M < 1`, the region size is not a power
    /// of two, or the region is too small to host the largest size class
    /// under the `1/M` cap.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.multiplier.is_finite() || self.multiplier < 1.0 {
            return Err(ConfigError::BadMultiplier(self.multiplier));
        }
        if !self.region_bytes.is_power_of_two() {
            return Err(ConfigError::RegionNotPowerOfTwo(self.region_bytes));
        }
        if self.region_bytes < Self::min_region_bytes(self.multiplier) {
            return Err(ConfigError::RegionTooSmall {
                got: self.region_bytes,
                need: Self::min_region_bytes(self.multiplier),
            });
        }
        Ok(())
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Precomputed shift/mask geometry for a validated [`HeapConfig`].
///
/// The paper's §4.1 chooses power-of-two size classes so that "expensive
/// division and modulus operations [are] replaced with bit-shifting" — this
/// type is where that promise is kept. Built once at heap construction, it
/// turns every per-operation conversion into shifts and masks:
///
/// * offset → class is `offset >> region_shift` (no division),
/// * offset → within-region is `offset & region_mask` (no modulus),
/// * class → region base is `index << region_shift` (no multiply),
/// * per-class capacities are stored with their exact `log2`, so partition
///   probes can draw a uniform slot as `next_u64() >> (64 - capacity_log2)`,
/// * the `1/M` thresholds are integer values computed once
///   ([`HeapConfig::threshold_for`]), never per-call float division.
///
/// Geometry construction *validates*: a `HeapGeometry` existing is proof the
/// configuration is legal, which is what lets the hot paths drop their
/// checks to shifts.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapGeometry {
    config: HeapConfig,
    region_shift: u32,
    region_mask: usize,
    heap_span: usize,
    capacity: [usize; NUM_CLASSES],
    threshold: [usize; NUM_CLASSES],
    initial_capacity: [usize; NUM_CLASSES],
    initial_threshold: [usize; NUM_CLASSES],
}

impl HeapGeometry {
    /// Validates `config` and precomputes its shift/mask geometry.
    ///
    /// The resulting heap is *fixed-size*: the initial per-class capacity
    /// equals the maximum, so partitions never grow.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig) -> Result<Self, ConfigError> {
        Self::build(config, 0)
    }

    /// As [`new`](Self::new), but the heap starts *elastic*: each class
    /// begins at `1 / 2^initial_fraction_log2` of its maximum capacity
    /// (clamped to a power of two that can hold at least one live object
    /// under `1/M`) and doubles on demand up to the maximum. Because every
    /// start capacity is a power of two, the partitions keep the
    /// shift-only probe draw through every doubling; the slot layout is
    /// computed against the *maximum* capacity, so indices, offsets, and
    /// `slot_at`/`locate_free` arithmetic are growth-stable.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new_elastic(
        config: HeapConfig,
        initial_fraction_log2: u32,
    ) -> Result<Self, ConfigError> {
        Self::build(config, initial_fraction_log2)
    }

    fn build(config: HeapConfig, initial_fraction_log2: u32) -> Result<Self, ConfigError> {
        config.validate()?;
        let region_shift = config.region_bytes.trailing_zeros();
        let mut capacity = [0usize; NUM_CLASSES];
        let mut threshold = [0usize; NUM_CLASSES];
        let mut initial_capacity = [0usize; NUM_CLASSES];
        let mut initial_threshold = [0usize; NUM_CLASSES];
        // Smallest useful start: one live slot under 1/M, rounded up to a
        // power of two so the shift draw applies from the first allocation.
        let min_start = (config.multiplier.ceil() as usize)
            .max(2)
            .next_power_of_two();
        for c in SizeClass::all() {
            let cap = config.capacity(c);
            debug_assert!(cap.is_power_of_two(), "pow2 region / pow2 class");
            capacity[c.index()] = cap;
            threshold[c.index()] = config.threshold(c);
            let start = (cap >> initial_fraction_log2.min(63))
                .max(min_start)
                .min(cap);
            debug_assert!(start.is_power_of_two(), "pow2 max / pow2 fraction");
            initial_capacity[c.index()] = start;
            initial_threshold[c.index()] = config.threshold_for(start).max(1);
        }
        Ok(Self {
            region_shift,
            region_mask: config.region_bytes - 1,
            heap_span: config.heap_span(),
            capacity,
            threshold,
            initial_capacity,
            initial_threshold,
            config,
        })
    }

    /// The validated configuration this geometry was built from.
    #[must_use]
    #[inline]
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// `log2(region_bytes)`: shifting an offset right by this yields its
    /// class index.
    #[must_use]
    #[inline]
    pub fn region_shift(&self) -> u32 {
        self.region_shift
    }

    /// `region_bytes - 1`: masking an offset with this yields the byte
    /// position within its region.
    #[must_use]
    #[inline]
    pub fn region_mask(&self) -> usize {
        self.region_mask
    }

    /// Total bytes spanned by the twelve small-object regions.
    #[must_use]
    #[inline]
    pub fn heap_span(&self) -> usize {
        self.heap_span
    }

    /// Byte offset of the start of `class`'s region (a shift, §4.1).
    #[must_use]
    #[inline]
    pub fn region_base(&self, class: SizeClass) -> usize {
        class.index() << self.region_shift
    }

    /// Number of object slots in `class`'s region (always a power of two).
    #[must_use]
    #[inline]
    pub fn capacity(&self, class: SizeClass) -> usize {
        self.capacity[class.index()]
    }

    /// `log2` of [`capacity`](Self::capacity): `region_shift - class.shift()`,
    /// computed from the same stored shift the offset arithmetic uses, so it
    /// cannot drift from the capacities the partitions are built with. The
    /// partition probe loop's draw shift is `64 - capacity_log2`.
    #[must_use]
    #[inline]
    pub fn capacity_log2(&self, class: SizeClass) -> u32 {
        self.region_shift - class.shift()
    }

    /// Maximum live objects allowed in `class`'s region (`⌊capacity / M⌋`,
    /// computed once in exact integer arithmetic).
    #[must_use]
    #[inline]
    pub fn threshold(&self, class: SizeClass) -> usize {
        self.threshold[class.index()]
    }

    /// The slot count `class`'s region starts with — equal to
    /// [`capacity`](Self::capacity) for fixed geometries ([`new`](Self::new)),
    /// a smaller power of two for elastic ones
    /// ([`new_elastic`](Self::new_elastic)).
    #[must_use]
    #[inline]
    pub fn initial_capacity(&self, class: SizeClass) -> usize {
        self.initial_capacity[class.index()]
    }

    /// The `1/M` threshold matching [`initial_capacity`](Self::initial_capacity)
    /// (at least 1, so an elastic start can always serve a first allocation).
    #[must_use]
    #[inline]
    pub fn initial_threshold(&self, class: SizeClass) -> usize {
        self.initial_threshold[class.index()]
    }

    /// Random-fill policy for detecting uninitialized reads.
    #[must_use]
    #[inline]
    pub fn fill(&self) -> FillPolicy {
        self.config.fill
    }
}

/// An invalid [`HeapConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `M` must be a finite value of at least 1.
    BadMultiplier(f64),
    /// Region sizes must be powers of two so offset arithmetic stays
    /// shift/mask only.
    RegionNotPowerOfTwo(usize),
    /// The region cannot hold even one largest-class object under `1/M`.
    RegionTooSmall {
        /// The configured region size.
        got: usize,
        /// The minimum region size for the configured multiplier.
        need: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMultiplier(m) => write!(f, "heap multiplier {m} must be finite and >= 1"),
            Self::RegionNotPowerOfTwo(b) => {
                write!(f, "region size {b} is not a power of two")
            }
            Self::RegionTooSmall { got, need } => {
                write!(f, "region size {got} below minimum {need}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HeapConfig::default().validate().unwrap();
        HeapConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_default_is_384_mb_m2() {
        let cfg = HeapConfig::paper_default();
        assert_eq!(cfg.heap_span(), 384 << 20);
        assert_eq!(cfg.multiplier, 2.0);
    }

    #[test]
    fn capacity_and_threshold() {
        let cfg = HeapConfig::new(); // 1 MB regions, M = 2
        let c0 = SizeClass::from_index(0); // 8 B
        assert_eq!(cfg.capacity(c0), (1 << 20) / 8);
        assert_eq!(cfg.threshold(c0), (1 << 20) / 16);
        let c11 = SizeClass::from_index(11); // 16 KB
        assert_eq!(cfg.capacity(c11), 64);
        assert_eq!(cfg.threshold(c11), 32);
    }

    #[test]
    fn threshold_scales_with_multiplier() {
        let cfg = HeapConfig::new().with_multiplier(4.0);
        let c0 = SizeClass::from_index(0);
        assert_eq!(cfg.threshold(c0), cfg.capacity(c0) / 4);
    }

    #[test]
    fn fractional_multiplier_supported() {
        // M = 4/3 leaves the heap up to 3/4 full, used by Fig 4(a)'s
        // "1/2 full" ... "1/8 full" sweeps via other values.
        let cfg = HeapConfig::new().with_multiplier(4.0 / 3.0);
        cfg.validate().unwrap();
        let c0 = SizeClass::from_index(0);
        let frac = cfg.threshold(c0) as f64 / cfg.capacity(c0) as f64;
        assert!((frac - 0.75).abs() < 0.001);
    }

    #[test]
    fn rejects_multiplier_below_one() {
        let cfg = HeapConfig::new().with_multiplier(0.5);
        assert!(matches!(cfg.validate(), Err(ConfigError::BadMultiplier(_))));
    }

    #[test]
    fn rejects_non_power_of_two_region() {
        let cfg = HeapConfig::new().with_region_bytes(1_000_000);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::RegionNotPowerOfTwo(_))
        ));
    }

    #[test]
    fn rejects_too_small_region() {
        let cfg = HeapConfig::new().with_region_bytes(16 * 1024);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, ConfigError::RegionTooSmall { .. }));
        // Error message is human-readable.
        assert!(err.to_string().contains("below minimum"));
    }

    #[test]
    fn min_region_bytes_tracks_multiplier() {
        assert_eq!(HeapConfig::min_region_bytes(2.0), 32 * 1024);
        assert_eq!(HeapConfig::min_region_bytes(8.0), 128 * 1024);
        // M < 1 clamps to 1.
        assert_eq!(HeapConfig::min_region_bytes(0.5), 16 * 1024);
    }

    #[test]
    fn threshold_is_exact_where_the_float_drifted() {
        // Regression cases for the old `(capacity as f64 / M) as usize`:
        // each triple is (capacity, M, exact ⌊capacity / M⌋) at a point
        // where float division lands on the wrong integer.
        //
        // The overshoot cases are the dangerous ones — the float threshold
        // exceeded the paper's `1/M` cap by a slot.
        let cases: &[(usize, f64, usize)] = &[
            // float undershoots (2^60 not representable precisely / 3):
            (1 << 60, 3.0, 384_307_168_202_282_325),
            (1 << 60, 7.0, 164_703_072_086_692_425),
            // float OVERSHOOTS the cap (M = 4/3 as stored in f64):
            ((1 << 53) + 2, 4.0 / 3.0, 6_755_399_441_055_745),
            ((1 << 53) - 1, 4.0 / 3.0, 6_755_399_441_055_743),
            ((1 << 53) - 1, 1.1, 8_188_362_958_855_445),
        ];
        for &(capacity, m, exact) in cases {
            let cfg = HeapConfig::new().with_multiplier(m);
            assert_eq!(
                cfg.threshold_for(capacity),
                exact,
                "capacity {capacity}, M = {m}"
            );
            // And demonstrate the old float arithmetic really was wrong
            // here, so this test fails if anyone "simplifies" it back.
            assert_ne!(
                (capacity as f64 / m) as usize,
                exact,
                "case no longer exercises float drift (capacity {capacity})"
            );
        }
    }

    #[test]
    fn threshold_matches_float_on_dyadic_multipliers() {
        // For dyadic M (exactly representable) and representable capacities
        // the old float result was already exact; the integer path must
        // agree bit for bit.
        for m in [1.0, 1.5, 2.0, 4.0, 8.0, 2.5] {
            let cfg = HeapConfig::new().with_multiplier(m);
            for capacity in [1usize, 2, 63, 64, 4096, 1 << 20, (1 << 30) + 7] {
                assert_eq!(
                    cfg.threshold_for(capacity),
                    (capacity as f64 / m) as usize,
                    "capacity {capacity}, M = {m}"
                );
            }
        }
    }

    #[test]
    fn threshold_huge_multiplier_floors_to_zero() {
        let cfg = HeapConfig::new().with_multiplier(1e300);
        assert_eq!(cfg.threshold_for(usize::MAX), 0);
    }

    proptest::proptest! {
        /// The integer threshold t is the true floor: t·M ≤ capacity and
        /// (t+1)·M > capacity, checked in exact dyadic arithmetic.
        #[test]
        fn threshold_is_true_floor(
            capacity in 1usize..=(1 << 60),
            // Spread multipliers across [1, 16) including non-dyadics.
            num in 8u32..128,
        ) {
            let m = f64::from(num) / 8.0;
            let cfg = HeapConfig::new().with_multiplier(m);
            let t = cfg.threshold_for(capacity);
            // m = mant·2^e exactly; compare t·mant·2^e with capacity in
            // u128 (e here is within ±64 for these multipliers).
            let bits = m.to_bits();
            let exp = ((bits >> 52) & 0x7FF) as i32;
            let mant = ((1u64 << 52) | (bits & ((1u64 << 52) - 1))) as u128;
            let e = exp - 1075;
            let scaled_cap = (capacity as u128) << (-e) as u32;
            proptest::prop_assert!((t as u128) * mant <= scaled_cap);
            proptest::prop_assert!((t as u128 + 1) * mant > scaled_cap);
        }
    }

    #[test]
    fn geometry_matches_config_arithmetic() {
        for region_log2 in [15u32, 20, 25] {
            let cfg = HeapConfig::new().with_region_bytes(1 << region_log2);
            let geom = HeapGeometry::new(cfg.clone()).unwrap();
            assert_eq!(geom.heap_span(), cfg.heap_span());
            assert_eq!(geom.region_mask(), cfg.region_bytes - 1);
            assert_eq!(1usize << geom.region_shift(), cfg.region_bytes);
            for c in SizeClass::all() {
                assert_eq!(geom.capacity(c), cfg.capacity(c));
                assert_eq!(geom.threshold(c), cfg.threshold(c));
                assert_eq!(geom.region_base(c), cfg.region_base(c));
                // The shift the probe loop derives from the capacity is the
                // same one the geometry advertises.
                assert_eq!(1usize << geom.capacity_log2(c), geom.capacity(c));
            }
        }
        // Construction validates.
        assert!(HeapGeometry::new(HeapConfig::new().with_region_bytes(12_345)).is_err());
    }

    #[test]
    fn elastic_geometry_starts_small_and_pow2() {
        let cfg = HeapConfig::new(); // 1 MB regions, M = 2
        let geom = HeapGeometry::new_elastic(cfg.clone(), 6).unwrap();
        for c in SizeClass::all() {
            let start = geom.initial_capacity(c);
            let max = geom.capacity(c);
            assert!(start.is_power_of_two(), "start {start} must stay pow2");
            assert!(start <= max);
            assert!(start >= 2, "start can hold one live slot under 1/M");
            assert!(geom.initial_threshold(c) >= 1);
            assert!(geom.initial_threshold(c) <= start);
            // 1/64 of max, clamped from below for the smallest classes.
            assert_eq!(start, (max / 64).max(2).min(max));
        }
        // Fixed geometry: initial == maximum, thresholds identical.
        let fixed = HeapGeometry::new(cfg).unwrap();
        for c in SizeClass::all() {
            assert_eq!(fixed.initial_capacity(c), fixed.capacity(c));
            assert_eq!(fixed.initial_threshold(c), fixed.threshold(c));
        }
        // Non-dyadic multiplier: the start is still a power of two (the
        // point of the elastic geometry — the shift draw never degrades).
        let odd = HeapConfig::new().with_multiplier(3.0);
        let geom = HeapGeometry::new_elastic(odd, 10).unwrap();
        for c in SizeClass::all() {
            assert!(geom.initial_capacity(c).is_power_of_two());
        }
    }

    #[test]
    fn region_bases_are_contiguous() {
        let cfg = HeapConfig::new();
        let mut expect = 0;
        for c in SizeClass::all() {
            assert_eq!(cfg.region_base(c), expect);
            expect += cfg.region_bytes;
        }
        assert_eq!(expect, cfg.heap_span());
    }
}
