//! Drives the installed `diehard` launcher binary end to end.

#![cfg(unix)]

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn launcher_votes_and_passes_output_through() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let mut child = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "tr a-z A-Z"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn diehard launcher");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"voted output\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(out.stdout, b"VOTED OUTPUT\n");
}

#[test]
fn launcher_reports_divergence_with_exit_code_2() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "echo $DIEHARD_SEED"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("run diehard launcher");
    assert_eq!(out.status.code(), Some(2), "divergence exit code");
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverged"));
}

#[test]
fn launcher_streams_stdin_and_stdout_incrementally() {
    // Write exactly two 4 KB chunks, then demand them back on stdout
    // *before* closing stdin. A launcher that buffered stdin to EOF (the
    // old `read_to_end`) could never produce output here; the streaming
    // engine votes and commits each chunk as its barrier fills.
    let bin = env!("CARGO_BIN_EXE_diehard");
    let mut child = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "cat"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn diehard launcher");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");

    let first: Vec<u8> = (0..8192u32).map(|i| b'a' + (i % 23) as u8).collect();
    stdin.write_all(&first).unwrap();
    stdin.flush().unwrap();

    // Read the two voted chunks on a helper thread so a regression shows
    // up as a clean failure instead of a hung test.
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut buf = vec![0u8; 8192];
        let res = std::io::Read::read_exact(&mut stdout, &mut buf).map(|()| buf);
        let _ = tx.send(res);
        stdout
    });
    let echoed = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("voted output must stream back while stdin is still open")
        .expect("read voted chunks");
    assert_eq!(echoed, first);

    // Now finish the stream: a trailing partial chunk plus EOF.
    stdin.write_all(b"tail").unwrap();
    drop(stdin);
    let mut stdout = reader.join().unwrap();
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stdout, &mut rest).unwrap();
    assert_eq!(rest, b"tail");
    assert!(child.wait().unwrap().success());
}

#[test]
fn launcher_forwards_agreed_exit_status() {
    // All replicas write output then exit 7: the output must survive and
    // the launcher must exit 7 (it used to exit 0 on any agreement, and
    // before that pre-killed nonzero exits as crashes).
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "printf '0\\n'; exit 7"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("run diehard launcher");
    assert_eq!(out.stdout, b"0\n", "agreed output must not be dropped");
    assert_eq!(
        out.status.code(),
        Some(7),
        "agreed status must be forwarded"
    );
}

#[test]
fn launcher_forwards_winning_replica_stderr() {
    // Every replica writes the same diagnostic line; exactly one copy (the
    // winning replica's capture) must reach the launcher's stderr.
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args([
            "-n",
            "3",
            "--",
            "/bin/sh",
            "-c",
            "echo diag-from-replica >&2; echo payload",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("run diehard launcher");
    assert!(out.status.success());
    assert_eq!(out.stdout, b"payload\n");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        err.matches("diag-from-replica").count(),
        1,
        "exactly the winner's stderr is forwarded (got {err:?})"
    );
}

#[test]
fn launcher_usage_on_bad_args() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args(["-n", "2", "--", "cat"]) // 2 replicas: rejected
        .stdin(Stdio::null())
        .output()
        .expect("run diehard launcher");
    assert_eq!(out.status.code(), Some(1));
}
