//! The middle layer of the replication stack: one voted replica session.
//!
//! A [`Session`] is the paper's §5.2 voting state machine for a *single*
//! client stream, with every transport decision factored out: it does not
//! know whether its input arrives from a launcher's stdin, an in-memory
//! buffer, or a TCP socket, and it never writes to the outside world —
//! voted bytes are appended to a caller-supplied buffer and the transport
//! decides when (and whether) to ship them. What it *does* own, verbatim
//! from the original single-session engine:
//!
//! * the `config.replicas` differently-seeded child processes and their
//!   non-blocking stdin/stdout/stderr pipes;
//! * the bounded broadcast-input **window** (≤ chunk bytes, refilled only
//!   once every live consumer has drained it);
//! * per-replica ≤ chunk stdout buffers and the **barrier votes** over them
//!   the instant every live replica is ready, with `SIGKILL` for outvoted
//!   replicas mid-run;
//! * bounded (≤ chunk) stderr captures, drained past the cap;
//! * the endgame: reap (stderr still drained), crash demotion for signal
//!   deaths, the **stderr ballot**, and the final **exit-status ballot**.
//!
//! Transports drive a session through a narrow pull/push protocol each
//! reactor round: [`Session::pump`] resolves every satisfied barrier into
//! the caller's output buffer (backpressure = simply not calling it),
//! [`Session::register_interest`] names the descriptors that can make
//! progress, [`Session::service`] dispatches one readiness event, and
//! [`Session::wants_input`]/[`Session::accept_input`] gate the bounded
//! window. When [`Session::pump`] reports [`Phase::Drained`],
//! [`Session::finalize`] runs the closing ballots and yields the
//! [`StreamOutcome`]. Peak engine memory per session is
//! `(2 × replicas + 1) × chunk` by construction, reported via
//! [`StreamOutcome::peak_buffered`].

use crate::voter::{ChunkVote, Voter};
use crate::{reactor, LaunchConfig};
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::process::ExitStatusExt;
use std::process::{Child, ChildStderr, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};

/// Outcome of one streamed replicated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// The voter hit an unresolvable disagreement — no strict plurality on
    /// some output chunk or on the final exit-status ballot (the §6.3
    /// uninitialized-read signal).
    pub diverged: bool,
    /// Replica indices killed for disagreeing or crashing, in kill order.
    pub killed: Vec<usize>,
    /// The exit status the surviving quorum agreed on; `None` when the run
    /// diverged or no replica survived to vote.
    pub exit_code: Option<i32>,
    /// Total bytes committed to the transport's output buffer.
    pub committed: u64,
    /// High-water mark of bytes buffered inside the session (per-replica
    /// stdout chunk and stderr capture buffers plus the streamed-input
    /// window) — bounded by `(2 × replicas + 1) × chunk` by construction.
    pub peak_buffered: usize,
    /// The quorum-agreed standard error (first ≤ chunk bytes — the same
    /// chunk discipline as stdout voting). After the streams end the
    /// replicas' captures are voted as a ballot: a minority stderr loses
    /// its replica its vote, and no strict plurality means the run
    /// [`diverged`](Self::diverged). Empty when the run diverged or no
    /// replica survived.
    pub stderr: Vec<u8>,
    /// Bytes of the winning replica's stderr beyond the chunk capture cap.
    /// They were read and discarded — never left in the pipe, so a chatty
    /// replica cannot block on stderr backpressure.
    pub stderr_dropped: u64,
}

/// How a session's broadcast input arrives.
#[derive(Debug)]
pub enum SessionInput {
    /// The whole input is already in memory; replicas consume it at their
    /// own pace via per-replica offsets, with no further copies. The buffer
    /// is caller memory and does not count toward the session's bound.
    Buffer(Vec<u8>),
    /// The transport pushes ≤ chunk windows via [`Session::accept_input`]
    /// whenever [`Session::wants_input`] allows; the window is session
    /// memory and counts toward the `(2 × replicas + 1) × chunk` bound.
    Streamed,
}

/// What one of a session's descriptors is for; the token a transport maps
/// into its own reactor token space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionIo {
    /// Replica `i`'s stdout (read side).
    Out(usize),
    /// Replica `i`'s stderr (read side, capture + drain).
    Err(usize),
    /// Replica `i`'s stdin (write side).
    In(usize),
}

/// What [`Session::pump`] left the stream in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Barriers remain; keep servicing I/O.
    Streaming,
    /// Every live stream has resolved (agreement, divergence, or total
    /// crash); call [`Session::finalize`] for the closing ballots.
    Drained,
}

/// Per-replica session state.
struct Replica {
    child: Child,
    /// `None` once closed (input fully delivered, broken pipe, or killed).
    stdin: Option<ChildStdin>,
    /// `None` once the replica's output stream ended.
    stdout: Option<ChildStdout>,
    /// `None` once the replica's stderr ended (or it was killed).
    stderr: Option<ChildStderr>,
    /// The chunk being assembled for the next barrier (≤ chunk bytes).
    chunk: Vec<u8>,
    /// Captured stderr: the first ≤ chunk bytes this replica wrote.
    err_buf: Vec<u8>,
    /// Stderr bytes beyond the capture cap, drained and discarded.
    err_dropped: u64,
    /// The output stream has ended; a partial `chunk` is its last ballot.
    eof: bool,
    /// Absolute input offset this replica has consumed up to.
    in_pos: u64,
    /// Exit status once reaped.
    status: Option<ExitStatus>,
}

/// The broadcast-input window: `win` holds bytes `[base, base + win.len())`
/// of the overall input stream.
struct Window {
    win: Vec<u8>,
    base: u64,
    eof: bool,
    /// Whether `win` is session memory (streamed mode) or a caller-provided
    /// buffer that does not count toward the session's memory bound.
    engine_owned: bool,
}

impl Window {
    /// Absolute offset one past the last byte currently available.
    fn end(&self) -> u64 {
        self.base + self.win.len() as u64
    }
}

/// Best-effort `SIGKILL`; failure (e.g. already reaped) is fine.
fn sigkill(child: &Child) {
    // SAFETY: plain kill(2) on the child's pid; the Child handle keeps the
    // pid from being reaped (and thus reused) until we wait() on it.
    unsafe {
        let _ = libc::kill(child.id() as libc::pid_t, libc::SIGKILL);
    }
}

/// One voted replica session (see the module docs for the protocol).
pub struct Session {
    reps: Vec<Replica>,
    seeds: Vec<u64>,
    input: Window,
    voter: Voter,
    chunk: usize,
    /// Reusable read buffer (one chunk); transient work space, not counted
    /// toward `peak_buffered` (which tracks only bytes *retained* between
    /// reactor rounds, as the pre-refactor engine did with its stack
    /// buffers).
    scratch: Vec<u8>,
    committed: u64,
    peak_buffered: usize,
    diverged: bool,
    drained: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("replicas", &self.reps.len())
            .field("chunk", &self.chunk)
            .field("committed", &self.committed)
            .field("drained", &self.drained)
            .field("diverged", &self.diverged)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Spawns `seeds.len()` replicas of `config.command` (each seeded via
    /// `DIEHARD_SEED`, stdio piped and non-blocking) and readies the
    /// barrier machinery. `config.input` is ignored — the input source is
    /// the explicit `input` argument.
    ///
    /// # Errors
    ///
    /// Propagates spawn and `fcntl(2)` failures; anything spawned before
    /// the failure is killed and reaped.
    pub fn spawn(config: &LaunchConfig, seeds: &[u64], input: SessionInput) -> io::Result<Self> {
        let chunk = config.validated_chunk()?;
        let mut reps: Vec<Replica> = Vec::with_capacity(seeds.len());
        // Kill-and-reap anything spawned so far if setup fails partway.
        let abort = |reps: &mut Vec<Replica>, e: io::Error| -> io::Error {
            for r in reps.iter_mut() {
                sigkill(&r.child);
                let _ = r.child.wait();
            }
            e
        };
        for &seed in seeds {
            let mut cmd = Command::new(&config.command[0]);
            cmd.args(&config.command[1..])
                .env("DIEHARD_SEED", seed.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if let Some(ref lib) = config.preload {
                cmd.env("LD_PRELOAD", lib);
            }
            let mut child = match cmd.spawn() {
                Ok(c) => c,
                Err(e) => return Err(abort(&mut reps, e)),
            };
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = child.stdout.take().expect("piped stdout");
            let stderr = child.stderr.take().expect("piped stderr");
            let nb = reactor::set_nonblocking(stdin.as_raw_fd())
                .and_then(|()| reactor::set_nonblocking(stdout.as_raw_fd()))
                .and_then(|()| reactor::set_nonblocking(stderr.as_raw_fd()));
            let rep = Replica {
                child,
                stdin: Some(stdin),
                stdout: Some(stdout),
                stderr: Some(stderr),
                chunk: Vec::with_capacity(chunk),
                err_buf: Vec::new(),
                err_dropped: 0,
                eof: false,
                in_pos: 0,
                status: None,
            };
            if let Err(e) = nb {
                sigkill(&rep.child);
                reps.push(rep); // abort() reaps it with the others
                return Err(abort(&mut reps, e));
            }
            reps.push(rep);
        }
        let input = match input {
            SessionInput::Buffer(data) => Window {
                win: data,
                base: 0,
                eof: true,
                engine_owned: false,
            },
            SessionInput::Streamed => Window {
                win: Vec::with_capacity(chunk),
                base: 0,
                eof: false,
                engine_owned: true,
            },
        };
        let n = reps.len();
        Ok(Self {
            reps,
            seeds: seeds.to_vec(),
            input,
            voter: Voter::new(n),
            chunk,
            scratch: vec![0u8; chunk],
            committed: 0,
            peak_buffered: 0,
            diverged: false,
            drained: false,
        })
    }

    /// The barrier chunk size this session votes at.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The per-replica seeds this session's children were spawned with (in
    /// replica-index order). Pooling is required to be invisible to seed
    /// assignment; transports surface this so tests can pin it.
    #[must_use]
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Converts a freshly spawned streamed-mode session to buffer-mode
    /// input, exactly as if it had been spawned with
    /// [`SessionInput::Buffer`]: the whole input is caller memory (not
    /// counted toward the session's bound) and EOF is already known. Used
    /// when a pre-spawned (pooled) set — always parked in streamed mode —
    /// is handed to a buffered workload.
    ///
    /// Only meaningful while the streamed window is untouched; a window
    /// that has already accepted bytes keeps its streaming discipline
    /// (debug builds assert).
    pub fn adopt_buffer_input(&mut self, data: Vec<u8>) {
        debug_assert!(
            self.input.engine_owned && self.input.base == 0 && self.input.win.is_empty(),
            "adopt_buffer_input on a session that already streamed input"
        );
        self.input = Window {
            win: data,
            base: 0,
            eof: true,
            engine_owned: false,
        };
    }

    /// Declares the descriptors a *parked* (pre-spawned, not yet handed
    /// out) session should be watched on while idle: each replica's
    /// stdout. Readiness before handoff is either a death (`POLLHUP` when
    /// the replica exits and its pipe write end closes) or early output —
    /// the pool decides which by checking
    /// [`any_member_exited`](Self::any_member_exited).
    pub fn park_interest(&self, mut register: impl FnMut(RawFd)) {
        for r in &self.reps {
            if let Some(ref out) = r.stdout {
                register(out.as_raw_fd());
            }
        }
    }

    /// Non-blocking check whether any replica has already exited
    /// (`try_wait` each child, recording statuses). A pooled set where any
    /// member died before handoff is useless — the vote would start a
    /// replica down — so the pool reaps such sets instead of handing them
    /// out.
    pub fn any_member_exited(&mut self) -> bool {
        let mut exited = false;
        for r in &mut self.reps {
            if r.status.is_none() {
                if let Ok(Some(status)) = r.child.try_wait() {
                    r.status = Some(status);
                }
            }
            exited |= r.status.is_some();
        }
        exited
    }

    /// Ready for the barrier: a full chunk, or the stream has ended (a
    /// partial/empty final chunk is still a ballot).
    fn ready(&self, i: usize) -> bool {
        self.reps[i].eof || self.reps[i].chunk.len() >= self.chunk
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.reps.len())
            .filter(|&i| self.voter.is_alive(i))
            .collect()
    }

    /// Updates the buffered-bytes high-water mark.
    fn note_buffered(&mut self) {
        let win = if self.input.engine_owned {
            self.input.win.len()
        } else {
            0 // a caller-provided buffer is not session memory
        };
        let cur = self
            .reps
            .iter()
            .map(|r| r.chunk.len() + r.err_buf.len())
            .sum::<usize>()
            + win;
        self.peak_buffered = self.peak_buffered.max(cur);
    }

    /// SIGKILLs replicas the voter just condemned and closes their pipes.
    fn enforce_kills(&mut self, already_killed: usize) {
        for idx in self.voter.killed().into_iter().skip(already_killed) {
            let r = &mut self.reps[idx];
            sigkill(&r.child);
            r.stdin = None;
            r.stdout = None;
            r.stderr = None;
            r.chunk.clear();
            r.eof = true;
        }
    }

    /// SIGKILLs every not-yet-reaped replica (divergence or abort
    /// teardown).
    fn kill_all_processes(&mut self) {
        for r in &mut self.reps {
            if r.status.is_none() {
                sigkill(&r.child);
            }
            r.stdin = None;
            r.stdout = None;
            r.stderr = None;
        }
    }

    /// Closes the stdin of replicas that have consumed all input, so they
    /// see EOF.
    fn close_finished_stdins(&mut self) {
        if !self.input.eof {
            return;
        }
        let end = self.input.end();
        for r in &mut self.reps {
            if r.stdin.is_some() && r.in_pos >= end {
                r.stdin = None;
            }
        }
    }

    /// Whether the transport should supply the next input window: streamed
    /// mode only, not yet EOF, and every replica still consuming input has
    /// caught up with the current window (keeping the window, and thus
    /// memory, bounded).
    #[must_use]
    pub fn wants_input(&self) -> bool {
        if !self.input.engine_owned || self.input.eof {
            return false;
        }
        let end = self.input.end();
        let mut any_consumer = false;
        for r in &self.reps {
            if r.stdin.is_some() {
                any_consumer = true;
                if r.in_pos < end {
                    return false;
                }
            }
        }
        any_consumer
    }

    /// Slides the input window forward to `bytes` (≤ chunk recommended —
    /// the window is the per-session input memory bound). Only valid while
    /// [`wants_input`](Self::wants_input) is true.
    pub fn accept_input(&mut self, bytes: &[u8]) {
        debug_assert!(self.wants_input(), "window still has unconsumed bytes");
        self.input.base += self.input.win.len() as u64;
        self.input.win.clear();
        self.input.win.extend_from_slice(bytes);
        self.note_buffered();
    }

    /// Opportunistically writes pending window bytes to every replica
    /// stdin that will take them — the pipes are non-blocking, so a full
    /// one is simply left for its next `POLLOUT` round. Transports call
    /// this right after sliding the window so freshly-arrived input
    /// reaches the replicas without spending a whole poll round on a
    /// writability report for an empty pipe (on the warm-pool fast path
    /// that round is a measurable share of the connection latency).
    pub fn flush_input(&mut self) {
        for i in 0..self.reps.len() {
            if self.reps[i].stdin.is_some() && self.reps[i].in_pos < self.input.end() {
                self.write_stdin(i);
            }
        }
        // And retire whatever just finished: when the flush delivered the
        // final bytes of an ended input, closing the pipe now means the
        // replica wakes once to find data *and* EOF, instead of waking
        // again a poll round later just to learn the stream ended.
        self.close_finished_stdins();
    }

    /// Marks the broadcast input as ended; replicas see EOF on their stdin
    /// once they drain what remains.
    pub fn accept_input_eof(&mut self) {
        self.input.base += self.input.win.len() as u64;
        self.input.win.clear();
        self.input.eof = true;
    }

    /// Declares every descriptor that can make progress this round,
    /// notably *excluding* stdouts whose chunk is already full — that is
    /// the barrier backpressure (the kernel pipe throttles the replica
    /// while slower siblings catch up).
    pub fn register_interest(&self, mut register: impl FnMut(RawFd, libc::c_short, SessionIo)) {
        for (i, r) in self.reps.iter().enumerate() {
            if let Some(ref out) = r.stdout {
                if self.voter.is_alive(i) && r.chunk.len() < self.chunk {
                    register(out.as_raw_fd(), libc::POLLIN, SessionIo::Out(i));
                }
            }
            if let Some(ref err) = r.stderr {
                // Always drain stderr — unlike stdout there is deliberately
                // no backpressure: a full capture buffer switches to
                // read-and-discard rather than letting the pipe fill.
                register(err.as_raw_fd(), libc::POLLIN, SessionIo::Err(i));
            }
            if let Some(ref sin) = r.stdin {
                if r.in_pos < self.input.end() {
                    register(sin.as_raw_fd(), libc::POLLOUT, SessionIo::In(i));
                }
            }
        }
    }

    /// Dispatches one readiness event. `POLLERR`/`POLLHUP` need no special
    /// casing — the read/write sees the EOF or `EPIPE` and retires the
    /// descriptor.
    pub fn service(&mut self, io: SessionIo) {
        match io {
            SessionIo::Out(i) => self.read_stdout(i),
            SessionIo::Err(i) => self.read_stderr(i),
            SessionIo::In(i) => self.write_stdin(i),
        }
    }

    /// Drains replica `i`'s stdout into its chunk buffer (≤ chunk).
    fn read_stdout(&mut self, i: usize) {
        let chunk = self.chunk;
        let buf = &mut self.scratch;
        let r = &mut self.reps[i];
        let Some(out) = r.stdout.as_mut() else { return };
        let mut ended = false;
        while r.chunk.len() < chunk {
            let want = chunk - r.chunk.len();
            match out.read(&mut buf[..want]) {
                Ok(0) => {
                    ended = true;
                    break;
                }
                Ok(n) => r.chunk.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    ended = true;
                    break;
                }
            }
        }
        if ended {
            r.stdout = None;
            r.eof = true;
        }
        self.note_buffered();
    }

    /// Drains replica `i`'s stderr. The capture keeps the first ≤ chunk
    /// bytes (the same chunk discipline as stdout voting); everything
    /// beyond the cap is still *read* — and discarded — so a chatty replica
    /// can never block on a full stderr pipe and stall its own exit.
    fn read_stderr(&mut self, i: usize) {
        let chunk = self.chunk;
        let buf = &mut self.scratch;
        let r = &mut self.reps[i];
        let Some(err) = r.stderr.as_mut() else { return };
        loop {
            match err.read(&mut buf[..]) {
                Ok(0) => {
                    r.stderr = None;
                    break;
                }
                Ok(n) => {
                    let keep = (chunk.saturating_sub(r.err_buf.len())).min(n);
                    r.err_buf.extend_from_slice(&buf[..keep]);
                    r.err_dropped += (n - keep) as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    r.stderr = None;
                    break;
                }
            }
        }
        self.note_buffered();
    }

    /// Pushes pending window bytes into replica `i`'s stdin.
    fn write_stdin(&mut self, i: usize) {
        let base = self.input.base;
        let r = &mut self.reps[i];
        loop {
            let Some(sin) = r.stdin.as_mut() else { return };
            let off = (r.in_pos - base) as usize;
            if off >= self.input.win.len() {
                return;
            }
            match sin.write(&self.input.win[off..]) {
                Ok(0) => {
                    r.stdin = None; // no progress possible: give up on it
                    return;
                }
                Ok(n) => r.in_pos += n as u64,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EPIPE from a dead/closed replica; its fate is the
                    // stream vote's business, not the broadcaster's.
                    r.stdin = None;
                    return;
                }
            }
        }
    }

    /// Resolves every barrier that is already satisfied (several in a row
    /// when all streams have ended), appending quorum bytes to `out` and
    /// SIGKILLing outvoted replicas on the spot. The transport applies
    /// backpressure by *not* calling this while its own output buffer is
    /// full — unpumped chunks stop being polled, and the kernel pipes
    /// throttle the replicas.
    ///
    /// Also retires the stdins of replicas that have consumed all input.
    pub fn pump(&mut self, out: &mut Vec<u8>) -> Phase {
        while !self.drained {
            let live = self.live_indices();
            if live.is_empty() {
                self.drained = true;
                break;
            }
            if !live.iter().all(|&i| self.ready(i)) {
                break;
            }
            let ballots: Vec<Option<&[u8]>> = self
                .reps
                .iter()
                .map(|r| {
                    if r.chunk.is_empty() {
                        None // ended stream (dead replicas are ignored anyway)
                    } else {
                        Some(r.chunk.as_slice())
                    }
                })
                .collect();
            let killed_before = self.voter.killed().len();
            match self.voter.vote(&ballots) {
                ChunkVote::Commit(bytes) => {
                    out.extend_from_slice(&bytes);
                    self.committed += bytes.len() as u64;
                    self.enforce_kills(killed_before);
                    for i in self.live_indices() {
                        self.reps[i].chunk.clear();
                    }
                }
                ChunkVote::Divergence => {
                    self.diverged = true;
                    self.kill_all_processes();
                    self.drained = true;
                }
                ChunkVote::AllDone => {
                    self.enforce_kills(killed_before);
                    self.drained = true;
                }
            }
        }
        self.close_finished_stdins();
        if self.drained {
            Phase::Drained
        } else {
            Phase::Streaming
        }
    }

    /// Whether [`pump`](Self::pump) has reported [`Phase::Drained`].
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.drained
    }

    /// Whether the stream vote hit an unresolvable divergence.
    #[must_use]
    pub fn has_diverged(&self) -> bool {
        self.diverged
    }

    /// The endgame after [`Phase::Drained`]: closes the remaining stream
    /// pipes, reaps every replica (stderr drained throughout so a replica
    /// blocked on diagnostics can exit), demotes signal deaths to crashes,
    /// then votes the stderr and exit-status ballots. Blocks until every
    /// replica is reaped — on the agreement path they have already ended
    /// their streams, and on the divergence/abort path they were SIGKILLed.
    pub fn finalize(&mut self) -> StreamOutcome {
        // Close stdin/stdout first so replicas blocked on either see
        // EOF/EPIPE, then reap everyone — draining stderr throughout.
        // Stderr must stay open and drained until each replica exits:
        // closing it would SIGPIPE a chatty replica into a spurious
        // "crash", and merely ignoring it would let a >pipe-capacity burst
        // of diagnostics block the replica's exit forever. (A replica that
        // closed stdout but never exits still stalls the run — by design:
        // its exit status is its final ballot.)
        for r in &mut self.reps {
            r.stdin = None;
            r.stdout = None;
        }
        self.reap_draining_stderr();

        // Signal deaths are crashes: remove them from the live set (§5.2
        // "when a replica dies, DieHard decrements the number of currently
        // live replicas"). SIGKILLed losers are already out.
        let n = self.reps.len();
        let mut codes = vec![[0u8; 4]; n];
        for (i, code) in codes.iter_mut().enumerate() {
            if !self.voter.is_alive(i) {
                continue;
            }
            match self.reps[i].status {
                Some(st) if st.signal().is_none() => {
                    *code = st.code().unwrap_or(0).to_le_bytes();
                }
                _ => self.voter.kill(i),
            }
        }

        // Stderr ballot: each survivor's complete captured diagnostics.
        // A memory error that only corrupts what a replica *reports* (an
        // assertion message, a differing warning) is a divergence every bit
        // as much as corrupted stdout; a minority stderr loses its replica
        // its vote before the exit ballot below. Capture truncation is
        // deterministic (same cap per replica), so identical diagnostics
        // truncate identically and still agree.
        let mut diverged = self.diverged;
        if !diverged && !self.live_indices().is_empty() {
            let ballots: Vec<Option<&[u8]>> = self
                .reps
                .iter()
                .map(|r| Some(r.err_buf.as_slice()))
                .collect();
            if matches!(self.voter.vote(&ballots), ChunkVote::Divergence) {
                diverged = true;
            }
        }

        // Final ballot: the exit status itself. A command that legitimately
        // exits nonzero in every replica (grep with no matches) agrees with
        // itself and its status is forwarded, not treated as a crash.
        let mut exit_code = None;
        if !diverged && !self.live_indices().is_empty() {
            let ballots: Vec<Option<&[u8]>> = codes.iter().map(|c| Some(&c[..])).collect();
            match self.voter.vote(&ballots) {
                ChunkVote::Commit(bytes) => {
                    let raw: [u8; 4] = bytes[..4].try_into().expect("4-byte exit ballot");
                    exit_code = Some(i32::from_le_bytes(raw));
                }
                ChunkVote::Divergence => diverged = true,
                ChunkVote::AllDone => {}
            }
        }

        // Forward the winning replica's captured stderr: after the stderr
        // ballot, every member of the surviving quorum carries the *agreed*
        // diagnostics (the lowest live index is deterministic). A diverged
        // or fully-crashed run has no winner and forwards nothing.
        let (stderr, stderr_dropped) = if diverged {
            (Vec::new(), 0)
        } else {
            match (0..self.reps.len()).find(|&i| self.voter.is_alive(i)) {
                Some(i) => (
                    core::mem::take(&mut self.reps[i].err_buf),
                    self.reps[i].err_dropped,
                ),
                None => (Vec::new(), 0),
            }
        };
        self.diverged = diverged;

        StreamOutcome {
            diverged,
            killed: self.voter.killed(),
            exit_code,
            committed: self.committed,
            peak_buffered: self.peak_buffered,
            stderr,
            stderr_dropped,
        }
    }

    /// Abandons the session (the transport's client vanished): SIGKILLs and
    /// reaps every replica without running the closing ballots. Fast by
    /// construction — nothing survives the SIGKILL.
    pub fn abort(&mut self) {
        self.kill_all_processes();
        self.drained = true;
        self.shutdown();
    }

    /// Reaps every replica while keeping its stderr drained, so a replica
    /// blocked writing diagnostics can make progress and exit. Leaves every
    /// `status` populated and every stderr handle closed.
    fn reap_draining_stderr(&mut self) {
        loop {
            let mut unreaped = false;
            for r in &mut self.reps {
                if r.status.is_none() {
                    match r.child.try_wait() {
                        Ok(Some(status)) => r.status = Some(status),
                        Ok(None) => unreaped = true,
                        Err(_) => r.status = r.child.wait().ok(),
                    }
                }
            }
            for i in 0..self.reps.len() {
                self.read_stderr(i);
            }
            if !unreaped {
                break;
            }
            let mut fds: Vec<libc::pollfd> = self
                .reps
                .iter()
                .filter(|r| r.status.is_none())
                .filter_map(|r| r.stderr.as_ref())
                .map(|err| libc::pollfd {
                    fd: err.as_raw_fd(),
                    events: libc::POLLIN,
                    revents: 0,
                })
                .collect();
            if fds.is_empty() {
                // Nothing left to drain for the stragglers: block on them
                // directly (pre-stderr-capture behavior).
                for r in &mut self.reps {
                    if r.status.is_none() {
                        r.status = r.child.wait().ok();
                    }
                }
            } else {
                // Sleep until a straggler writes or exits (its stderr EOF
                // wakes us); the timeout is a backstop for a grandchild
                // inheriting the pipe and outliving the replica.
                // SAFETY: fds is a live, correctly-sized pollfd array.
                unsafe { libc::poll(fds.as_mut_ptr(), fds.len() as libc::nfds_t, 200) };
            }
        }
        // Final drain: the pipes may still hold bytes written before exit.
        for i in 0..self.reps.len() {
            self.read_stderr(i);
        }
        for r in &mut self.reps {
            r.stderr = None;
        }
    }

    /// Final teardown: kill and reap anything still unreaped (the error
    /// path — the success path has already waited on every replica).
    pub fn shutdown(&mut self) {
        for r in &mut self.reps {
            if r.status.is_none() {
                sigkill(&r.child);
                r.stdin = None;
                r.stdout = None;
                r.stderr = None;
                r.status = r.child.wait().ok();
            }
        }
    }
}

impl Drop for Session {
    /// Dropping a session never leaks replica processes: anything unreaped
    /// is killed and waited on. The orderly paths (finalize/abort) have
    /// already reaped everything, making this a no-op.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Validates explicit seeds or draws fresh entropy (the paper seeds each
/// replica from `/dev/urandom`).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] when `config.seeds` is non-empty
/// but its length differs from `config.replicas`.
pub(crate) fn resolve_seeds(config: &LaunchConfig) -> io::Result<Vec<u64>> {
    use diehard_core::rng::{entropy_seed, splitmix};
    if config.seeds.is_empty() {
        let master = entropy_seed();
        return Ok((0..config.replicas as u64)
            .map(|i| splitmix(master ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect());
    }
    if config.seeds.len() != config.replicas {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{} seeds for {} replicas (provide one per replica or none)",
                config.seeds.len(),
                config.replicas
            ),
        ));
    }
    Ok(config.seeds.clone())
}
