//! The infinite-heap oracle (§3).
//!
//! "In such a system, the heap area is infinitely large, so there is no risk
//! of heap exhaustion. Objects are never deallocated, and all objects are
//! allocated infinitely far apart from each other."
//!
//! [`InfiniteHeap`] realizes this over the sparse arena: every object is
//! placed a megabyte away from its neighbours, frees are recorded but
//! ignored, and nothing is ever reused. Because a program "cannot tell
//! whether it is running with an ordinary heap implementation or an infinite
//! heap", executing a workload here yields the **ground-truth output**: the
//! experiments define a run as *correct* iff its output equals the
//! infinite-heap run's output, which operationalizes the paper's definition
//! of soundness under memory errors.

use crate::arena::PagedArena;
use crate::fault::Fault;
use crate::traits::{Addr, SimAllocator};
use std::collections::BTreeMap;

/// Spacing between consecutive objects: "infinitely far apart", i.e. far
/// beyond any overflow the experiments inject.
pub const OBJECT_SPACING: usize = 1 << 20;

/// Where the first object lands (a spacing's worth of slack below, so
/// underflows are absorbed too).
const FIRST_OBJECT: usize = OBJECT_SPACING;

/// The idealized, unimplementable-in-real-life heap, simulated.
#[derive(Debug)]
pub struct InfiniteHeap {
    arena: PagedArena,
    next: usize,
    sizes: BTreeMap<Addr, usize>,
    freed: u64,
    live_bytes: usize,
}

impl InfiniteHeap {
    /// Creates the oracle heap.
    #[must_use]
    pub fn new() -> Self {
        let mut arena = PagedArena::new(0);
        arena.set_limit(FIRST_OBJECT + OBJECT_SPACING);
        Self {
            arena,
            next: FIRST_OBJECT,
            sizes: BTreeMap::new(),
            freed: 0,
            live_bytes: 0,
        }
    }

    /// Number of frees the heap has (deliberately) ignored.
    #[must_use]
    pub fn ignored_frees(&self) -> u64 {
        self.freed
    }

    /// Number of objects ever allocated.
    #[must_use]
    pub fn objects(&self) -> usize {
        self.sizes.len()
    }
}

impl Default for InfiniteHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl SimAllocator for InfiniteHeap {
    fn name(&self) -> &'static str {
        "infinite-heap"
    }

    fn malloc(&mut self, size: usize, _roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        if size == 0 {
            return Ok(None);
        }
        let addr = self.next;
        // Advance by at least one spacing so overflows land in dead space.
        let stride = size.div_ceil(OBJECT_SPACING).max(1) * OBJECT_SPACING;
        self.next += stride + OBJECT_SPACING;
        // Keep a spacing's worth of accessible slack past the newest object
        // so overflow writes are *absorbed*, never faulting.
        self.arena.set_limit(self.next + OBJECT_SPACING);
        self.sizes.insert(addr, size);
        self.live_bytes += size;
        Ok(Some(addr))
    }

    fn free(&mut self, _addr: Addr) -> Result<(), Fault> {
        // "Objects are never deallocated": frees are ignored.
        self.freed += 1;
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        &self.arena
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        self.sizes.get(&addr).copied()
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_are_far_apart() {
        let mut h = InfiniteHeap::new();
        let a = h.malloc(100, &[]).unwrap().unwrap();
        let b = h.malloc(100, &[]).unwrap().unwrap();
        assert!(b - a >= OBJECT_SPACING, "spacing {}", b - a);
    }

    #[test]
    fn overflows_are_benign() {
        let mut h = InfiniteHeap::new();
        let a = h.malloc(8, &[]).unwrap().unwrap();
        let b = h.malloc(8, &[]).unwrap().unwrap();
        h.memory_mut().write(b, &[0x11; 8]).unwrap();
        // Overflow object `a` by 64 KB: succeeds, hits only dead space.
        h.memory_mut().write(a, &vec![0xFF; 65_536]).unwrap();
        let mut buf = [0u8; 8];
        h.memory().read(b, &mut buf).unwrap();
        assert_eq!(buf, [0x11; 8], "live neighbour untouched");
    }

    #[test]
    fn frees_are_ignored_and_data_survives() {
        let mut h = InfiniteHeap::new();
        let a = h.malloc(32, &[]).unwrap().unwrap();
        h.memory_mut().write(a, &[0x77; 32]).unwrap();
        h.free(a).unwrap();
        h.free(a).unwrap(); // double free: harmless by construction
        assert_eq!(h.ignored_frees(), 2);
        for _ in 0..100 {
            let _ = h.malloc(32, &[]).unwrap();
        }
        let mut buf = [0u8; 32];
        h.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [0x77; 32], "dangling data is immortal");
    }

    #[test]
    fn large_objects_supported() {
        let mut h = InfiniteHeap::new();
        let a = h.malloc(10 << 20, &[]).unwrap().unwrap();
        h.memory_mut().write(a + (10 << 20) - 1, &[1]).unwrap();
        let b = h.malloc(8, &[]).unwrap().unwrap();
        assert!(b > a + (10 << 20), "next object beyond the big one");
    }

    #[test]
    fn usable_size_tracks_requests() {
        let mut h = InfiniteHeap::new();
        let a = h.malloc(123, &[]).unwrap().unwrap();
        assert_eq!(h.usable_size(a), Some(123));
        assert_eq!(h.usable_size(a + 1), None);
        assert_eq!(h.live_bytes(), 123);
    }

    #[test]
    fn zero_alloc_refused() {
        let mut h = InfiniteHeap::new();
        assert_eq!(h.malloc(0, &[]).unwrap(), None);
    }
}
