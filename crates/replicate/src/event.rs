//! The event-driven barrier loop behind [`run_streamed`] (§5.2).
//!
//! The paper's front end "manages output from the replicas by periodically
//! synchronizing at barriers. Whenever all currently-live replicas terminate
//! or fill their output buffers (currently 4K each, the unit of transfer of
//! a pipe), the voter compares the contents of each replica's output
//! buffer." This module is that loop, literally: a `poll(2)` reactor that
//!
//! * broadcasts standard input **incrementally** — a bounded ≤ [`CHUNK`]
//!   window refilled only once every live replica has consumed it, so
//!   arbitrary-length (even infinite) input streams never accumulate;
//! * reads each replica's stdout non-blocking into a per-replica ≤ [`CHUNK`]
//!   buffer, and stops polling a replica the moment its buffer is full —
//!   the kernel pipe provides backpressure while slower replicas catch up;
//! * invokes the [`Voter`] the instant every live replica has chunk *i*
//!   (the real barrier — not after the streams end), commits the quorum
//!   chunk to the caller's sink immediately, and `SIGKILL`s outvoted
//!   replicas on the spot ("a replica that has generated anomalous output
//!   is no longer useful");
//! * captures each replica's stderr into a bounded (≤ [`CHUNK`]) buffer —
//!   draining past the cap so a chatty replica never blocks;
//! * after the streams end, reaps every replica (stderr still drained
//!   throughout, so a replica blocked on diagnostics can exit), treats
//!   **signal deaths** as crashes (removed from the live set), then runs
//!   two more ballots over the survivors: the captured **stderr** (a
//!   corrupted diagnostic stream is a divergence like any other, and the
//!   agreed capture is forwarded to the launcher) and finally the **exit
//!   statuses**, so the launcher can forward the agreed code.
//!
//! Peak voter memory is `O(replicas × CHUNK)` regardless of output length;
//! [`StreamOutcome::peak_buffered`] reports the observed high-water mark so
//! tests can assert the bound.
//!
//! Two deliberate limits, both inherited from the paper's design: a replica
//! that trickles a partial chunk without closing its stream delays the
//! barrier until the chunk fills or the stream ends (§5.2 votes on *full*
//! pipe buffers), and the bounded input window means the slowest consumer
//! gates how fast input is replayed to the others (beyond the kernel's own
//! per-pipe buffering).

use crate::voter::{ChunkVote, Voter};
use crate::{LaunchConfig, CHUNK};
use diehard_core::rng::{entropy_seed, splitmix};
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::process::ExitStatusExt;
use std::process::{Child, ChildStderr, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};

/// Where the broadcast standard input comes from.
#[derive(Debug)]
pub enum InputSource {
    /// The whole input is already in memory ([`crate::run_replicated`]'s
    /// path); replicas consume it at their own pace via per-replica
    /// offsets, with no further copies.
    Buffer(Vec<u8>),
    /// Stream incrementally from this descriptor (the launcher's stdin).
    /// Its file-status flags are left untouched — in particular it is NOT
    /// switched to `O_NONBLOCK`, which lives on the open file description
    /// and would leak to any stdout/stderr sharing it (a terminal). The
    /// reactor only reads it once `poll(2)` reports it readable.
    Fd(RawFd),
}

/// Outcome of one streamed replicated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// The voter hit an unresolvable disagreement — no strict plurality on
    /// some output chunk or on the final exit-status ballot (the §6.3
    /// uninitialized-read signal).
    pub diverged: bool,
    /// Replica indices killed for disagreeing or crashing, in kill order.
    pub killed: Vec<usize>,
    /// The exit status the surviving quorum agreed on; `None` when the run
    /// diverged or no replica survived to vote.
    pub exit_code: Option<i32>,
    /// Total bytes committed to the sink.
    pub committed: u64,
    /// High-water mark of bytes buffered inside the engine (per-replica
    /// stdout chunk and stderr capture buffers plus the streamed-input
    /// window) — bounded by `(2 × replicas + 1) × CHUNK` by construction.
    pub peak_buffered: usize,
    /// The quorum-agreed standard error (first ≤ [`CHUNK`] bytes — the
    /// same chunk discipline as stdout voting). After the streams end the
    /// replicas' captures are voted as a ballot: a minority stderr loses
    /// its replica its vote, and no strict plurality means the run
    /// [`diverged`](Self::diverged). Empty when the run diverged or no
    /// replica survived.
    pub stderr: Vec<u8>,
    /// Bytes of the winning replica's stderr beyond the [`CHUNK`] capture
    /// cap. They were read and discarded — never left in the pipe, so a
    /// chatty replica cannot block on stderr backpressure.
    pub stderr_dropped: u64,
}

/// Runs `config.command` in `config.replicas` differently-seeded replicas,
/// broadcasting `input` to each and committing voted output chunks to
/// `sink` as each 4 KB barrier resolves.
///
/// `config.input` is ignored here — the input source is explicit so the
/// launcher can hand over its stdin descriptor without buffering it.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] when `config.seeds` is non-empty
/// but its length differs from `config.replicas`; otherwise propagates
/// process-spawn, `poll(2)`, and sink-write failures. Replica crashes and
/// disagreements are **not** errors — the voter folds them into the
/// returned [`StreamOutcome`].
pub fn run_streamed(
    config: &LaunchConfig,
    input: InputSource,
    sink: &mut dyn Write,
) -> io::Result<StreamOutcome> {
    let seeds = resolve_seeds(config)?;
    let mut engine = Engine::new(config, &seeds, input)?;
    let result = engine.drive(sink);
    engine.shutdown();
    result
}

/// Validates explicit seeds or draws fresh entropy (the paper seeds each
/// replica from `/dev/urandom`).
fn resolve_seeds(config: &LaunchConfig) -> io::Result<Vec<u64>> {
    if config.seeds.is_empty() {
        let master = entropy_seed();
        return Ok((0..config.replicas as u64)
            .map(|i| splitmix(master ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect());
    }
    if config.seeds.len() != config.replicas {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{} seeds for {} replicas (provide one per replica or none)",
                config.seeds.len(),
                config.replicas
            ),
        ));
    }
    Ok(config.seeds.clone())
}

/// Per-replica reactor state.
struct Replica {
    child: Child,
    /// `None` once closed (input fully delivered, broken pipe, or killed).
    stdin: Option<ChildStdin>,
    /// `None` once the replica's output stream ended.
    stdout: Option<ChildStdout>,
    /// `None` once the replica's stderr ended (or it was killed).
    stderr: Option<ChildStderr>,
    /// The chunk being assembled for the next barrier (≤ [`CHUNK`] bytes).
    chunk: Vec<u8>,
    /// Captured stderr: the first ≤ [`CHUNK`] bytes this replica wrote.
    err_buf: Vec<u8>,
    /// Stderr bytes beyond the capture cap, drained and discarded.
    err_dropped: u64,
    /// The output stream has ended; a partial `chunk` is its last ballot.
    eof: bool,
    /// Absolute input offset this replica has consumed up to.
    in_pos: u64,
    /// Exit status once reaped.
    status: Option<ExitStatus>,
}

impl Replica {
    /// Ready for the barrier: a full chunk, or the stream has ended (a
    /// partial/empty final chunk is still a ballot).
    fn ready(&self) -> bool {
        self.eof || self.chunk.len() >= CHUNK
    }
}

/// The broadcast-input window: `win` holds bytes `[base, base + win.len())`
/// of the overall input stream.
struct Input {
    /// `Some` in streamed mode; `None` when the window *is* the whole input.
    /// The descriptor keeps its original (normally blocking) mode — it is
    /// only ever read right after `poll(2)` reports it readable.
    fd: Option<RawFd>,
    win: Vec<u8>,
    base: u64,
    eof: bool,
}

impl Input {
    /// Absolute offset one past the last byte currently available.
    fn end(&self) -> u64 {
        self.base + self.win.len() as u64
    }
}

/// What a `pollfd` entry refers to.
#[derive(Clone, Copy)]
enum Target {
    /// Replica `i`'s stdout (read side).
    Out(usize),
    /// Replica `i`'s stderr (read side, capture + drain).
    Err(usize),
    /// Replica `i`'s stdin (write side).
    In(usize),
    /// The streamed input source.
    Source,
}

struct Engine {
    reps: Vec<Replica>,
    input: Input,
    voter: Voter,
    committed: u64,
    peak_buffered: usize,
}

/// Switches `fd` to non-blocking, returning the original flags.
fn set_nonblocking(fd: RawFd) -> io::Result<libc::c_int> {
    // SAFETY: fcntl on a descriptor we own; no memory is passed.
    let flags = unsafe { libc::fcntl(fd, libc::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: as above; third argument is the int F_SETFL expects.
    if unsafe { libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(flags)
}

/// Best-effort `SIGKILL`; failure (e.g. already reaped) is fine.
fn sigkill(child: &Child) {
    // SAFETY: plain kill(2) on the child's pid; the Child handle keeps the
    // pid from being reaped (and thus reused) until we wait() on it.
    unsafe {
        let _ = libc::kill(child.id() as libc::pid_t, libc::SIGKILL);
    }
}

impl Engine {
    fn new(config: &LaunchConfig, seeds: &[u64], input: InputSource) -> io::Result<Self> {
        let mut reps: Vec<Replica> = Vec::with_capacity(seeds.len());
        // Kill-and-reap anything spawned so far if setup fails partway.
        let abort = |reps: &mut Vec<Replica>, e: io::Error| -> io::Error {
            for r in reps.iter_mut() {
                sigkill(&r.child);
                let _ = r.child.wait();
            }
            e
        };
        for &seed in seeds {
            let mut cmd = Command::new(&config.command[0]);
            cmd.args(&config.command[1..])
                .env("DIEHARD_SEED", seed.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if let Some(ref lib) = config.preload {
                cmd.env("LD_PRELOAD", lib);
            }
            let mut child = match cmd.spawn() {
                Ok(c) => c,
                Err(e) => return Err(abort(&mut reps, e)),
            };
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = child.stdout.take().expect("piped stdout");
            let stderr = child.stderr.take().expect("piped stderr");
            let nb = set_nonblocking(stdin.as_raw_fd())
                .and_then(|_| set_nonblocking(stdout.as_raw_fd()))
                .and_then(|_| set_nonblocking(stderr.as_raw_fd()).map(|_| ()));
            let mut rep = Replica {
                child,
                stdin: Some(stdin),
                stdout: Some(stdout),
                stderr: Some(stderr),
                chunk: Vec::with_capacity(CHUNK),
                err_buf: Vec::new(),
                err_dropped: 0,
                eof: false,
                in_pos: 0,
                status: None,
            };
            if let Err(e) = nb {
                sigkill(&rep.child);
                let _ = rep.child.wait();
                return Err(abort(&mut reps, e));
            }
            reps.push(rep);
        }
        // NB: the source descriptor's flags are deliberately left alone.
        // O_NONBLOCK lives on the *open file description*, which stdin
        // shares with stdout/stderr when all three are the same terminal —
        // flipping it would make the launcher's own output non-blocking
        // (and leak that state if we die before restoring it). The reactor
        // never needs it: the source is only read after `poll(2)` reports
        // it readable, and a single `read` of whatever is available does
        // not block on pipes, terminals, or regular files.
        let input = match input {
            InputSource::Buffer(data) => Input {
                fd: None,
                win: data,
                base: 0,
                eof: true,
            },
            InputSource::Fd(fd) => Input {
                fd: Some(fd),
                win: Vec::with_capacity(CHUNK),
                base: 0,
                eof: false,
            },
        };
        let n = reps.len();
        Ok(Self {
            reps,
            input,
            voter: Voter::new(n),
            committed: 0,
            peak_buffered: 0,
        })
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.reps.len())
            .filter(|&i| self.voter.is_alive(i))
            .collect()
    }

    /// Updates the buffered-bytes high-water mark.
    fn note_buffered(&mut self) {
        let win = if self.input.fd.is_some() {
            self.input.win.len()
        } else {
            0 // a caller-provided buffer is not engine memory
        };
        let cur = self
            .reps
            .iter()
            .map(|r| r.chunk.len() + r.err_buf.len())
            .sum::<usize>()
            + win;
        self.peak_buffered = self.peak_buffered.max(cur);
    }

    /// SIGKILLs replicas the voter just condemned and closes their pipes.
    fn enforce_kills(&mut self, already_killed: usize) {
        for idx in self.voter.killed().into_iter().skip(already_killed) {
            let r = &mut self.reps[idx];
            sigkill(&r.child);
            r.stdin = None;
            r.stdout = None;
            r.stderr = None;
            r.chunk.clear();
            r.eof = true;
        }
    }

    /// SIGKILLs every not-yet-reaped replica (divergence teardown).
    fn kill_all_processes(&mut self) {
        for r in &mut self.reps {
            if r.status.is_none() {
                sigkill(&r.child);
            }
            r.stdin = None;
            r.stdout = None;
            r.stderr = None;
        }
    }

    /// Closes the stdin of replicas that have consumed all input, so they
    /// see EOF.
    fn close_finished_stdins(&mut self) {
        if !self.input.eof {
            return;
        }
        let end = self.input.end();
        for r in &mut self.reps {
            if r.stdin.is_some() && r.in_pos >= end {
                r.stdin = None;
            }
        }
    }

    /// Whether the streamed source should be polled for a window refill:
    /// only once every replica still consuming input has caught up with the
    /// current window (keeping the window, and thus memory, bounded).
    fn wants_refill(&self) -> bool {
        if self.input.fd.is_none() || self.input.eof {
            return false;
        }
        let end = self.input.end();
        let mut any_consumer = false;
        for r in &self.reps {
            if r.stdin.is_some() {
                any_consumer = true;
                if r.in_pos < end {
                    return false;
                }
            }
        }
        any_consumer
    }

    /// Drains replica `i`'s stdout into its chunk buffer (≤ CHUNK).
    fn read_stdout(&mut self, i: usize) {
        let r = &mut self.reps[i];
        let Some(out) = r.stdout.as_mut() else { return };
        let mut buf = [0u8; CHUNK];
        let mut ended = false;
        while r.chunk.len() < CHUNK {
            let want = CHUNK - r.chunk.len();
            match out.read(&mut buf[..want]) {
                Ok(0) => {
                    ended = true;
                    break;
                }
                Ok(n) => r.chunk.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    ended = true;
                    break;
                }
            }
        }
        if ended {
            r.stdout = None;
            r.eof = true;
        }
        self.note_buffered();
    }

    /// Drains replica `i`'s stderr. The capture keeps the first ≤ [`CHUNK`]
    /// bytes (the same chunk discipline as stdout voting); everything
    /// beyond the cap is still *read* — and discarded — so a chatty replica
    /// can never block on a full stderr pipe and stall its own exit.
    fn read_stderr(&mut self, i: usize) {
        let r = &mut self.reps[i];
        let Some(err) = r.stderr.as_mut() else { return };
        let mut buf = [0u8; CHUNK];
        loop {
            match err.read(&mut buf) {
                Ok(0) => {
                    r.stderr = None;
                    break;
                }
                Ok(n) => {
                    let keep = (CHUNK - r.err_buf.len()).min(n);
                    r.err_buf.extend_from_slice(&buf[..keep]);
                    r.err_dropped += (n - keep) as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    r.stderr = None;
                    break;
                }
            }
        }
        self.note_buffered();
    }

    /// Pushes pending window bytes into replica `i`'s stdin.
    fn write_stdin(&mut self, i: usize) {
        let base = self.input.base;
        let r = &mut self.reps[i];
        loop {
            let Some(sin) = r.stdin.as_mut() else { return };
            let off = (r.in_pos - base) as usize;
            if off >= self.input.win.len() {
                return;
            }
            match sin.write(&self.input.win[off..]) {
                Ok(0) => {
                    r.stdin = None; // no progress possible: give up on it
                    return;
                }
                Ok(n) => r.in_pos += n as u64,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EPIPE from a dead/closed replica; its fate is the
                    // stream vote's business, not the broadcaster's.
                    r.stdin = None;
                    return;
                }
            }
        }
    }

    /// Slides the input window forward by one read from the source.
    fn refill_input(&mut self) {
        let Some(fd) = self.input.fd else { return };
        let mut buf = [0u8; CHUNK];
        loop {
            // SAFETY: reading into a live stack buffer of exactly CHUNK
            // bytes on a descriptor the caller handed us.
            let n = unsafe { libc::read(fd, buf.as_mut_ptr().cast(), CHUNK) };
            if n > 0 {
                self.input.base += self.input.win.len() as u64;
                self.input.win.clear();
                self.input.win.extend_from_slice(&buf[..n as usize]);
                break;
            }
            if n == 0 {
                self.input.base += self.input.win.len() as u64;
                self.input.win.clear();
                self.input.eof = true;
                break;
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                io::ErrorKind::WouldBlock => break,
                io::ErrorKind::Interrupted => continue,
                _ => {
                    // Treat an unreadable source as end-of-input.
                    self.input.base += self.input.win.len() as u64;
                    self.input.win.clear();
                    self.input.eof = true;
                    break;
                }
            }
        }
        self.note_buffered();
    }

    /// One `poll(2)` round: registers exactly the descriptors that can make
    /// progress (notably *excluding* stdouts whose chunk is already full —
    /// that is the barrier backpressure) and dispatches the events.
    fn poll_once(&mut self) -> io::Result<()> {
        let mut fds: Vec<libc::pollfd> = Vec::new();
        let mut map: Vec<Target> = Vec::new();
        for (i, r) in self.reps.iter().enumerate() {
            if let Some(ref out) = r.stdout {
                if self.voter.is_alive(i) && r.chunk.len() < CHUNK {
                    fds.push(libc::pollfd {
                        fd: out.as_raw_fd(),
                        events: libc::POLLIN,
                        revents: 0,
                    });
                    map.push(Target::Out(i));
                }
            }
            if let Some(ref err) = r.stderr {
                // Always drain stderr — unlike stdout there is deliberately
                // no backpressure: a full capture buffer switches to
                // read-and-discard rather than letting the pipe fill.
                fds.push(libc::pollfd {
                    fd: err.as_raw_fd(),
                    events: libc::POLLIN,
                    revents: 0,
                });
                map.push(Target::Err(i));
            }
            if let Some(ref sin) = r.stdin {
                if r.in_pos < self.input.end() {
                    fds.push(libc::pollfd {
                        fd: sin.as_raw_fd(),
                        events: libc::POLLOUT,
                        revents: 0,
                    });
                    map.push(Target::In(i));
                }
            }
        }
        if self.wants_refill() {
            fds.push(libc::pollfd {
                fd: self.input.fd.expect("streamed mode"),
                events: libc::POLLIN,
                revents: 0,
            });
            map.push(Target::Source);
        }
        if fds.is_empty() {
            return Ok(());
        }
        loop {
            // SAFETY: fds is a live, correctly-sized pollfd array.
            let rc = unsafe { libc::poll(fds.as_mut_ptr(), fds.len() as libc::nfds_t, -1) };
            if rc >= 0 {
                break;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
        for (pfd, &target) in fds.iter().zip(&map) {
            if pfd.revents == 0 {
                continue;
            }
            // POLLERR/POLLHUP fall through to the same handlers: the
            // read/write sees the EOF or EPIPE and retires the descriptor.
            match target {
                Target::Out(i) => self.read_stdout(i),
                Target::Err(i) => self.read_stderr(i),
                Target::In(i) => self.write_stdin(i),
                Target::Source => self.refill_input(),
            }
        }
        Ok(())
    }

    /// The reactor: alternate barrier votes and poll rounds until the
    /// streams resolve, then reap and vote exit statuses.
    fn drive(&mut self, sink: &mut dyn Write) -> io::Result<StreamOutcome> {
        let mut diverged = false;
        'run: loop {
            // Resolve every barrier that is already satisfied (several in a
            // row when all streams have ended).
            loop {
                let live = self.live_indices();
                if live.is_empty() {
                    break 'run;
                }
                if !live.iter().all(|&i| self.reps[i].ready()) {
                    break;
                }
                let ballots: Vec<Option<&[u8]>> = self
                    .reps
                    .iter()
                    .map(|r| {
                        if r.chunk.is_empty() {
                            None // ended stream (dead replicas are ignored anyway)
                        } else {
                            Some(r.chunk.as_slice())
                        }
                    })
                    .collect();
                let killed_before = self.voter.killed().len();
                match self.voter.vote(&ballots) {
                    ChunkVote::Commit(bytes) => {
                        sink.write_all(&bytes)?;
                        sink.flush()?;
                        self.committed += bytes.len() as u64;
                        self.enforce_kills(killed_before);
                        for i in self.live_indices() {
                            self.reps[i].chunk.clear();
                        }
                    }
                    ChunkVote::Divergence => {
                        diverged = true;
                        self.kill_all_processes();
                        break 'run;
                    }
                    ChunkVote::AllDone => {
                        self.enforce_kills(killed_before);
                        break 'run;
                    }
                }
            }
            self.close_finished_stdins();
            self.poll_once()?;
        }

        // Close stdin/stdout first so replicas blocked on either see
        // EOF/EPIPE, then reap everyone — draining stderr throughout.
        // Stderr must stay open and drained until each replica exits:
        // closing it would SIGPIPE a chatty replica into a spurious
        // "crash", and merely ignoring it would let a >pipe-capacity burst
        // of diagnostics block the replica's exit forever. (A replica that
        // closed stdout but never exits still stalls the run — by design:
        // its exit status is its final ballot.)
        for r in &mut self.reps {
            r.stdin = None;
            r.stdout = None;
        }
        self.reap_draining_stderr();

        // Signal deaths are crashes: remove them from the live set (§5.2
        // "when a replica dies, DieHard decrements the number of currently
        // live replicas"). SIGKILLed losers are already out.
        let n = self.reps.len();
        let mut codes = vec![[0u8; 4]; n];
        for (i, code) in codes.iter_mut().enumerate() {
            if !self.voter.is_alive(i) {
                continue;
            }
            match self.reps[i].status {
                Some(st) if st.signal().is_none() => {
                    *code = st.code().unwrap_or(0).to_le_bytes();
                }
                _ => self.voter.kill(i),
            }
        }

        // Stderr ballot: each survivor's complete captured diagnostics.
        // A memory error that only corrupts what a replica *reports* (an
        // assertion message, a differing warning) is a divergence every bit
        // as much as corrupted stdout; a minority stderr loses its replica
        // its vote before the exit ballot below. Capture truncation is
        // deterministic (same cap per replica), so identical diagnostics
        // truncate identically and still agree.
        let mut exit_code = None;
        if !diverged && !self.live_indices().is_empty() {
            let ballots: Vec<Option<&[u8]>> = self
                .reps
                .iter()
                .map(|r| Some(r.err_buf.as_slice()))
                .collect();
            if matches!(self.voter.vote(&ballots), ChunkVote::Divergence) {
                diverged = true;
            }
        }

        // Final ballot: the exit status itself. A command that legitimately
        // exits nonzero in every replica (grep with no matches) agrees with
        // itself and its status is forwarded, not treated as a crash.
        if !diverged && !self.live_indices().is_empty() {
            let ballots: Vec<Option<&[u8]>> = codes.iter().map(|c| Some(&c[..])).collect();
            match self.voter.vote(&ballots) {
                ChunkVote::Commit(bytes) => {
                    let raw: [u8; 4] = bytes[..4].try_into().expect("4-byte exit ballot");
                    exit_code = Some(i32::from_le_bytes(raw));
                }
                ChunkVote::Divergence => diverged = true,
                ChunkVote::AllDone => {}
            }
        }

        // Forward the winning replica's captured stderr: after the stderr
        // ballot, every member of the surviving quorum carries the *agreed*
        // diagnostics (the lowest live index is deterministic). A diverged
        // or fully-crashed run has no winner and forwards nothing.
        let (stderr, stderr_dropped) = if diverged {
            (Vec::new(), 0)
        } else {
            match (0..self.reps.len()).find(|&i| self.voter.is_alive(i)) {
                Some(i) => (
                    core::mem::take(&mut self.reps[i].err_buf),
                    self.reps[i].err_dropped,
                ),
                None => (Vec::new(), 0),
            }
        };

        Ok(StreamOutcome {
            diverged,
            killed: self.voter.killed(),
            exit_code,
            committed: self.committed,
            peak_buffered: self.peak_buffered,
            stderr,
            stderr_dropped,
        })
    }

    /// Reaps every replica while keeping its stderr drained, so a replica
    /// blocked writing diagnostics can make progress and exit. Leaves every
    /// `status` populated and every stderr handle closed.
    fn reap_draining_stderr(&mut self) {
        loop {
            let mut unreaped = false;
            for r in &mut self.reps {
                if r.status.is_none() {
                    match r.child.try_wait() {
                        Ok(Some(status)) => r.status = Some(status),
                        Ok(None) => unreaped = true,
                        Err(_) => r.status = r.child.wait().ok(),
                    }
                }
            }
            for i in 0..self.reps.len() {
                self.read_stderr(i);
            }
            if !unreaped {
                break;
            }
            let mut fds: Vec<libc::pollfd> = self
                .reps
                .iter()
                .filter(|r| r.status.is_none())
                .filter_map(|r| r.stderr.as_ref())
                .map(|err| libc::pollfd {
                    fd: err.as_raw_fd(),
                    events: libc::POLLIN,
                    revents: 0,
                })
                .collect();
            if fds.is_empty() {
                // Nothing left to drain for the stragglers: block on them
                // directly (pre-stderr-capture behavior).
                for r in &mut self.reps {
                    if r.status.is_none() {
                        r.status = r.child.wait().ok();
                    }
                }
            } else {
                // Sleep until a straggler writes or exits (its stderr EOF
                // wakes us); the timeout is a backstop for a grandchild
                // inheriting the pipe and outliving the replica.
                // SAFETY: fds is a live, correctly-sized pollfd array.
                unsafe { libc::poll(fds.as_mut_ptr(), fds.len() as libc::nfds_t, 200) };
            }
        }
        // Final drain: the pipes may still hold bytes written before exit.
        for i in 0..self.reps.len() {
            self.read_stderr(i);
        }
        for r in &mut self.reps {
            r.stderr = None;
        }
    }

    /// Final teardown: kill and reap anything still unreaped (the error
    /// path — the success path has already waited on every replica).
    fn shutdown(&mut self) {
        for r in &mut self.reps {
            if r.status.is_none() {
                sigkill(&r.child);
                r.stdin = None;
                r.stdout = None;
                r.stderr = None;
                r.status = r.child.wait().ok();
            }
        }
    }
}
