//! Minimal offline stand-in for the `libc` crate.
//!
//! The build container has no access to crates.io, so this shim declares
//! exactly the libc surface the workspace uses — the virtual-memory and
//! file-descriptor calls behind `diehard_core::global` — against the system
//! C library that every Rust binary on Linux already links. Constants are
//! the Linux (x86_64/aarch64) values. Swap this for the real `libc` crate
//! by editing one line in the workspace `Cargo.toml` when online.

#![no_std]
#![allow(non_camel_case_types)]

/// C `char` (platform-signedness is irrelevant for our byte-wise uses).
pub type c_char = core::ffi::c_char;
/// C `int`.
pub type c_int = core::ffi::c_int;
/// C `long`.
pub type c_long = core::ffi::c_long;
/// C `void` (only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t`.
pub type ssize_t = isize;
/// C `off_t` (64-bit on the Linux targets we build for).
pub type off_t = i64;

/// `open(2)` flag: read-only.
pub const O_RDONLY: c_int = 0;

/// `sysconf(3)` selector for the VM page size (Linux value).
pub const _SC_PAGESIZE: c_int = 30;

/// `mmap(2)` protection: readable.
pub const PROT_READ: c_int = 1;
/// `mmap(2)` protection: writable.
pub const PROT_WRITE: c_int = 2;
/// `mprotect(2)` protection: no access (guard pages).
pub const PROT_NONE: c_int = 0;

/// `mmap(2)` flag: private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// `mmap(2)` flag: anonymous (not file-backed) mapping (Linux value).
pub const MAP_ANONYMOUS: c_int = 0x20;
/// `mmap(2)` flag: don't reserve swap for the mapping (Linux value).
pub const MAP_NORESERVE: c_int = 0x4000;
/// `mmap(2)` error sentinel: `(void *) -1`.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

extern "C" {
    /// `open(2)`.
    pub fn open(path: *const c_char, flags: c_int, ...) -> c_int;
    /// `read(2)`.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// `sysconf(3)`.
    pub fn sysconf(name: c_int) -> c_long;
    /// `getenv(3)`.
    pub fn getenv(name: *const c_char) -> *mut c_char;
    /// `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// `munmap(2)`.
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
    /// `mprotect(2)`.
    pub fn mprotect(addr: *mut c_void, length: size_t, prot: c_int) -> c_int;
}
