//! Allocation-free synchronization primitives for the sharded heap.
//!
//! Two constraints shape everything here. First, these primitives guard an
//! *allocator*: general-purpose mutexes (including `parking_lot`) may lazily
//! allocate per-thread parking state on contention, which would re-enter the
//! allocator mid-operation, so both the lock and the once-cell must never
//! allocate. Second, the sharded heap takes one [`SpinLock`] per size class:
//! critical sections are a handful of bitmap probes, which is exactly the
//! regime where a spinlock with exponential backoff beats a parking mutex.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// A spin-based mutual-exclusion lock.
#[derive(Debug)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T` across threads.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked lock around `value` (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning with exponential backoff until free.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Backoff: brief busy-wait, then yield to the scheduler.
            if spins < 10 {
                for _ in 0..(1 << spins) {
                    core::hint::spin_loop();
                }
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
        SpinGuard { lock: self }
    }

    /// Acquires the lock *without* a guard, for callers that must release
    /// it from a different stack frame — `pthread_atfork` handlers, where
    /// the prepare hook locks and the parent/child hooks unlock. The value
    /// is deliberately not exposed: raw locking exists to *exclude* other
    /// threads across `fork(2)`, not to access the data.
    ///
    /// Pair every call with exactly one [`raw_unlock`](Self::raw_unlock).
    pub fn raw_lock(&self) {
        core::mem::forget(self.lock());
    }

    /// Releases a lock acquired by [`raw_lock`](Self::raw_lock).
    ///
    /// # Safety
    ///
    /// The caller (or, across `fork`, the thread it forked from) must hold
    /// the lock via `raw_lock`; unlocking a lock held through a
    /// [`SpinGuard`] or not held at all breaks mutual exclusion.
    pub unsafe fn raw_unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Acquires the lock only if it is free right now, without spinning.
    ///
    /// The magazine layer uses this for *opportunistic* free-buffer flushes:
    /// when the buffer is only half full a contended shard is left alone
    /// (the flush retries at the next free), and only a completely full
    /// buffer forces a blocking [`lock`](Self::lock).
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard returned by [`SpinLock::lock`]; releases on drop.
#[derive(Debug)]
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// [`OnceCell`] initialization states.
const EMPTY: u8 = 0;
const INITIALIZING: u8 = 1;
const READY: u8 = 2;
const FAILED: u8 = 3;

/// A once-initialized cell with lock-free reads, usable in statics.
///
/// After the single successful initialization, [`get`](Self::get) is one
/// `Acquire` load plus a pointer deref — this is what makes the global
/// allocator's header (heap base, page size, config) readable on every
/// `malloc`/`free` without touching any lock. Initialization is fallible:
/// a failed attempt parks the cell in a terminal failed state and every
/// later access returns `None` (the allocator then reports out-of-memory
/// rather than retrying `mmap` storms forever).
#[derive(Debug)]
pub struct OnceCell<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: `&OnceCell<T>` hands out only `&T` after the release/acquire
// handshake on `state`, so sharing requires `T: Send + Sync`; moving the
// cell moves the `T` it may contain.
unsafe impl<T: Send + Sync> Sync for OnceCell<T> {}
unsafe impl<T: Send> Send for OnceCell<T> {}

impl<T> OnceCell<T> {
    /// An empty cell (usable in `static` items).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// The initialized value, or `None` when initialization has not run,
    /// is in flight on another thread, or failed.
    #[must_use]
    #[inline]
    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == READY {
            // SAFETY: READY is published with Release after the value was
            // fully written and is never unset, so the acquire load above
            // makes the initialized value visible.
            Some(unsafe { (*self.value.get()).assume_init_ref() })
        } else {
            None
        }
    }

    /// Returns the value, running `init` to produce it on first call.
    ///
    /// Exactly one thread runs `init`; racing threads spin until the winner
    /// publishes. When `init` returns `None` the cell is left in a terminal
    /// failed state and this (and every later) call returns `None`.
    pub fn get_or_try_init(&self, init: impl FnOnce() -> Option<T>) -> Option<&T> {
        loop {
            match self.state.compare_exchange(
                EMPTY,
                INITIALIZING,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // We own initialization.
                    return match init() {
                        Some(value) => {
                            // SAFETY: state is INITIALIZING, so no other
                            // thread reads or writes the slot.
                            unsafe { (*self.value.get()).write(value) };
                            self.state.store(READY, Ordering::Release);
                            self.get()
                        }
                        None => {
                            self.state.store(FAILED, Ordering::Release);
                            None
                        }
                    };
                }
                Err(READY) => return self.get(),
                Err(FAILED) => return None,
                Err(_) => {
                    // Another thread is initializing; the allocator cannot
                    // park (parking may allocate), so spin politely.
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl<T> Drop for OnceCell<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == READY {
            // SAFETY: READY guarantees the slot holds an initialized value,
            // and `&mut self` guarantees no outstanding references.
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

impl<T> Default for OnceCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increment_across_threads() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(1u32);
        let g = lock.try_lock().expect("uncontended");
        assert!(lock.try_lock().is_none(), "held lock must not be re-taken");
        drop(g);
        assert_eq!(*lock.try_lock().expect("released"), 1);
    }

    #[test]
    fn raw_lock_excludes_and_raw_unlock_releases() {
        let lock = SpinLock::new(0u32);
        lock.raw_lock();
        assert!(lock.try_lock().is_none(), "raw_lock must hold the lock");
        // SAFETY: held via raw_lock on the line above.
        unsafe { lock.raw_unlock() };
        assert_eq!(*lock.try_lock().expect("raw_unlock released"), 0);
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = SpinLock::new(5);
        {
            let mut g = lock.lock();
            *g = 6;
        }
        assert_eq!(*lock.lock(), 6);
    }

    #[test]
    fn once_cell_initializes_exactly_once() {
        let cell = Arc::new(OnceCell::new());
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cell = Arc::clone(&cell);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                *cell
                    .get_or_try_init(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                        Some(t)
                    })
                    .unwrap()
            }));
        }
        let values: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "one initializer ran");
        assert!(values.windows(2).all(|w| w[0] == w[1]), "all saw one value");
        assert_eq!(cell.get().copied(), Some(values[0]));
    }

    #[test]
    fn once_cell_failure_is_terminal() {
        let cell: OnceCell<u32> = OnceCell::new();
        assert_eq!(cell.get_or_try_init(|| None), None);
        // A later retry with a working initializer still reports failure:
        // the allocator must not loop retrying mmap after the first OOM.
        assert_eq!(cell.get_or_try_init(|| Some(7)), None);
        assert_eq!(cell.get(), None);
    }

    #[test]
    fn once_cell_drops_value() {
        struct Bomb(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Bomb {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let cell = OnceCell::new();
            cell.get_or_try_init(|| Some(Bomb(Arc::clone(&drops))));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
