//! The paper's headline anecdote (§2, §7.3.2), reenacted: a miniature
//! Squid-like web cache crashes on an ill-formed request under the default
//! allocator and the conservative GC, but keeps serving under DieHard.
//!
//! Run: `cargo run --example squid_survival`

use diehard::prelude::*;
use diehard::workloads::squid;

fn main() {
    println!("== squid-sim: surviving a real-world buffer overflow ==\n");
    println!(
        "The bug (Squid 2.3s5, ftpBuildTitleUrl): a request-derived URL is\n\
         strcpy'd into an undersized 64-byte heap buffer. One ill-formed\n\
         request overruns the buffer by ~200 bytes.\n"
    );

    let attack = squid::attack_scenario(30);

    for (label, verdict) in [
        ("GNU libc (dlmalloc-style)", System::Libc.evaluate(&attack)),
        ("Boehm-Demers-Weiser GC", System::BdwGc.evaluate(&attack)),
    ] {
        println!("{label:<28} → {verdict}");
    }

    let mut survived = 0;
    let runs = 10;
    for seed in 0..runs {
        let v = System::DieHard {
            config: HeapConfig::default(),
            seed,
        }
        .evaluate(&attack);
        if v.is_correct() {
            survived += 1;
        }
    }
    println!("DieHard (stand-alone)        → correct in {survived}/{runs} randomized runs\n");

    println!(
        "Why: under contiguous allocators the bytes after the title buffer\n\
         are a boundary tag (libc) or the adjacent cache entry's payload\n\
         pointer (GC) — both fatal when used. Under DieHard the buffer sits\n\
         alone at a random slot in a half-empty region, so the overflow\n\
         almost surely lands on free space. With the §4.4 replaced strcpy\n\
         the overflow cannot happen at all:"
    );

    // Bonus: DieHard's library interposition stops the overflow cold.
    let oracle = {
        let mut inf = InfiniteHeap::new();
        let opts = ExecOptions {
            bounded_strcpy: true,
            ..Default::default()
        };
        match run_program(&mut inf, &attack, &opts) {
            RunOutcome::Completed(o) => o,
            other => panic!("oracle cannot fail: {other:?}"),
        }
    };
    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 99).unwrap();
    let opts = ExecOptions {
        bounded_strcpy: true,
        ..Default::default()
    };
    let out = run_program(&mut heap, &attack, &opts);
    println!("DieHard + bounded strcpy     → {}", verdict(&out, &oracle));
}
