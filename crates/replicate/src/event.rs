//! The pipe transport: [`run_streamed`] drives one [`Session`] over a
//! [`Reactor`] between a launcher's stdin and stdout (§5.2).
//!
//! This module used to *be* the whole engine — one 800-line reactor with the
//! replica lifecycle, the barrier voting, and the stdin/stdout plumbing
//! fused together. It is now the thinnest of the three layers:
//!
//! * [`crate::reactor`] owns `poll(2)` — registration, readiness dispatch,
//!   non-blocking fd plumbing — and knows nothing about replicas;
//! * [`crate::session`] owns the paper's voting state machine for one
//!   client stream — the bounded ≤ chunk input window, the per-chunk vote
//!   barriers with mid-run `SIGKILL`, the stderr captures, and the closing
//!   stderr/exit ballots — and knows nothing about where bytes come from
//!   or go;
//! * this module (and its TCP sibling [`crate::proxy`]) is a *transport*:
//!   it wires a session's descriptors into a reactor, feeds the input
//!   window from a buffer or the launcher's stdin, and ships each resolved
//!   quorum chunk to the caller's sink the moment the barrier commits.
//!
//! The division of labor per reactor round is the protocol every transport
//! follows: [`Session::pump`] resolves satisfied barriers into an output
//! buffer, the transport flushes that buffer wherever it goes (applying its
//! own backpressure by *not* pumping — unpumped full chunks stop being
//! polled and the kernel pipes throttle the replicas),
//! [`Session::register_interest`] + [`Session::wants_input`] name the
//! descriptors worth polling, and [`Session::service`] consumes readiness.
//! When the session drains, [`Session::finalize`] runs the closing ballots
//! and yields the [`StreamOutcome`].
//!
//! Everything observable about the pipe path — committed bytes, kill
//! timing, `peak_buffered` accounting, stderr/exit ballots — is pinned
//! byte-identical to the pre-refactor engine by `tests/streaming.rs` and
//! `tests/pipe_equivalence.rs`.
//!
//! Two deliberate limits, both inherited from the paper's design: a replica
//! that trickles a partial chunk without closing its stream delays the
//! barrier until the chunk fills or the stream ends (§5.2 votes on *full*
//! pipe buffers), and the bounded input window means the slowest consumer
//! gates how fast input is replayed to the others (beyond the kernel's own
//! per-pipe buffering).

use crate::reactor::Reactor;
use crate::session::{resolve_seeds, Phase, Session, SessionInput, SessionIo};
use crate::LaunchConfig;
use std::io::{self, Write};
use std::os::unix::io::RawFd;

pub use crate::session::StreamOutcome;

/// Where the broadcast standard input comes from.
#[derive(Debug)]
pub enum InputSource {
    /// The whole input is already in memory ([`crate::run_replicated`]'s
    /// path); replicas consume it at their own pace via per-replica
    /// offsets, with no further copies.
    Buffer(Vec<u8>),
    /// Stream incrementally from this descriptor (the launcher's stdin).
    /// Its file-status flags are left untouched — in particular it is NOT
    /// switched to `O_NONBLOCK`, which lives on the open file description
    /// and would leak to any stdout/stderr sharing it (a terminal). The
    /// reactor only reads it once `poll(2)` reports it readable.
    Fd(RawFd),
}

/// What a pipe-transport `pollfd` entry refers to.
#[derive(Debug, Clone, Copy)]
enum Token {
    /// One of the session's replica pipes.
    Session(SessionIo),
    /// The streamed input source (the launcher's stdin).
    Source,
}

/// Runs `config.command` in `config.replicas` differently-seeded replicas,
/// broadcasting `input` to each and committing voted output chunks to
/// `sink` as each barrier resolves.
///
/// `config.input` is ignored here — the input source is explicit so the
/// launcher can hand over its stdin descriptor without buffering it.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] when `config.seeds` is non-empty
/// but its length differs from `config.replicas`, or when `config.chunk`
/// is out of range; otherwise propagates process-spawn, `poll(2)`, and
/// sink-write failures. Replica crashes and disagreements are **not**
/// errors — the voter folds them into the returned [`StreamOutcome`].
pub fn run_streamed(
    config: &LaunchConfig,
    input: InputSource,
    sink: &mut dyn Write,
) -> io::Result<StreamOutcome> {
    let seeds = resolve_seeds(config)?;
    let (session_input, source) = match input {
        InputSource::Buffer(data) => (SessionInput::Buffer(data), None),
        InputSource::Fd(fd) => (SessionInput::Streamed, Some(fd)),
    };
    // On any error below, Session's Drop kills and reaps the replicas.
    let session = Session::spawn(config, &seeds, session_input)?;
    drive(session, source, sink)
}

/// Warm-start variant of [`run_streamed`]: the replica set comes from
/// `pool` when one is parked (a `--pool`-primed launcher), falling back
/// to a cold spawn through the identical path otherwise. Buffered input
/// is adopted into the pre-spawned (streamed-mode) session with the exact
/// buffer-mode accounting, so outcomes are byte-identical either way —
/// pinned by `tests/pool.rs` against the golden equivalence corpus.
///
/// # Errors
///
/// As [`run_streamed`]; a cold-spawn fallback surfaces the same
/// validation and spawn errors it always has.
pub fn run_pooled(
    pool: &mut crate::Pool,
    input: InputSource,
    sink: &mut dyn Write,
) -> io::Result<StreamOutcome> {
    let mut session = pool.acquire()?;
    let source = match input {
        InputSource::Buffer(data) => {
            session.adopt_buffer_input(data);
            None
        }
        InputSource::Fd(fd) => Some(fd),
    };
    drive(session, source, sink)
}

/// The pipe-transport reactor loop shared by the cold and pooled entry
/// points: pump/ship/register/wait/dispatch until the session drains,
/// then run the closing ballots.
fn drive(
    mut session: Session,
    source: Option<RawFd>,
    sink: &mut dyn Write,
) -> io::Result<StreamOutcome> {
    let mut reactor: Reactor<Token> = Reactor::new();
    let mut voted = Vec::new();
    loop {
        // Resolve every satisfied barrier, then ship the quorum bytes
        // immediately — the pipe transport has no cap of its own; the
        // sink (a Vec or the launcher's stdout) absorbs every commit.
        let phase = session.pump(&mut voted);
        if !voted.is_empty() {
            sink.write_all(&voted)?;
            sink.flush()?;
            voted.clear();
        }
        if phase == Phase::Drained {
            break;
        }
        reactor.clear();
        session
            .register_interest(|fd, events, io| reactor.register(fd, events, Token::Session(io)));
        if let Some(fd) = source {
            if session.wants_input() {
                reactor.register(fd, libc::POLLIN, Token::Source);
            }
        }
        reactor.wait(-1)?;
        for (token, _revents) in reactor.ready() {
            // POLLERR/POLLHUP fall through to the same handlers: the
            // read/write sees the EOF or EPIPE and retires the descriptor.
            match token {
                Token::Session(io) => session.service(io),
                Token::Source => refill_from_fd(&mut session, source.expect("streamed mode")),
            }
        }
    }
    Ok(session.finalize())
}

/// Slides the session's input window forward by one read from the source
/// descriptor (≤ one chunk — the window is the memory bound).
fn refill_from_fd(session: &mut Session, fd: RawFd) {
    let chunk = session.chunk();
    let mut buf = vec![0u8; chunk];
    loop {
        // SAFETY: reading into a live buffer of exactly `chunk` bytes on a
        // descriptor the caller handed us.
        let n = unsafe { libc::read(fd, buf.as_mut_ptr().cast(), chunk) };
        if n > 0 {
            session.accept_input(&buf[..n as usize]);
            break;
        }
        if n == 0 {
            session.accept_input_eof();
            break;
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::WouldBlock => break,
            io::ErrorKind::Interrupted => continue,
            _ => {
                // Treat an unreadable source as end-of-input.
                session.accept_input_eof();
                break;
            }
        }
    }
    // Eagerly broadcast what just arrived — the replica pipes are almost
    // always writable, so this saves a poll round per window.
    session.flush_input();
}
