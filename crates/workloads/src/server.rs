//! A server-style echo/produce trace for the streaming voter (§5).
//!
//! The paper's replication front end targets interactive, long-running
//! programs — the ROADMAP's server-trace open item. This module supplies a
//! deterministic miniature "server": a portable `/bin/sh` implementation
//! ([`SERVER_SCRIPT`]) of a line protocol, a generator for request streams,
//! and the exact byte-for-byte expected response, so replicated runs can be
//! checked end to end:
//!
//! * `ECHO <text>` → `OK <text>` — the interactive round-trip shape;
//! * `PRODUCE <n>` → `n` lines of `DATA <i>` — a burst of output far larger
//!   than its request, the shape that forces the voter to commit many 4 KB
//!   chunks long before the input stream ends;
//! * `QUIT` → the server exits 0 (a clean unanimous final ballot).
//!
//! Because the protocol is deterministic, every correctly-executing replica
//! produces identical bytes regardless of its `DIEHARD_SEED` — exactly the
//! property the §5.2 voter relies on.

use diehard_core::rng::Mwc;

/// The `/bin/sh -c` body implementing the echo/produce protocol.
pub const SERVER_SCRIPT: &str = r#"while IFS= read -r line; do
  case "$line" in
    "ECHO "*) printf 'OK %s\n' "${line#ECHO }";;
    "PRODUCE "*) n="${line#PRODUCE }"; i=0
      while [ "$i" -lt "$n" ]; do printf 'DATA %08d\n' "$i"; i=$((i+1)); done;;
    "QUIT") exit 0;;
    *) printf 'ERR\n';;
  esac
done"#;

/// One request in a server trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerRequest {
    /// Echo this payload back (`OK <payload>`). Payloads are kept
    /// shell-inert (alphanumerics, `-`, `.`).
    Echo(String),
    /// Emit this many `DATA <i>` lines — amplifying a tiny request into a
    /// large voted output burst.
    Produce(usize),
    /// Stop the server with exit status 0.
    Quit,
}

impl ServerRequest {
    fn request_line(&self, out: &mut Vec<u8>) {
        match self {
            ServerRequest::Echo(text) => {
                out.extend_from_slice(b"ECHO ");
                out.extend_from_slice(text.as_bytes());
                out.push(b'\n');
            }
            ServerRequest::Produce(n) => {
                out.extend_from_slice(format!("PRODUCE {n}\n").as_bytes());
            }
            ServerRequest::Quit => out.extend_from_slice(b"QUIT\n"),
        }
    }

    fn response_bytes(&self, out: &mut Vec<u8>) {
        match self {
            ServerRequest::Echo(text) => {
                out.extend_from_slice(b"OK ");
                out.extend_from_slice(text.as_bytes());
                out.push(b'\n');
            }
            ServerRequest::Produce(n) => {
                for i in 0..*n {
                    out.extend_from_slice(format!("DATA {i:08}\n").as_bytes());
                }
            }
            ServerRequest::Quit => {}
        }
    }
}

/// Serializes a trace into the byte stream fed to every replica's stdin.
#[must_use]
pub fn request_stream(requests: &[ServerRequest]) -> Vec<u8> {
    let mut out = Vec::new();
    for req in requests {
        req.request_line(&mut out);
    }
    out
}

/// The exact bytes a correct server emits for `requests` (what the voted
/// replicated output must equal).
#[must_use]
pub fn expected_output(requests: &[ServerRequest]) -> Vec<u8> {
    let mut out = Vec::new();
    for req in requests {
        req.response_bytes(&mut out);
        if matches!(req, ServerRequest::Quit) {
            break; // requests after QUIT are never read
        }
    }
    out
}

/// A deterministic mixed trace: mostly echoes with periodic produce bursts,
/// ending in `QUIT`. The same `(seed, requests)` always yields the same
/// trace, so replicas and the expected output agree byte for byte.
#[must_use]
pub fn trace(seed: u64, requests: usize) -> Vec<ServerRequest> {
    let mut rng = Mwc::seeded(seed);
    let mut out = Vec::with_capacity(requests + 1);
    for i in 0..requests {
        if rng.chance(0.125) {
            // Bursts of 64–1,063 lines (13 bytes each): ~0.8–13.8 KB, so a
            // modest trace streams far more output than input.
            out.push(ServerRequest::Produce(64 + rng.below(1000)));
        } else {
            out.push(ServerRequest::Echo(format!(
                "req-{i:06}-payload-{:08x}",
                rng.next_u32()
            )));
        }
    }
    out.push(ServerRequest::Quit);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_response_round_trip_shapes() {
        let reqs = vec![
            ServerRequest::Echo("hello-1".into()),
            ServerRequest::Produce(3),
            ServerRequest::Quit,
        ];
        assert_eq!(
            request_stream(&reqs),
            b"ECHO hello-1\nPRODUCE 3\nQUIT\n".to_vec()
        );
        assert_eq!(
            expected_output(&reqs),
            b"OK hello-1\nDATA 00000000\nDATA 00000001\nDATA 00000002\n".to_vec()
        );
    }

    #[test]
    fn nothing_expected_after_quit() {
        let reqs = vec![
            ServerRequest::Quit,
            ServerRequest::Echo("never-read".into()),
        ];
        assert_eq!(expected_output(&reqs), Vec::<u8>::new());
    }

    #[test]
    fn trace_is_deterministic_and_ends_in_quit() {
        let a = trace(0xD1E, 200);
        let b = trace(0xD1E, 200);
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&ServerRequest::Quit));
        assert_eq!(a.len(), 201);
        // Distinct seeds give distinct traces.
        assert_ne!(trace(1, 200), a);
    }

    #[test]
    fn trace_amplifies_output_past_input() {
        let reqs = trace(0xBEEF, 400);
        let input = request_stream(&reqs);
        let output = expected_output(&reqs);
        assert!(
            output.len() > 4 * input.len(),
            "produce bursts must dominate: {} in, {} out",
            input.len(),
            output.len()
        );
        assert!(output.len() > 128 * 1024, "trace must span many chunks");
    }

    #[test]
    fn echo_payloads_are_shell_inert() {
        for req in trace(42, 500) {
            if let ServerRequest::Echo(text) = req {
                assert!(
                    text.bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.'),
                    "payload {text:?} could be shell-mangled"
                );
            }
        }
    }
}
