//! The bottom layer of the replication stack: a generic `poll(2)` reactor.
//!
//! Nothing in this module knows about replicas, voting, or transports. It
//! owns exactly three jobs, shared by the pipe path ([`crate::event`]) and
//! the TCP proxy ([`crate::proxy`]):
//!
//! * **registration** — each loop iteration, interested parties re-declare
//!   the descriptors that can make progress (`POLLIN`/`POLLOUT`) together
//!   with a caller-defined token; per-round re-registration keeps the
//!   interest set trivially consistent with rapidly-changing session state
//!   (a full chunk buffer, a consumed input window) at the cost of
//!   rebuilding a small `pollfd` array, which is in the noise next to the
//!   process I/O being multiplexed;
//! * **readiness dispatch** — one `EINTR`-retrying `poll(2)` over the
//!   registered set, then iteration over `(token, revents)` pairs for every
//!   descriptor with any returned event (`POLLERR`/`POLLHUP` included: the
//!   subsequent read/write observes the EOF or `EPIPE` and retires the
//!   descriptor, so errors need no separate path);
//! * **non-blocking plumbing** — the [`set_nonblocking`] helper every
//!   transport uses on descriptors it owns outright.

use std::io;
use std::os::unix::io::RawFd;

/// A single-round `poll(2)` registration set with caller-defined tokens.
///
/// The token type `T` is whatever the transport needs to route a readiness
/// event back to its source — a replica-pipe target for the pipe path, a
/// `(connection, target)` pair for the proxy.
#[derive(Debug)]
pub struct Reactor<T> {
    fds: Vec<libc::pollfd>,
    tokens: Vec<T>,
}

impl<T: Copy> Reactor<T> {
    /// An empty registration set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    /// Drops all registrations (start of a new loop iteration).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registers `fd` for `events` (`POLLIN` and/or `POLLOUT`), routing its
    /// readiness back through `token`.
    pub fn register(&mut self, fd: RawFd, events: libc::c_short, token: T) {
        self.fds.push(libc::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Whether nothing is registered this round.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one registered descriptor is ready (or
    /// `timeout_ms` elapses; negative means wait forever), retrying
    /// `EINTR`. Returns the number of ready descriptors.
    ///
    /// # Errors
    ///
    /// Propagates any `poll(2)` failure other than `EINTR`.
    pub fn wait(&mut self, timeout_ms: libc::c_int) -> io::Result<usize> {
        if self.fds.is_empty() {
            return Ok(0);
        }
        loop {
            // SAFETY: fds is a live, correctly-sized pollfd array.
            let rc = unsafe {
                libc::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as libc::nfds_t,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// The tokens whose descriptors reported any event in the last
    /// [`wait`](Self::wait), with the returned event mask.
    pub fn ready(&self) -> impl Iterator<Item = (T, libc::c_short)> + '_ {
        self.fds
            .iter()
            .zip(&self.tokens)
            .filter(|(pfd, _)| pfd.revents != 0)
            .map(|(pfd, &token)| (token, pfd.revents))
    }
}

impl<T: Copy> Default for Reactor<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot readiness probe of a single descriptor: polls `fd` for
/// `events` with the given timeout (0 = instantaneous) and returns the
/// returned-event mask (0 when nothing is ready). `EINTR` is retried like
/// [`Reactor::wait`].
///
/// This is the liveness probe for *parked* descriptors — the warm pool
/// checks a pre-spawned replica set's stdout pipes for `POLLHUP` at
/// handoff time without disturbing the main registration set.
///
/// # Errors
///
/// Propagates any `poll(2)` failure other than `EINTR`.
pub fn poll_fd(
    fd: RawFd,
    events: libc::c_short,
    timeout_ms: libc::c_int,
) -> io::Result<libc::c_short> {
    let mut pfd = libc::pollfd {
        fd,
        events,
        revents: 0,
    };
    loop {
        // SAFETY: pfd is a live pollfd; count 1 matches.
        let rc = unsafe { libc::poll(&mut pfd, 1, timeout_ms) };
        if rc >= 0 {
            return Ok(pfd.revents);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Switches `fd` to non-blocking mode.
///
/// Only for descriptors the caller owns outright: `O_NONBLOCK` lives on the
/// open file *description*, so flipping it on an inherited descriptor (a
/// launcher's stdin sharing a terminal with its stdout) would leak the mode
/// to every other handle on the same description.
///
/// # Errors
///
/// Propagates `fcntl(2)` failures.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a descriptor the caller owns; no memory is passed.
    let flags = unsafe { libc::fcntl(fd, libc::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: as above; third argument is the int F_SETFL expects.
    if unsafe { libc::fcntl(fd, libc::F_SETFL, flags | libc::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_routes_tokens() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let mut reactor: Reactor<u32> = Reactor::new();
        reactor.register(a.as_raw_fd(), libc::POLLIN, 17);
        reactor.register(b.as_raw_fd(), libc::POLLOUT, 99);
        b.write_all(b"x").unwrap();
        let n = reactor.wait(1000).unwrap();
        assert!(n >= 1);
        let ready: Vec<u32> = reactor.ready().map(|(t, _)| t).collect();
        assert!(ready.contains(&17), "read side must be ready");
        assert!(ready.contains(&99), "idle socket is writable");
        let mut buf = [0u8; 1];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn empty_set_returns_immediately() {
        let mut reactor: Reactor<u8> = Reactor::new();
        assert!(reactor.is_empty());
        assert_eq!(reactor.wait(-1).unwrap(), 0, "nothing to wait on");
    }

    #[test]
    fn clear_resets_registrations() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut reactor: Reactor<u8> = Reactor::new();
        reactor.register(b.as_raw_fd(), libc::POLLOUT, 1);
        assert!(!reactor.is_empty());
        reactor.clear();
        assert!(reactor.is_empty());
        assert_eq!(reactor.ready().count(), 0);
    }

    #[test]
    fn poll_fd_sees_peer_close_and_idle_quiet() {
        let (a, b) = UnixStream::pair().unwrap();
        // Nothing readable yet: a 0-timeout probe reports nothing.
        assert_eq!(poll_fd(a.as_raw_fd(), libc::POLLIN, 0).unwrap(), 0);
        drop(b);
        let rev = poll_fd(a.as_raw_fd(), libc::POLLIN, 1000).unwrap();
        assert!(
            rev & (libc::POLLIN | libc::POLLHUP) != 0,
            "peer close must be visible to the probe"
        );
    }

    #[test]
    fn set_nonblocking_makes_reads_return_wouldblock() {
        let (mut a, _b) = UnixStream::pair().unwrap();
        set_nonblocking(a.as_raw_fd()).unwrap();
        let mut buf = [0u8; 1];
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
