//! Pipe-path equivalence regression for the reactor/session/transport
//! split.
//!
//! The refactor's contract is that the pipe transport is **byte-identical**
//! to the pre-refactor single-file engine. `tests/streaming.rs` pins the
//! behavioral corpus; this file pins the *whole* [`StreamOutcome`] — full
//! struct equality against golden values (bytes, stderr, exit code,
//! `committed`, `peak_buffered`, `stderr_dropped`) computed from the
//! pre-refactor engine's deterministic accounting:
//!
//! * buffer-mode input does not count toward `peak_buffered` (the window
//!   is caller memory), so the peak is exactly the sum of every replica's
//!   stdout chunk + stderr capture at the fullest barrier;
//! * chunks are cleared only after a commit, and a vote requires every
//!   live replica ready, so sub-chunk unanimous runs peak at
//!   `replicas × output_len` and multi-chunk runs at `replicas × chunk`;
//! * divergence kills nobody (the voter reports, the engine tears down).
//!
//! Any drift in the split layers — an extra copy held across a barrier, a
//! changed kill order, stderr accounted differently — breaks full-struct
//! equality here even if the committed bytes still match.

#![cfg(unix)]

use diehard_replicate::{run_streamed, InputSource, LaunchConfig, StreamOutcome, CHUNK};

fn sh(script: &str) -> Vec<String> {
    vec!["/bin/sh".into(), "-c".into(), script.into()]
}

/// Runs buffer-mode and returns (committed bytes, outcome).
fn run(cfg: &LaunchConfig, input: &[u8]) -> (Vec<u8>, StreamOutcome) {
    let mut out = Vec::new();
    let outcome = run_streamed(cfg, InputSource::Buffer(input.to_vec()), &mut out)
        .expect("launch must succeed");
    (out, outcome)
}

/// Emits `$1` (a 16-char string) 256 times = exactly one 4096-byte chunk.
const EMIT_CHUNK: &str =
    r#"emit() { i=0; while [ $i -lt 256 ]; do printf %s "$1"; i=$((i+1)); done; }"#;

#[test]
fn golden_outcome_small_echo() {
    // 23 input bytes through 3 cats: one sub-chunk barrier at EOF. Every
    // replica holds all 23 bytes when the barrier resolves (votes need all
    // live replicas ready), so the peak is exactly 3 × 23; the buffer-mode
    // window adds nothing.
    let input = b"hello replicated world\n";
    let cfg = LaunchConfig::new(3, sh("cat"), Vec::new());
    let (out, outcome) = run(&cfg, input);
    assert_eq!(out, input);
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: false,
            killed: vec![],
            exit_code: Some(0),
            committed: input.len() as u64,
            peak_buffered: 3 * input.len(),
            stderr: vec![],
            stderr_dropped: 0,
        }
    );
}

#[test]
fn golden_outcome_two_full_chunks() {
    // Exactly two full chunks per replica: both barriers resolve with all
    // three chunk buffers full, so the peak is exactly replicas × CHUNK.
    let cfg = LaunchConfig::new(
        3,
        sh(&format!(
            "{EMIT_CHUNK}\nemit GGGGGGGGGGGGGGGG; emit GGGGGGGGGGGGGGGG"
        )),
        Vec::new(),
    );
    let (out, outcome) = run(&cfg, b"");
    assert_eq!(out, vec![b'G'; 2 * CHUNK]);
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: false,
            killed: vec![],
            exit_code: Some(0),
            committed: 2 * CHUNK as u64,
            peak_buffered: 3 * CHUNK,
            stderr: vec![],
            stderr_dropped: 0,
        }
    );
}

#[test]
fn golden_outcome_outvoted_minority() {
    // Seed 7 says "bad\n" (4 bytes) against the quorum's "good\n" (5):
    // at the EOF barrier the buffers hold 5 + 4 + 5 = 14 bytes, replica 1
    // is killed at the vote, and the quorum's bytes and status commit.
    let mut cfg = LaunchConfig::new(
        3,
        sh(r#"if [ "$DIEHARD_SEED" = "7" ]; then echo bad; else echo good; fi"#),
        Vec::new(),
    );
    cfg.seeds = vec![1, 7, 2];
    let (out, outcome) = run(&cfg, b"");
    assert_eq!(out, b"good\n");
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: false,
            killed: vec![1],
            exit_code: Some(0),
            committed: 5,
            peak_buffered: 14,
            stderr: vec![],
            stderr_dropped: 0,
        }
    );
}

#[test]
fn golden_outcome_stderr_counts_toward_peak() {
    // Stdout "payload\n" (8) and stderr "diag\n" (5) per replica are both
    // fully buffered when the EOF barrier resolves: peak 3 × (8 + 5).
    let cfg = LaunchConfig::new(3, sh("echo diag >&2; echo payload"), Vec::new());
    let (out, outcome) = run(&cfg, b"");
    assert_eq!(out, b"payload\n");
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: false,
            killed: vec![],
            exit_code: Some(0),
            committed: 8,
            peak_buffered: 3 * (8 + 5),
            stderr: b"diag\n".to_vec(),
            stderr_dropped: 0,
        }
    );
}

#[test]
fn golden_outcome_unanimous_nonzero_exit() {
    let cfg = LaunchConfig::new(3, sh("printf '0\\n'; exit 7"), Vec::new());
    let (out, outcome) = run(&cfg, b"");
    assert_eq!(out, b"0\n");
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: false,
            killed: vec![],
            exit_code: Some(7),
            committed: 2,
            peak_buffered: 6,
            stderr: vec![],
            stderr_dropped: 0,
        }
    );
}

#[test]
fn golden_outcome_three_way_divergence() {
    // Seeds 1/2/3 each print their own seed ("1\n" = 2 bytes): three
    // singleton ballots, no strict plurality. Divergence kills nobody (the
    // voter reports; the engine tears the processes down), commits nothing,
    // and forwards no stderr or status.
    let mut cfg = LaunchConfig::new(3, sh("echo $DIEHARD_SEED"), Vec::new());
    cfg.seeds = vec![1, 2, 3];
    let (out, outcome) = run(&cfg, b"");
    assert_eq!(out, b"");
    assert_eq!(
        outcome,
        StreamOutcome {
            diverged: true,
            killed: vec![],
            exit_code: None,
            committed: 0,
            peak_buffered: 6,
            stderr: vec![],
            stderr_dropped: 0,
        }
    );
}

#[test]
fn streamed_fd_outcome_matches_buffer_outcome() {
    // The same deterministic run through both input paths. Streamed mode
    // counts its bounded window toward the peak, so only the peak differs
    // — every other field must be identical, and the peak must stay within
    // the streamed bound of (2 × replicas + 1) × chunk.
    let script = format!("{EMIT_CHUNK}\ncat >/dev/null; emit KKKKKKKKKKKKKKKK; echo tail-diag >&2");
    let input = vec![b'x'; 3 * CHUNK]; // forces several window refills
    let cfg = LaunchConfig::new(3, sh(&script), Vec::new());
    let (buf_out, buf_outcome) = run(&cfg, &input);

    let (mut reader, mut writer) = {
        use std::os::unix::net::UnixStream;
        UnixStream::pair().expect("socketpair")
    };
    let feeder = {
        let payload = input.clone();
        std::thread::spawn(move || {
            use std::io::Write;
            writer.write_all(&payload).expect("feed input");
            // Dropping writer delivers EOF to the engine's source fd.
        })
    };
    let mut fd_out = Vec::new();
    let fd_outcome = {
        use std::os::unix::io::AsRawFd;
        let outcome = run_streamed(&cfg, InputSource::Fd(reader.as_raw_fd()), &mut fd_out)
            .expect("streamed launch");
        // Drain any EOF state before closing the pair.
        use std::io::Read;
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        outcome
    };
    feeder.join().expect("feeder thread");

    assert_eq!(fd_out, buf_out);
    assert_eq!(fd_out, vec![b'K'; CHUNK]);
    assert_eq!(fd_outcome.diverged, buf_outcome.diverged);
    assert_eq!(fd_outcome.killed, buf_outcome.killed);
    assert_eq!(fd_outcome.exit_code, buf_outcome.exit_code);
    assert_eq!(fd_outcome.committed, buf_outcome.committed);
    assert_eq!(fd_outcome.stderr, buf_outcome.stderr);
    assert_eq!(fd_outcome.stderr_dropped, buf_outcome.stderr_dropped);
    assert!(
        fd_outcome.peak_buffered <= (2 * 3 + 1) * CHUNK,
        "streamed peak {} must respect the (2·replicas + 1) × chunk bound",
        fd_outcome.peak_buffered
    );
}

#[test]
fn chunk_knob_shrinks_the_memory_bound_without_changing_bytes() {
    // The same 64 KB unanimous stream voted at 4096- and 1024-byte
    // barriers: identical committed bytes, but the smaller chunk must
    // shrink the peak to its own replicas × chunk bound.
    let script = "yes 0123456789abcde | head -c 65536";
    let (out_default, outcome_default) = run(&LaunchConfig::new(3, sh(script), Vec::new()), b"");
    let (out_small, outcome_small) = run(
        &LaunchConfig::new(3, sh(script), Vec::new()).with_chunk(1024),
        b"",
    );
    assert_eq!(out_default, out_small);
    assert_eq!(out_small.len(), 65536);
    assert_eq!(outcome_default.peak_buffered, 3 * CHUNK);
    assert_eq!(outcome_small.peak_buffered, 3 * 1024);
    assert_eq!(outcome_default.exit_code, Some(0));
    assert_eq!(outcome_small.exit_code, Some(0));
}

#[test]
fn chunk_knob_rejects_invalid_values() {
    for bad in [0usize, 1, 256, 3000, 4097, 128 * 1024] {
        let cfg = LaunchConfig::new(3, sh("cat"), Vec::new()).with_chunk(bad);
        let err = run_streamed(&cfg, InputSource::Buffer(Vec::new()), &mut Vec::new())
            .expect_err("out-of-range chunk must be rejected");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidInput,
            "chunk {bad} must be InvalidInput"
        );
    }
    // The bounds themselves are valid.
    for good in [512usize, 4096, 65536] {
        let cfg = LaunchConfig::new(3, sh("cat"), Vec::new()).with_chunk(good);
        let (out, outcome) = {
            let mut out = Vec::new();
            let outcome =
                run_streamed(&cfg, InputSource::Buffer(b"ok".to_vec()), &mut out).unwrap();
            (out, outcome)
        };
        assert_eq!(out, b"ok");
        assert_eq!(outcome.exit_code, Some(0));
    }
}
