//! Heap differencing (§9, future directions).
//!
//! "Beyond error tolerance, DieHard also can be used to debug memory
//! corruption. By differencing the heaps of correct and incorrect
//! executions of applications, it may be possible to pinpoint the exact
//! locations of memory errors and report these as part of a crash dump
//! without the crash."
//!
//! [`diff_heaps`] compares the resident memory of two executions that share
//! a seed (hence an identical layout): any byte that differs was written
//! differently — for a run with exactly one extra erroneous write, the
//! differing region *is* the error's footprint, and [`DiffReport`]
//! attributes it to the live object (or free slot) it landed on.

use diehard_sim::{DieHardSimHeap, SimAllocator, PAGE_SIZE};

/// One contiguous run of differing bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRegion {
    /// First differing address.
    pub start: usize,
    /// Length of the differing run in bytes.
    pub len: usize,
    /// Attribution within heap `a` at the time of the diff.
    pub landed_on: Attribution,
}

/// What a differing region overlapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attribution {
    /// A live heap object starting at the given address (corruption!).
    LiveObject {
        /// Object base address.
        base: usize,
        /// Object (class) size.
        size: usize,
    },
    /// Free space — a masked error, exactly DieHard's bet.
    FreeSpace,
    /// Outside the small-object heap (large-object area).
    LargeArea,
}

/// A full differencing report.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All differing regions, in address order.
    pub regions: Vec<DiffRegion>,
}

impl DiffReport {
    /// `true` when the two heaps' memories are identical.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regions.is_empty()
    }

    /// Regions that hit live data — the likely corruption sites.
    pub fn corrupted_objects(&self) -> impl Iterator<Item = &DiffRegion> {
        self.regions
            .iter()
            .filter(|r| matches!(r.landed_on, Attribution::LiveObject { .. }))
    }

    /// Total differing bytes.
    #[must_use]
    pub fn differing_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.len).sum()
    }
}

/// Compares the memories of two heaps, attributing each differing run using
/// heap `a`'s live-object map.
///
/// Both heaps should come from same-seed executions (identical layout) of
/// the program with and without the suspected error; any difference then
/// pinpoints the error's writes.
#[must_use]
pub fn diff_heaps(a: &DieHardSimHeap, b: &DieHardSimHeap) -> DiffReport {
    let mut regions: Vec<DiffRegion> = Vec::new();
    // Union of resident pages on both sides; absent pages read as the fill
    // pattern via `read`, which both sides share for equal seeds.
    let mut pages: Vec<usize> = a
        .memory()
        .resident()
        .map(|(base, _)| base)
        .chain(b.memory().resident().map(|(base, _)| base))
        .collect();
    pages.sort_unstable();
    pages.dedup();

    let mut buf_a = vec![0u8; PAGE_SIZE];
    let mut buf_b = vec![0u8; PAGE_SIZE];
    for page in pages {
        // Guarded (freed large-object) pages can only be compared when
        // readable on both sides; skip faults.
        if a.memory().read(page, &mut buf_a).is_err() || b.memory().read(page, &mut buf_b).is_err()
        {
            continue;
        }
        let mut i = 0;
        while i < PAGE_SIZE {
            if buf_a[i] == buf_b[i] {
                i += 1;
                continue;
            }
            let start = page + i;
            let mut len = 0;
            while i < PAGE_SIZE && buf_a[i] != buf_b[i] {
                len += 1;
                i += 1;
            }
            // Extend attribution from heap a's live map.
            let landed_on = attribute(a, start);
            // Merge with a preceding region that this continues (runs that
            // span page boundaries).
            if let Some(last) = regions.last_mut() {
                if last.start + last.len == start && last.landed_on == landed_on {
                    last.len += len;
                    continue;
                }
            }
            regions.push(DiffRegion {
                start,
                len,
                landed_on,
            });
        }
    }
    DiffReport { regions }
}

fn attribute(heap: &DieHardSimHeap, addr: usize) -> Attribution {
    let core = heap.core();
    if addr >= core.heap_span() {
        return Attribution::LargeArea;
    }
    match core.slot_containing(addr) {
        Some(slot) if core.is_live_at(addr) => Attribution::LiveObject {
            base: core.offset_of(slot),
            size: slot.size(),
        },
        _ => Attribution::FreeSpace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_program, ExecOptions};
    use crate::ops::{Op, Program};
    use diehard_core::config::HeapConfig;
    use diehard_sim::SimAllocator;

    fn heap_pair() -> (DieHardSimHeap, DieHardSimHeap) {
        (
            DieHardSimHeap::new(HeapConfig::default(), 77).unwrap(),
            DieHardSimHeap::new(HeapConfig::default(), 77).unwrap(),
        )
    }

    #[test]
    fn identical_executions_diff_clean() {
        let prog = Program::new(
            "p",
            vec![
                Op::Alloc { id: 0, size: 128 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 128,
                    seed: 1,
                },
            ],
        );
        let (mut a, mut b) = heap_pair();
        run_program(&mut a, &prog, &ExecOptions::default());
        run_program(&mut b, &prog, &ExecOptions::default());
        assert!(diff_heaps(&a, &b).is_clean());
    }

    #[test]
    fn single_extra_write_is_pinpointed() {
        let base_ops = vec![
            Op::Alloc { id: 0, size: 128 },
            Op::Write {
                id: 0,
                offset: 0,
                len: 128,
                seed: 1,
            },
        ];
        let mut buggy_ops = base_ops.clone();
        // The "bug": a 16-byte overflow past the object.
        buggy_ops.push(Op::Write {
            id: 0,
            offset: 128,
            len: 16,
            seed: 2,
        });

        let (mut good, mut bad) = heap_pair();
        run_program(
            &mut good,
            &Program::new("good", base_ops),
            &ExecOptions::default(),
        );
        run_program(
            &mut bad,
            &Program::new("bad", buggy_ops),
            &ExecOptions::default(),
        );

        let report = diff_heaps(&good, &bad);
        assert!(!report.is_clean());
        assert_eq!(
            report.differing_bytes(),
            16,
            "exactly the overflow footprint"
        );
        let r = &report.regions[0];
        assert_eq!(r.len, 16);
    }

    #[test]
    fn attribution_distinguishes_live_hits_from_masked_misses() {
        // Deterministically corrupt (i) empty space and (ii) a live object,
        // and check the attributions.
        let (mut a, mut b) = heap_pair();
        let prog = Program::new(
            "p",
            vec![
                Op::Alloc { id: 0, size: 64 },
                Op::Write {
                    id: 0,
                    offset: 0,
                    len: 64,
                    seed: 1,
                },
            ],
        );
        run_program(&mut a, &prog, &ExecOptions::default());
        run_program(&mut b, &prog, &ExecOptions::default());
        // Find the live object's address in heap b and smash it there.
        let slot = b.core().live_slots().next().expect("one live object");
        let addr = b.core().offset_of(slot);
        b.memory_mut().write(addr, &[0xEE; 4]).unwrap();
        // Also scribble on (deterministically chosen) free space far away.
        let free_addr = addr ^ 0x8_0000; // same region, different page
        b.memory_mut().write(free_addr, &[0xEE; 4]).unwrap();

        let report = diff_heaps(&a, &b);
        assert_eq!(report.regions.len(), 2);
        let hit_live = report.corrupted_objects().count();
        assert_eq!(hit_live, 1, "exactly one region hit live data");
    }

    #[test]
    fn differing_seeds_would_diff_everywhere_so_use_same_seed() {
        // Sanity: the tool requires same-seed executions; different seeds
        // place objects differently and the diff is large.
        let ops: Vec<Op> = (0..5u32)
            .flat_map(|i| {
                vec![
                    Op::Alloc { id: i, size: 128 },
                    Op::Write {
                        id: i,
                        offset: 0,
                        len: 128,
                        seed: 1,
                    },
                ]
            })
            .collect();
        let prog = Program::new("p", ops);
        let mut a = DieHardSimHeap::new(HeapConfig::default(), 1).unwrap();
        let mut b = DieHardSimHeap::new(HeapConfig::default(), 0xFFFF_1234).unwrap();
        run_program(&mut a, &prog, &ExecOptions::default());
        run_program(&mut b, &prog, &ExecOptions::default());
        assert!(!diff_heaps(&a, &b).is_clean());
    }
}
