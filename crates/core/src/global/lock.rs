//! A minimal spinlock for the global allocator.
//!
//! The allocator's lock must never allocate: general-purpose mutexes
//! (including `parking_lot`) may lazily allocate per-thread parking state on
//! contention, which would re-enter the allocator mid-initialization.
//! DieHard's critical sections are a handful of bitmap probes, so a spinlock
//! with exponential backoff is both safe and fast here.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

/// A spin-based mutual-exclusion lock.
#[derive(Debug)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T` across threads.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked lock around `value` (usable in statics).
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning with exponential backoff until free.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Backoff: brief busy-wait, then yield to the scheduler.
            if spins < 10 {
                for _ in 0..(1 << spins) {
                    core::hint::spin_loop();
                }
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }
        SpinGuard { lock: self }
    }
}

/// RAII guard returned by [`SpinLock::lock`]; releases on drop.
#[derive(Debug)]
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increment_across_threads() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = SpinLock::new(5);
        {
            let mut g = lock.lock();
            *g = 6;
        }
        assert_eq!(*lock.lock(), 6);
    }
}
