//! Power-of-two size classes.
//!
//! The paper (§4.1): "The heap is logically partitioned into twelve regions,
//! one for each power-of-two size class from 8 bytes to 16 kilobytes. ...
//! Object requests are rounded up to the nearest power of two. Using powers
//! of two significantly speeds allocation by allowing expensive division and
//! modulus operations to be replaced with bit-shifting."
//!
//! A request of size `sz` maps to class `ceil(log2(sz)) - 3` (§4.2).

/// Number of small-object size classes (8 B, 16 B, …, 16 KB).
pub const NUM_CLASSES: usize = 12;

/// Smallest object size in bytes (class 0).
pub const MIN_OBJECT_SIZE: usize = 8;

/// Largest small-object size in bytes (class 11); bigger requests go to the
/// large-object path (`mmap` + guard pages).
pub const MAX_OBJECT_SIZE: usize = 16 * 1024;

/// log2 of [`MIN_OBJECT_SIZE`]; subtracted when converting sizes to classes.
const MIN_SHIFT: u32 = 3;

/// A small-object size class: an index in `0..12` naming one power-of-two
/// region of the DieHard heap.
///
/// # Examples
///
/// ```
/// use diehard_core::size_class::SizeClass;
///
/// let c = SizeClass::for_size(24).unwrap();
/// assert_eq!(c.object_size(), 32);
/// assert_eq!(c.index(), 2);
/// assert!(SizeClass::for_size(20_000).is_none()); // large object
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeClass(u8);

impl SizeClass {
    /// Maps a request size to its class, or `None` when the request must use
    /// the large-object allocator (`sz > 16 KB`) or is zero.
    ///
    /// This is the paper's `dlog2e of the request, minus 3`, with sizes below
    /// 8 bytes rounded up to class 0.
    #[must_use]
    #[inline]
    pub fn for_size(sz: usize) -> Option<Self> {
        if sz == 0 || sz > MAX_OBJECT_SIZE {
            return None;
        }
        let rounded = sz.next_power_of_two().max(MIN_OBJECT_SIZE);
        Some(Self((rounded.trailing_zeros() - MIN_SHIFT) as u8))
    }

    /// Builds a class directly from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 12`.
    #[must_use]
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_CLASSES, "size class index {index} out of range");
        Self(index as u8)
    }

    /// The class index in `0..12`.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The (power-of-two) object size served by this class, in bytes.
    #[must_use]
    #[inline]
    pub fn object_size(self) -> usize {
        MIN_OBJECT_SIZE << self.0
    }

    /// log2 of the object size; offsets within a region are computed with
    /// shifts by this amount rather than multiplication (§4.1).
    #[must_use]
    #[inline]
    pub fn shift(self) -> u32 {
        MIN_SHIFT + u32::from(self.0)
    }

    /// Iterates over all twelve classes, smallest first.
    pub fn all() -> impl DoubleEndedIterator<Item = SizeClass> + ExactSizeIterator {
        (0..NUM_CLASSES).map(|i| SizeClass(i as u8))
    }
}

impl core::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let size = self.object_size();
        if size >= 1024 {
            write!(f, "class {} ({} KB)", self.0, size / 1024)
        } else {
            write!(f, "class {} ({} B)", self.0, size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn twelve_classes_cover_8b_to_16kb() {
        let classes: Vec<SizeClass> = SizeClass::all().collect();
        assert_eq!(classes.len(), NUM_CLASSES);
        assert_eq!(classes[0].object_size(), 8);
        assert_eq!(classes[11].object_size(), 16 * 1024);
    }

    #[test]
    fn exact_powers_map_to_themselves() {
        for c in SizeClass::all() {
            let sz = c.object_size();
            assert_eq!(SizeClass::for_size(sz), Some(c));
        }
    }

    #[test]
    fn rounding_up() {
        assert_eq!(SizeClass::for_size(1).unwrap().object_size(), 8);
        assert_eq!(SizeClass::for_size(8).unwrap().object_size(), 8);
        assert_eq!(SizeClass::for_size(9).unwrap().object_size(), 16);
        assert_eq!(SizeClass::for_size(100).unwrap().object_size(), 128);
        assert_eq!(SizeClass::for_size(16_383).unwrap().object_size(), 16_384);
    }

    #[test]
    fn boundary_cases() {
        assert_eq!(SizeClass::for_size(0), None);
        assert_eq!(
            SizeClass::for_size(MAX_OBJECT_SIZE).unwrap().index(),
            NUM_CLASSES - 1
        );
        assert_eq!(SizeClass::for_size(MAX_OBJECT_SIZE + 1), None);
    }

    #[test]
    fn shift_matches_size() {
        for c in SizeClass::all() {
            assert_eq!(1usize << c.shift(), c.object_size());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_13th_class() {
        let _ = SizeClass::from_index(12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SizeClass::from_index(0).to_string(), "class 0 (8 B)");
        assert_eq!(SizeClass::from_index(11).to_string(), "class 11 (16 KB)");
    }

    proptest! {
        /// For all valid sizes, the class size is the smallest power of two
        /// (>= 8) that fits the request.
        #[test]
        fn class_is_tight_fit(sz in 1usize..=MAX_OBJECT_SIZE) {
            let c = SizeClass::for_size(sz).unwrap();
            let obj = c.object_size();
            prop_assert!(obj >= sz);
            prop_assert!(obj.is_power_of_two());
            prop_assert!(obj == MIN_OBJECT_SIZE || obj / 2 < sz,
                "class {obj} not tight for request {sz}");
        }

        /// Index/size round-trips agree.
        #[test]
        fn index_roundtrip(i in 0usize..NUM_CLASSES) {
            let c = SizeClass::from_index(i);
            prop_assert_eq!(c.index(), i);
            prop_assert_eq!(SizeClass::for_size(c.object_size()), Some(c));
        }

        /// `for_size` is monotone in the request size.
        #[test]
        fn monotone(a in 1usize..=MAX_OBJECT_SIZE, b in 1usize..=MAX_OBJECT_SIZE) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let cl = SizeClass::for_size(lo).unwrap();
            let ch = SizeClass::for_size(hi).unwrap();
            prop_assert!(cl <= ch);
        }
    }
}
