//! A deterministic TCP client driver for the [`crate::server`] protocol.
//!
//! The replicated proxy (`diehard-replicate`'s TCP transport) speaks
//! write-then-read: a client sends its whole request stream, half-closes
//! the write side, then reads the voted response to EOF. (Responses flush
//! at the voter's chunk barriers, so request/response *lockstep* would
//! deadlock on a partially-filled chunk — the same §5.2 full-pipe-buffer
//! rule the pipe path inherits.) This module packages that protocol so
//! proxy tests and benches drive connections identically:
//!
//! * [`drive`] — connect, stream [`crate::server::request_stream`] bytes
//!   from a writer thread, half-close, read the response to EOF. The
//!   writer thread matters: a large request and a large response in
//!   flight simultaneously would otherwise deadlock both directions'
//!   kernel buffers.
//! * [`Pace`] — optional slow-reader throttling (small reads, a delay
//!   between them) for backpressure tests: the proxy must bound its
//!   per-connection memory no matter how slowly the client drains.
//! * [`abandon_mid_stream`] — the misbehaving client: send a request
//!   prefix, slam the connection shut, never read. Proxy tests use it to
//!   prove one vanished client costs only its own replica session.
//!
//! Everything here is plain `std::net` over loopback; determinism comes
//! from the request trace, not from timing.

use crate::server::{request_stream, ServerRequest};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Reading cadence for [`drive`].
#[derive(Debug, Clone, Copy)]
pub struct Pace {
    /// Bytes per read call (clamped to ≥ 1).
    pub read_chunk: usize,
    /// Sleep between read calls (slow-reader simulation).
    pub read_delay: Duration,
}

impl Pace {
    /// Full speed: big reads, no delay.
    #[must_use]
    pub fn full() -> Self {
        Self {
            read_chunk: 64 * 1024,
            read_delay: Duration::ZERO,
        }
    }

    /// A deliberately slow reader: tiny reads with a pause between them,
    /// so the sender-side buffers (proxy outbound queue, replica pipes)
    /// are what absorb — and must bound — the stream.
    #[must_use]
    pub fn slow(read_chunk: usize, read_delay: Duration) -> Self {
        Self {
            read_chunk: read_chunk.max(1),
            read_delay,
        }
    }
}

/// Connects to `127.0.0.1:port`, streams the serialized `requests`,
/// half-closes, and reads the whole voted response at the given [`Pace`].
/// Returns the response bytes (compare with
/// [`crate::server::expected_output`]).
///
/// # Errors
///
/// Propagates connect and read failures. Write-side errors are folded
/// into the response read: a proxy that kills the connection mid-request
/// (divergence, replica loss) surfaces as a short/empty response, which
/// is the observable callers assert on.
///
/// # Panics
///
/// Panics if the writer thread itself panics (it does not — it only
/// performs writes whose failures are ignored by design).
pub fn drive(port: u16, requests: &[ServerRequest], pace: Pace) -> std::io::Result<Vec<u8>> {
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    let stream = TcpStream::connect(addr)?;
    let payload = request_stream(requests);
    let writer = {
        let stream = stream.try_clone()?;
        std::thread::spawn(move || {
            let mut stream = stream;
            // A refused request stream (proxy closed early) is not this
            // thread's error to report: the reader observes the outcome.
            let _ = stream.write_all(&payload);
            let _ = stream.shutdown(Shutdown::Write);
        })
    };
    let mut response = Vec::new();
    let mut stream = stream;
    let mut buf = vec![0u8; pace.read_chunk];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&buf[..n]);
                if !pace.read_delay.is_zero() {
                    std::thread::sleep(pace.read_delay);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                writer.join().expect("writer thread");
                return Err(e);
            }
        }
    }
    writer.join().expect("writer thread");
    Ok(response)
}

/// The vanishing client: connects, writes `prefix_bytes` of the serialized
/// `requests` (no newline guarantee — a torn request line is the point),
/// then drops the socket without half-closing or reading. Returns once the
/// connection is closed.
///
/// # Errors
///
/// Propagates connect failures; write errors are expected (the proxy may
/// already be tearing the session down) and ignored.
pub fn abandon_mid_stream(
    port: u16,
    requests: &[ServerRequest],
    prefix_bytes: usize,
) -> std::io::Result<()> {
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    let mut stream = TcpStream::connect(addr)?;
    let payload = request_stream(requests);
    let cut = prefix_bytes.min(payload.len());
    let _ = stream.write_all(&payload[..cut]);
    // Drop without shutdown: the peer sees FIN with the request
    // incomplete, and any later proxy write hits EPIPE/ECONNRESET.
    drop(stream);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::expected_output;
    use std::net::TcpListener;

    /// A plain (unreplicated) echo of the server protocol, so the driver
    /// is testable without the proxy: read all requests, then write the
    /// exact expected response.
    fn one_shot_mock_server() -> (u16, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut request = Vec::new();
            conn.read_to_end(&mut request).unwrap();
            let text = String::from_utf8(request).unwrap();
            let requests: Vec<ServerRequest> = text
                .lines()
                .map(|line| {
                    if let Some(text) = line.strip_prefix("ECHO ") {
                        ServerRequest::Echo(text.into())
                    } else if let Some(n) = line.strip_prefix("PRODUCE ") {
                        ServerRequest::Produce(n.parse().unwrap())
                    } else {
                        ServerRequest::Quit
                    }
                })
                .collect();
            conn.write_all(&expected_output(&requests)).unwrap();
        });
        (port, handle)
    }

    #[test]
    fn drive_round_trips_the_protocol() {
        let (port, server) = one_shot_mock_server();
        let requests = vec![
            ServerRequest::Echo("alpha".into()),
            ServerRequest::Produce(5),
            ServerRequest::Quit,
        ];
        let response = drive(port, &requests, Pace::full()).unwrap();
        assert_eq!(response, expected_output(&requests));
        server.join().unwrap();
    }

    #[test]
    fn slow_pace_still_reads_everything() {
        let (port, server) = one_shot_mock_server();
        let requests = vec![ServerRequest::Produce(200), ServerRequest::Quit];
        let pace = Pace::slow(7, Duration::from_micros(50));
        let response = drive(port, &requests, pace).unwrap();
        assert_eq!(response, expected_output(&requests));
        server.join().unwrap();
    }

    #[test]
    fn abandon_sends_only_the_prefix() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            conn.read_to_end(&mut got).unwrap();
            got
        });
        let requests = vec![ServerRequest::Echo("abcdefgh".into()), ServerRequest::Quit];
        abandon_mid_stream(port, &requests, 6).unwrap();
        let got = server.join().unwrap();
        assert_eq!(got, b"ECHO a", "exactly the torn prefix, then FIN");
    }
}
