//! Table 1: how each runtime system handles each memory-safety error.
//!
//! For every error class (§1) a small targeted program containing exactly
//! that error runs under every system; the observed verdict collapses to
//! the paper's three cell values (✓ / undefined / abort). DieHard's
//! probabilistic cells run across many seeds and report the observed rate;
//! the uninitialized-read cell uses the replicated voter (the paper's
//! `abort*`).
//!
//! Run: `cargo run --release -p diehard-bench --bin table1`

use diehard_bench::TextTable;
use diehard_core::config::HeapConfig;
use diehard_runtime::ops::{Op, Program};
use diehard_runtime::{oracle_output, ReplicaSet, System, Verdict};

const DIEHARD_SEEDS: u64 = 30;

/// Heap metadata overwrite: an overflow smashes the space right past a
/// live object where in-band allocators keep boundary tags / free-list
/// links; the program then keeps allocating and freeing.
fn metadata_overwrite() -> Program {
    let mut ops = Vec::new();
    // A field of adjacent 64-byte objects; free every other one so the
    // gaps hold metadata (lea bins / GC free-links after collection).
    for i in 0..40u32 {
        ops.push(Op::Alloc { id: i, size: 56 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 56,
            seed: 1,
        });
    }
    for i in (0..40u32).step_by(2) {
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    // Force enough churn that the GC collects and builds in-heap links.
    for i in 100..400u32 {
        ops.push(Op::Alloc { id: i, size: 2048 });
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    // The error: object 1 overflows 24 bytes past its end — onto the freed
    // neighbour where dlmalloc keeps its boundary tag + links and the GC
    // its reclaimed free-list link.
    ops.push(Op::Write {
        id: 1,
        offset: 56,
        len: 24,
        seed: 0xBD,
    });
    // Continued operation: the corrupted metadata gets *used* — object 1's
    // own free walks the smashed adjacent header, and allocation traffic
    // pops through the smashed links.
    ops.push(Op::Free { id: 1 });
    ops.push(Op::Forget { id: 1 });
    for i in 500..600u32 {
        ops.push(Op::Alloc { id: i, size: 56 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 56,
            seed: 2,
        });
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 56,
        });
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    for i in (3..40u32).step_by(2) {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 56,
        });
    }
    Program::new("metadata-overwrite", ops)
}

/// Invalid frees: free interior and wild pointers, then keep going.
fn invalid_frees() -> Program {
    let mut ops = Vec::new();
    for i in 0..20u32 {
        ops.push(Op::Alloc { id: i, size: 64 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 64,
            seed: 3,
        });
    }
    ops.push(Op::FreeRaw { id: 3, delta: 8 }); // interior pointer
    ops.push(Op::FreeRaw { id: 4, delta: -40 }); // before the object
    for i in 0..20u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 64,
        });
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    // Post-error allocation traffic must still work.
    for i in 50..70u32 {
        ops.push(Op::Alloc { id: i, size: 64 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 64,
            seed: 4,
        });
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 64,
        });
    }
    Program::new("invalid-frees", ops)
}

/// Double frees followed by continued allocation.
fn double_frees() -> Program {
    let mut ops = Vec::new();
    for i in 0..20u32 {
        ops.push(Op::Alloc { id: i, size: 48 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 48,
            seed: 5,
        });
    }
    ops.push(Op::Free { id: 7 });
    ops.push(Op::Free { id: 7 }); // the error
    ops.push(Op::Forget { id: 7 });
    for i in 30..60u32 {
        ops.push(Op::Alloc { id: i, size: 48 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 48,
            seed: 6,
        });
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 48,
        });
    }
    Program::new("double-frees", ops)
}

/// Dangling pointer: premature free, reuse pressure, stale read.
fn dangling_pointer() -> Program {
    let mut ops = Vec::new();
    ops.push(Op::Alloc { id: 0, size: 48 });
    ops.push(Op::Write {
        id: 0,
        offset: 0,
        len: 48,
        seed: 7,
    });
    ops.push(Op::Free { id: 0 }); // premature: still used below
    for i in 1..30u32 {
        ops.push(Op::Alloc { id: i, size: 48 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 48,
            seed: 8,
        });
    }
    ops.push(Op::Read {
        id: 0,
        offset: 0,
        len: 48,
    }); // dangling read
    ops.push(Op::Forget { id: 0 });
    for i in 1..30u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 48,
        });
    }
    Program::new("dangling", ops)
}

/// Buffer overflow of live application data (no metadata involvement
/// needed): the neighbour's contents are read back.
fn buffer_overflow() -> Program {
    let mut ops = Vec::new();
    for i in 0..16u32 {
        ops.push(Op::Alloc { id: i, size: 64 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 64,
            seed: 9,
        });
    }
    // The error: object 5 writes one object's worth past its end…
    ops.push(Op::Write {
        id: 5,
        offset: 64,
        len: 64,
        seed: 0xEE,
    });
    // …and the program later reads the overflowed range back (so systems
    // that silently dropped or redirected the write diverge from the
    // infinite-heap semantics).
    ops.push(Op::Read {
        id: 5,
        offset: 0,
        len: 128,
    });
    for i in 0..16u32 {
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 64,
        });
    }
    Program::new("overflow", ops)
}

/// Uninitialized read: recycled memory is read without initialization and
/// the value propagates to output.
fn uninit_read() -> Program {
    let mut ops = Vec::new();
    // Populate and retire a field of objects so recycled memory carries
    // stale data (and, under libc, non-null free-list links).
    for i in 0..10u32 {
        ops.push(Op::Alloc { id: i, size: 56 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 56,
            seed: 10,
        });
    }
    for i in 0..10u32 {
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    // Enough garbage churn to trigger a collection in the GC system, so
    // its free lists are rebuilt over the stale objects too.
    for i in 100..400u32 {
        ops.push(Op::Alloc { id: i, size: 2048 });
        ops.push(Op::Free { id: i });
        ops.push(Op::Forget { id: i });
    }
    // The error: a fresh object is read before initialization; recycled
    // bytes (stale data, free-list links) propagate to output.
    ops.push(Op::Alloc { id: 50, size: 56 });
    ops.push(Op::Read {
        id: 50,
        offset: 0,
        len: 16,
    }); // never written!
    Program::new("uninit-read", ops)
}

fn classify(system: &System, prog: &Program) -> &'static str {
    system.evaluate(prog).table_cell()
}

/// DieHard's probabilistic cells: run many seeds, report the dominant cell
/// with the observed correct rate.
fn diehard_cell(prog: &Program, seeds: u64) -> String {
    let mut correct = 0;
    for seed in 0..seeds {
        let v = System::DieHard {
            config: HeapConfig::default(),
            seed,
        }
        .evaluate(prog);
        if v == Verdict::Correct {
            correct += 1;
        }
    }
    if correct == seeds {
        "✓".to_string()
    } else {
        format!("✓* ({correct}/{seeds})")
    }
}

/// DieHard's uninit cell: the replicated voter detects and terminates.
fn diehard_uninit_cell(prog: &Program) -> String {
    let oracle = oracle_output(prog);
    let set = ReplicaSet::new(3, 0x7AB1E, HeapConfig::default());
    let v = set.run(prog).verdict(&oracle);
    format!("{}*", v.table_cell())
}

fn main() {
    println!("Table 1 — How runtime systems handle memory-safety errors");
    println!("(✓ = correct execution, undefined = crash/hang/silent corruption, abort = deliberate stop)");
    let seeds = diehard_bench::smoke_scaled(DIEHARD_SEEDS, 5);
    println!("(* = probabilistic; DieHard cells over {seeds} seeds; uninit via 3 replicas)\n");

    let errors: Vec<(&str, Program, &str)> = vec![
        ("heap metadata overwrites", metadata_overwrite(), "✓"),
        ("invalid frees", invalid_frees(), "✓"),
        ("double frees", double_frees(), "✓"),
        ("dangling pointers", dangling_pointer(), "✓*"),
        ("buffer overflows", buffer_overflow(), "✓*"),
        ("uninitialized reads", uninit_read(), "abort*"),
    ];
    let systems = [
        System::Libc,
        System::BdwGc,
        System::CCured,
        System::Rx,
        System::FailureOblivious,
    ];

    let mut table = TextTable::new(vec![
        "error",
        "GNU libc",
        "BDW GC",
        "CCured",
        "Rx",
        "Failure-oblivious",
        "DieHard",
        "paper(DieHard)",
    ]);
    for (error_name, prog, paper_dh) in &errors {
        let mut row: Vec<String> = vec![(*error_name).to_string()];
        for system in &systems {
            row.push(classify(system, prog).to_string());
        }
        let dh = if *error_name == "uninitialized reads" {
            diehard_uninit_cell(prog)
        } else {
            diehard_cell(prog, seeds)
        };
        row.push(dh);
        row.push((*paper_dh).to_string());
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Paper's DieHard column: ✓, ✓, ✓, ✓*, ✓*, abort* — the last three\n\
         probabilistic (Section 6 gives the exact formulae)."
    );
}
