//! The §7.3.1 methodology in miniature: trace a workload, inject memory
//! errors at configurable rates, and watch each runtime system cope (or
//! not).
//!
//! Run: `cargo run --example fault_injection_demo`

use diehard::inject::{inject, AllocLog, Injection};
use diehard::prelude::*;

fn main() {
    // 1. Trace: run the app under the tracing allocator, producing the
    //    allocation log the injector consumes ("sorted by allocation time").
    let espresso = diehard::workloads::profile_by_name("espresso").expect("espresso");
    let prog = espresso.generate(0.01, 0xABC);
    let log = AllocLog::trace(&prog);
    println!(
        "traced espresso: {} allocations, {} freed, first log lines:",
        log.len(),
        log.records.iter().filter(|r| r.free_time.is_some()).count()
    );
    for line in log.to_text().lines().take(5) {
        println!("  {line}");
    }

    // 2. Inject each error family and evaluate across systems.
    let campaigns: Vec<(&str, Injection)> = vec![
        (
            "dangling (50%, 10 allocs early)",
            Injection::Dangling {
                frequency: 0.5,
                distance: 10,
            },
        ),
        (
            "overflow (1% of allocs ≥32B short by a granule)",
            Injection::Underflow {
                rate: 0.01,
                min_size: 32,
                shrink_by: 16,
            },
        ),
        ("double free (20%)", Injection::DoubleFree { rate: 0.2 }),
        (
            "invalid free (10%)",
            Injection::InvalidFree {
                rate: 0.1,
                delta: 8,
            },
        ),
    ];

    println!("\n{:<48} {:<12} {:<12}", "injection", "libc", "DieHard");
    println!("{}", "-".repeat(74));
    for (name, injection) in campaigns {
        let bad = inject(&prog, &injection, 0xFA17);
        let libc = System::Libc.evaluate(&bad);
        let dh = System::DieHard {
            config: HeapConfig::paper_default(),
            seed: 5,
        }
        .evaluate(&bad);
        println!("{name:<48} {libc:<12} {dh:<12}");
    }

    // 3. Heap differencing (§9): pinpoint an injected overflow by diffing
    //    same-seed executions with and without the error.
    println!("\nheap differencing: locating a single 16-byte overflow…");
    let clean_ops = vec![
        Op::Alloc { id: 0, size: 128 },
        Op::Write {
            id: 0,
            offset: 0,
            len: 128,
            seed: 1,
        },
        Op::Alloc { id: 1, size: 128 },
        Op::Write {
            id: 1,
            offset: 0,
            len: 128,
            seed: 2,
        },
    ];
    let mut buggy_ops = clean_ops.clone();
    buggy_ops.push(Op::Write {
        id: 0,
        offset: 128,
        len: 16,
        seed: 3,
    });

    let mut good = DieHardSimHeap::new(HeapConfig::default(), 77).unwrap();
    let mut bad = DieHardSimHeap::new(HeapConfig::default(), 77).unwrap();
    run_program(
        &mut good,
        &Program::new("good", clean_ops),
        &ExecOptions::default(),
    );
    run_program(
        &mut bad,
        &Program::new("bad", buggy_ops),
        &ExecOptions::default(),
    );
    let report = diehard::runtime::heap_diff::diff_heaps(&good, &bad);
    for region in &report.regions {
        println!(
            "  {} differing bytes at {:#x} ({:?})",
            region.len, region.start, region.landed_on
        );
    }
    println!(
        "  → the error wrote {} bytes; the diff localizes it exactly.",
        report.differing_bytes()
    );
}
