//! Integration tests for the paper's extension features (§9) and for
//! cross-cutting invariants: the adaptive heap under real workloads, the
//! M dial's monotone effect on protection, and bounded-strcpy end-to-end.

use diehard::core::adaptive::AdaptiveHeap;
use diehard::inject::{inject, Injection};
use diehard::prelude::*;
use diehard::workloads::profile_by_name;

/// The adaptive heap (future work, §9) runs a real workload's allocation
/// stream to completion, growing on demand, with a much smaller footprint.
#[test]
fn adaptive_heap_serves_real_workloads_with_smaller_footprint() {
    // Small regions + a longer-lived profile so live data actually presses
    // against the initial 1/64 slot allotment.
    let config = HeapConfig::default().with_region_bytes(64 * 1024);
    let fixed_span = config.heap_span();
    let mut heap = AdaptiveHeap::new(config, 5).unwrap();
    let prog = profile_by_name("p2c").unwrap().generate(0.2, 3);
    let mut live: std::collections::HashMap<u32, usize> = Default::default();
    for op in &prog.ops {
        match op {
            Op::Alloc { id, size } => {
                let slot = heap.alloc(*size).expect("adaptive heap grows on demand");
                live.insert(*id, heap.offset_of(slot));
            }
            Op::Free { id } => {
                if let Some(off) = live.remove(id) {
                    assert!(heap.free_at(off).freed(), "valid free must succeed");
                }
            }
            _ => {}
        }
    }
    assert!(heap.growth_events() > 0, "p2c must trigger growth");
    assert!(
        heap.committed_bytes() < fixed_span / 4,
        "adaptive commit {} should be far below fixed {}",
        heap.committed_bytes(),
        fixed_span
    );
}

/// Protection is monotone in M: sweeping the dial upward never hurts
/// overflow survival (statistically, with generous margins).
#[test]
fn m_dial_monotone_protection() {
    let espresso = profile_by_name("espresso").unwrap();
    let injection = Injection::Underflow {
        rate: 0.05,
        min_size: 32,
        shrink_by: 16,
    };
    let survival = |m: f64| -> usize {
        let mut ok = 0;
        for run in 0..10u64 {
            let prog = espresso.generate(0.02, 800 + run);
            let bad = inject(&prog, &injection, 900 + run);
            let config = HeapConfig::default()
                .with_region_bytes(1 << 20)
                .with_multiplier(m);
            if (System::DieHard { config, seed: run })
                .evaluate(&bad)
                .is_correct()
            {
                ok += 1;
            }
        }
        ok
    };
    let low = survival(1.1);
    let high = survival(8.0);
    assert!(
        high + 2 >= low,
        "M=8 ({high}/10) must not mask materially fewer than M=1.1 ({low}/10)"
    );
    assert!(
        high >= 8,
        "M=8 should survive nearly all runs, got {high}/10"
    );
}

/// §4.4 end-to-end: squid's attack is fully neutralized by the replaced
/// strcpy under every allocator — the overflow never happens.
#[test]
fn bounded_strcpy_neutralizes_squid_everywhere() {
    use diehard::baselines::LeaSimAllocator;
    use diehard::workloads::squid;

    let attack = squid::attack_scenario(16);
    let opts = ExecOptions {
        bounded_strcpy: true,
        ..Default::default()
    };
    let oracle = {
        let mut inf = InfiniteHeap::new();
        match run_program(&mut inf, &attack, &opts) {
            RunOutcome::Completed(o) => o,
            other => panic!("oracle: {other:?}"),
        }
    };
    // Even the corruptible Lea baseline survives once strcpy is bounded —
    // the clamp uses the allocator's own usable_size.
    let mut lea = LeaSimAllocator::new(64 << 20);
    let out = run_program(&mut lea, &attack, &opts);
    assert_eq!(
        verdict(&out, &oracle),
        Verdict::Correct,
        "lea + bounded strcpy"
    );

    let mut dh = DieHardSimHeap::new(HeapConfig::default(), 2).unwrap();
    let out = run_program(&mut dh, &attack, &opts);
    assert_eq!(
        verdict(&out, &oracle),
        Verdict::Correct,
        "diehard + bounded strcpy"
    );
}

/// The replicated voter commits exactly the oracle's bytes for clean
/// multi-chunk outputs (voting never mangles chunk boundaries).
#[test]
fn voter_preserves_multi_chunk_output_exactly() {
    let mut ops = Vec::new();
    // ~24 KB of output: six chunks.
    for i in 0..600u32 {
        ops.push(Op::Alloc { id: i, size: 40 });
        ops.push(Op::Write {
            id: i,
            offset: 0,
            len: 40,
            seed: (i % 200) as u8,
        });
        ops.push(Op::Read {
            id: i,
            offset: 0,
            len: 40,
        });
    }
    let prog = Program::new("chunky", ops);
    let oracle = oracle_output(&prog);
    assert!(oracle.chunk_count() >= 5, "want a multi-chunk output");
    let set = ReplicaSet::new(3, 0xC0FFEE, HeapConfig::default());
    match set.run(&prog).outcome {
        ReplicatedOutcome::Agreed(out) => assert_eq!(out, oracle),
        other => panic!("expected agreement, got {other:?}"),
    }
}

/// Double and invalid frees at scale: thousands of erroneous frees leave a
/// DieHard heap fully consistent.
#[test]
fn erroneous_free_storm_leaves_heap_consistent() {
    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 7).unwrap();
    let mut rng = Mwc::seeded(0x5707);
    let mut live = Vec::new();
    for _ in 0..500 {
        if let Some(p) = heap.malloc(8 + rng.below(1000), &[]).unwrap() {
            live.push(p);
        }
    }
    let before = heap.stats().allocs;
    for _ in 0..5000 {
        // Wild, misaligned, and double frees at random.
        let bogus = rng.below(heap.core().heap_span() * 2);
        heap.free(bogus).unwrap();
    }
    // Every legitimately live object must still free exactly once.
    let mut freed = 0;
    for p in live {
        let live_before = heap.core().live_objects();
        heap.free(p).unwrap();
        if heap.core().live_objects() == live_before - 1 {
            freed += 1;
        }
    }
    assert_eq!(heap.stats().allocs, before);
    // The random storm may have legitimately freed a few objects by luck
    // (hitting a live slot start); overwhelmingly most survive.
    assert!(
        freed >= 490,
        "only {freed}/500 survived the bogus-free storm"
    );
    assert_eq!(heap.core().live_objects(), 0);
}
