//! # diehard-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (see
//! `DESIGN.md`'s experiment index) plus criterion microbenchmarks. This
//! library holds the shared plumbing: aligned text tables, geometric means,
//! wall-clock timing, and formatting helpers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod perf;

use std::time::{Duration, Instant};

/// A simple aligned text table, printed like the paper's tables.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            cells.join("  ").trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Geometric mean of positive values; 0 on empty input.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Times `f`, returning `(result, elapsed)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Runs `f` `warmup + runs` times (the paper: "the average of five runs
/// after one warm-up run"), returning the mean of the measured runs in
/// seconds.
pub fn measured_seconds(warmup: usize, runs: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let (_, d) = time_it(&mut f);
        total += d;
    }
    total.as_secs_f64() / runs as f64
}

/// True when the process was started with `--smoke`: every evaluation
/// binary shrinks its trial counts and workload scales so CI can exercise
/// all of them in seconds rather than minutes. Results under smoke are for
/// wiring verification only, not for reading numbers off.
#[must_use]
pub fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// `full` normally, `quick` under [`smoke`].
#[must_use]
pub fn smoke_scaled<T>(full: T, quick: T) -> T {
    if smoke() {
        quick
    } else {
        full
    }
}

/// Positional command-line arguments (program name and `--flags` removed),
/// so binaries taking `[scale]`/`[runs]` positionals coexist with `--smoke`.
#[must_use]
pub fn positional_args() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect()
}

/// Formats a probability as a percentage with two decimals.
#[must_use]
pub fn pct(p: f64) -> String {
    format!("{:6.2}%", p * 100.0)
}

/// Formats a normalized runtime (1.00 = baseline).
#[must_use]
pub fn norm(x: f64) -> String {
    format!("{x:5.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_seconds_runs_the_closure() {
        let mut count = 0;
        let secs = measured_seconds(1, 3, || count += 1);
        assert_eq!(count, 4);
        assert!(secs >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.875), " 87.50%");
        assert_eq!(norm(1.0), " 1.00x");
    }
}
