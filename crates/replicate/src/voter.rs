//! The chunk voter (§5.2), isolated from process plumbing for testability.
//!
//! "If all agree, then the contents of one of the buffers are sent to
//! standard output ... if not all of the buffers agree ... The voter then
//! chooses an output buffer agreed upon by at least two replicas and sends
//! that to standard out. Two replicas suffice, because the odds are slim
//! that two randomized replicas with memory errors would return the same
//! result."

/// Result of voting on one round of chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkVote {
    /// A quorum (≥ 2, or the lone survivor) agreed; commit these bytes.
    Commit(Vec<u8>),
    /// No two live replicas agreed: terminate (detected divergence).
    Divergence,
    /// Every live replica has ended its stream.
    AllDone,
}

/// Tracks live replicas across voting rounds and kills disagreeing ones.
#[derive(Debug, Clone)]
pub struct Voter {
    alive: Vec<bool>,
    killed: Vec<usize>,
}

impl Voter {
    /// A voter over `n` replicas, all initially live.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            alive: vec![true; n],
            killed: Vec::new(),
        }
    }

    /// Marks a replica dead (crashed before voting).
    pub fn kill(&mut self, idx: usize) {
        if idx < self.alive.len() && self.alive[idx] {
            self.alive[idx] = false;
            self.killed.push(idx);
        }
    }

    /// Number of currently live replicas.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Whether replica `idx` is still live.
    #[must_use]
    pub fn is_alive(&self, idx: usize) -> bool {
        idx < self.alive.len() && self.alive[idx]
    }

    /// Indices of replicas killed so far, in kill order.
    #[must_use]
    pub fn killed(&self) -> Vec<usize> {
        self.killed.clone()
    }

    /// Votes on one chunk round. `ballots[i]` is replica `i`'s chunk, or
    /// `None` when its stream has ended. Dead replicas' ballots are
    /// ignored. Replicas that lose the vote are killed ("A replica that
    /// has generated anomalous output is no longer useful").
    pub fn vote(&mut self, ballots: &[Option<&[u8]>]) -> ChunkVote {
        let live: Vec<usize> = (0..self.alive.len()).filter(|&i| self.alive[i]).collect();
        if live.is_empty() {
            return ChunkVote::AllDone;
        }
        // Streams that ended vote an "end" ballot; if everyone ended, done.
        if live.iter().all(|&i| ballots[i].is_none()) {
            return ChunkVote::AllDone;
        }
        if live.len() == 1 {
            // Lone survivor: pass through (stand-alone degenerate case).
            return match ballots[live[0]] {
                Some(bytes) => ChunkVote::Commit(bytes.to_vec()),
                None => ChunkVote::AllDone,
            };
        }
        // Group live ballots (None = "ended" is its own group).
        let mut groups: Vec<(Vec<usize>, Option<&[u8]>)> = Vec::new();
        for &i in &live {
            let b = ballots[i];
            match groups.iter_mut().find(|(_, g)| *g == b) {
                Some((members, _)) => members.push(i),
                None => groups.push((vec![i], b)),
            }
        }
        groups.sort_by_key(|(members, _)| core::cmp::Reverse(members.len()));
        let (winners, winning) = groups[0].clone();
        // A quorum must be a *strict* plurality: on a tie (2-2 with four
        // replicas, 2-2-1 with five) no group is distinguishable from the
        // others, so committing either would be arbitrary — report the
        // divergence instead of guessing.
        let tied = groups.len() > 1 && groups[1].0.len() == winners.len();
        if winners.len() < 2 || tied {
            return ChunkVote::Divergence;
        }
        // Kill the losers.
        for &i in &live {
            if !winners.contains(&i) {
                self.kill(i);
            }
        }
        match winning {
            Some(bytes) => ChunkVote::Commit(bytes.to_vec()),
            // The quorum agreed the stream is over.
            None => ChunkVote::AllDone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_commit() {
        let mut v = Voter::new(3);
        let out = v.vote(&[Some(b"abc"), Some(b"abc"), Some(b"abc")]);
        assert_eq!(out, ChunkVote::Commit(b"abc".to_vec()));
        assert_eq!(v.live_count(), 3);
    }

    #[test]
    fn majority_kills_minority() {
        let mut v = Voter::new(3);
        let out = v.vote(&[Some(b"abc"), Some(b"xyz"), Some(b"abc")]);
        assert_eq!(out, ChunkVote::Commit(b"abc".to_vec()));
        assert_eq!(v.live_count(), 2);
        assert_eq!(v.killed(), vec![1]);
    }

    #[test]
    fn all_disagree_is_divergence() {
        let mut v = Voter::new(3);
        let out = v.vote(&[Some(b"a"), Some(b"b"), Some(b"c")]);
        assert_eq!(out, ChunkVote::Divergence);
    }

    #[test]
    fn killed_replicas_do_not_vote() {
        let mut v = Voter::new(3);
        v.kill(0);
        // Remaining two agree: commit. (Two replicas suffice, §5.2.)
        let out = v.vote(&[Some(b"junk"), Some(b"ok"), Some(b"ok")]);
        assert_eq!(out, ChunkVote::Commit(b"ok".to_vec()));
    }

    #[test]
    fn two_survivors_disagreeing_is_divergence() {
        let mut v = Voter::new(3);
        v.kill(2);
        let out = v.vote(&[Some(b"a"), Some(b"b"), Some(b"ignored")]);
        assert_eq!(out, ChunkVote::Divergence);
    }

    #[test]
    fn lone_survivor_passes_through() {
        let mut v = Voter::new(3);
        v.kill(0);
        v.kill(1);
        let out = v.vote(&[None, None, Some(b"solo")]);
        assert_eq!(out, ChunkVote::Commit(b"solo".to_vec()));
    }

    #[test]
    fn ended_streams_terminate_cleanly() {
        let mut v = Voter::new(3);
        assert_eq!(v.vote(&[None, None, None]), ChunkVote::AllDone);
    }

    #[test]
    fn short_stream_outvoted_by_longer_majority() {
        // Two replicas still produce data; one ended early: the enders
        // lose 2-1 and are killed.
        let mut v = Voter::new(3);
        let out = v.vote(&[Some(b"more"), Some(b"more"), None]);
        assert_eq!(out, ChunkVote::Commit(b"more".to_vec()));
        assert_eq!(v.killed(), vec![2]);
    }

    #[test]
    fn two_two_tie_is_divergence() {
        // Four replicas split 2-2: no strict plurality, so committing
        // either group would be arbitrary. Nobody is killed — the run
        // terminates on the reported divergence.
        let mut v = Voter::new(4);
        let out = v.vote(&[Some(b"aa"), Some(b"bb"), Some(b"aa"), Some(b"bb")]);
        assert_eq!(out, ChunkVote::Divergence);
        assert_eq!(v.live_count(), 4);
    }

    #[test]
    fn two_two_one_tie_is_divergence() {
        let mut v = Voter::new(5);
        let out = v.vote(&[
            Some(b"aa"),
            Some(b"bb"),
            Some(b"aa"),
            Some(b"bb"),
            Some(b"cc"),
        ]);
        assert_eq!(out, ChunkVote::Divergence);
        assert_eq!(v.live_count(), 5);
    }

    #[test]
    fn three_two_strict_plurality_commits() {
        let mut v = Voter::new(5);
        let out = v.vote(&[
            Some(b"aa"),
            Some(b"bb"),
            Some(b"aa"),
            Some(b"bb"),
            Some(b"aa"),
        ]);
        assert_eq!(out, ChunkVote::Commit(b"aa".to_vec()));
        assert_eq!(v.killed(), vec![1, 3]);
    }

    #[test]
    fn double_kill_is_idempotent() {
        let mut v = Voter::new(3);
        v.kill(1);
        v.kill(1);
        assert_eq!(v.killed(), vec![1]);
        assert_eq!(v.live_count(), 2);
    }
}
