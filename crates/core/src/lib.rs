//! # diehard-core
//!
//! A from-scratch Rust implementation of the **DieHard** randomized memory
//! manager from *DieHard: Probabilistic Memory Safety for Unsafe Languages*
//! (Berger & Zorn, PLDI 2006).
//!
//! DieHard approximates an *infinite heap* — one where objects are never
//! reused and live infinitely far apart, so buffer overflows and dangling
//! pointers are benign — with a heap `M` times larger than required:
//! objects are placed **uniformly at random** within twelve power-of-two
//! size-class regions, each capped at `1/M` fullness; heap metadata is fully
//! segregated from the heap; and frees are validated and *ignored* when
//! invalid. The result is **probabilistic memory safety**: exact, computable
//! probabilities of surviving buffer overflows and dangling-pointer errors,
//! and (with replicas) of detecting uninitialized reads.
//!
//! ## Layout of this crate
//!
//! * [`rng`] — Marsaglia multiply-with-carry generator (§4.1).
//! * [`bitmap`] — one-bit-per-object allocation bitmaps (§4.1).
//! * [`size_class`] — the twelve 8 B…16 KB classes (§4.1).
//! * [`partition`] — per-class random probing and the `1/M` cap (§4.2).
//! * [`engine`] — [`engine::HeapCore`], `DieHardMalloc`/`DieHardFree` over
//!   abstract byte offsets, shared by the simulated and real heaps.
//! * [`large`] — the large-object validity table (§4.1–4.3).
//! * [`safe_str`] — heap-bounded `strcpy`/`strncpy` (§4.4).
//! * [`env`] — audited parsing for the `DIEHARD_*` environment knobs.
//! * [`analysis`] — Theorems 1–3 and the expectation formulas (§3.1, §6).
//! * [`adaptive`] — the adaptive-growth variant from future work (§9).
//! * [`sync`] — allocation-free [`sync::SpinLock`] and [`sync::OnceCell`].
//! * [`sharded`] — [`sharded::ShardedHeap`], the thread-safe heap with one
//!   lock per size class (concurrent allocations in different classes never
//!   contend).
//! * [`magazine`] — [`magazine::MagazineHeap`], thread-local allocation
//!   magazines in front of the sharded heap: batched, probe-loop-sampled
//!   refills and buffered frees, so same-class allocations from different
//!   threads stop contending too.
//! * [`global`] *(feature `global`, Unix)* — a real `#[global_allocator]`
//!   built on `mmap`, with guard-paged large objects, sharded per class.
//!
//! ## Quick start
//!
//! ```
//! use diehard_core::{config::HeapConfig, engine::HeapCore};
//!
//! let mut heap = HeapCore::new(HeapConfig::default(), 0xD1E_4A8D)?;
//! let slot = heap.alloc(48).expect("plenty of room");
//! assert_eq!(slot.size(), 64); // rounded to the class size
//! let offset = heap.offset_of(slot);
//!
//! // Erroneous frees are ignored, not fatal:
//! assert!(!heap.free_at(offset + 1).freed()); // misaligned: ignored
//! assert!(heap.free_at(offset).freed());      // valid free
//! assert!(!heap.free_at(offset).freed());     // double free: ignored
//! # Ok::<(), diehard_core::config::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod analysis;
pub mod bitmap;
pub mod config;
pub mod engine;
pub mod env;
pub mod large;
pub mod magazine;
pub mod partition;
pub mod rng;
pub mod safe_str;
pub mod sharded;
pub mod size_class;
pub mod sync;

#[cfg(all(feature = "global", unix))]
pub mod global;

pub use config::{FillPolicy, HeapConfig, HeapGeometry};
pub use engine::{AllocOutcome, AtomicHeapStats, FreeOutcome, HeapCore, HeapStats, Slot};
pub use magazine::{MagazineCache, MagazineHeap, ThreadMagazines};
pub use rng::Mwc;
pub use sharded::ShardedHeap;
pub use size_class::SizeClass;
pub use sync::{OnceCell, SpinGuard, SpinLock};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_where_expected() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::engine::HeapCore>();
        assert_send::<crate::rng::Mwc>();
        assert_send::<crate::bitmap::Bitmap>();
        assert_send::<crate::large::LargeTable>();
    }

    #[test]
    fn sharded_heap_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<crate::sharded::ShardedHeap>();
        assert_sync::<crate::engine::AtomicHeapStats>();
        assert_sync::<crate::sync::SpinLock<u64>>();
    }
}
