//! Replication-cost bench (§7.2.3 companion): one program, k ∈ {1, 3, 16}
//! replicas, serial vs parallel execution of the replica set, plus the
//! voting machinery in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_core::config::HeapConfig;
use diehard_runtime::ReplicaSet;
use diehard_workloads::profile_by_name;

fn bench_replica_counts(c: &mut Criterion) {
    let prog = profile_by_name("espresso")
        .expect("espresso")
        .generate(0.02, 0x9E9);
    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [1usize, 3, 16] {
        let set = ReplicaSet::new(k, 0xFEED, HeapConfig::default());
        group.bench_with_input(BenchmarkId::new("serial", k), &set, |b, set| {
            b.iter(|| set.run(&prog));
        });
        group.bench_with_input(BenchmarkId::new("parallel", k), &set, |b, set| {
            b.iter(|| set.run_parallel(&prog));
        });
    }
    group.finish();
}

fn bench_random_fill_cost(c: &mut Criterion) {
    use diehard_core::config::FillPolicy;
    use diehard_sim::{DieHardSimHeap, SimAllocator};

    // The replicated allocator's extra cost: filling allocations with
    // random values (§4.2).
    let mut group = c.benchmark_group("fill_policy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, fill) in [("none", FillPolicy::None), ("random", FillPolicy::Random)] {
        group.bench_function(name, |b| {
            let cfg = HeapConfig::default().with_fill(fill);
            let mut heap = DieHardSimHeap::new(cfg, 5).unwrap();
            b.iter(|| {
                let p = heap.malloc(256, &[]).unwrap().unwrap();
                heap.free(p).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replica_counts, bench_random_fill_cost);
criterion_main!(benches);
