//! Value-generation strategies: ranges, tuples, `Just`, `any`, unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce random values of one type.
///
/// Object-safe so [`Union`] (backing `prop_oneof!`) can hold mixed
/// strategies behind `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Include both endpoints with small point mass so boundary
        // behaviour (0.0 and 1.0 probabilities, full heaps) gets tested.
        match rng.below(32) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed strategies; backs `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}
