//! §6.3 / Theorem 3: probability of detecting uninitialized reads across
//! replicas — the analytic values (including the counter-intuitive drop
//! from 3 to 4 replicas) plus two Monte Carlo validations: a bit-level
//! simulation of the theorem's model, and an end-to-end run of the actual
//! replicated voter on a program with a real uninitialized read.
//!
//! Run: `cargo run --release -p diehard-bench --bin uninit`

use diehard_bench::{pct, TextTable};
use diehard_core::analysis::p_uninit_detect;
use diehard_core::config::HeapConfig;
use diehard_core::rng::Mwc;
use diehard_runtime::ops::{Op, Program};
use diehard_runtime::{ReplicaSet, ReplicatedOutcome};

const BIT_TRIALS: usize = 50_000;
const E2E_TRIALS: usize = 400;

/// Theorem 3's model, simulated directly: k replicas each fill B bits
/// uniformly at random; the read is detected iff all values are pairwise
/// distinct.
fn bit_trial(bits: u32, k: usize, rng: &mut Mwc) -> bool {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut seen = Vec::with_capacity(k);
    for _ in 0..k {
        let v = rng.next_u64() & mask;
        if seen.contains(&v) {
            return false;
        }
        seen.push(v);
    }
    true
}

/// End-to-end: a program whose output depends on `bytes` uninitialized
/// bytes, run under the replicated voter. Detection = divergence.
fn e2e_trial(bytes: usize, k: usize, master_seed: u64) -> bool {
    let prog = Program::new(
        "uninit-probe",
        vec![
            Op::Alloc { id: 0, size: 64 },
            Op::Read {
                id: 0,
                offset: 0,
                len: bytes,
            },
        ],
    );
    let set = ReplicaSet::new(k, master_seed, HeapConfig::default());
    matches!(set.run(&prog).outcome, ReplicatedOutcome::Divergence { .. })
}

fn main() {
    println!("§6.3 — Probability of Detecting Uninitialized Reads (Theorem 3)\n");

    let mut table = TextTable::new(vec!["bits (B)", "replicas (k)", "analytic", "bit-level MC"]);
    let mut rng = Mwc::seeded(0x0121);
    for &bits in &[4u32, 8, 16] {
        for &k in &[3usize, 4, 5, 6] {
            let analytic = p_uninit_detect(bits, k as u32);
            let trials = diehard_bench::smoke_scaled(BIT_TRIALS, 2000);
            let hits = (0..trials).filter(|_| bit_trial(bits, k, &mut rng)).count();
            table.row(vec![
                bits.to_string(),
                k.to_string(),
                pct(analytic),
                pct(hits as f64 / trials as f64),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Paper anchors: B=4, k=3 → 82%; B=4, k=4 → 66.7%; B=16, k=3 → 99.995%.\n");

    println!(
        "End-to-end: replicated DieHard (random fill + 4 KB voting) on a program\n\
         that reads B uninitialized bits; detection = voter divergence.\n"
    );
    let mut e2e = TextTable::new(vec![
        "bits (B)",
        "replicas (k)",
        "analytic",
        "replicated-voter MC",
    ]);
    for &bytes in &[1usize, 2] {
        let bits = (bytes * 8) as u32;
        for &k in &[3usize, 4] {
            let analytic = p_uninit_detect(bits, k as u32);
            let trials = diehard_bench::smoke_scaled(E2E_TRIALS, 20);
            let hits = (0..trials as u64)
                .filter(|&t| e2e_trial(bytes, k, 0xE2E0 + t))
                .count();
            e2e.row(vec![
                bits.to_string(),
                k.to_string(),
                pct(analytic),
                pct(hits as f64 / trials as f64),
            ]);
        }
    }
    println!("{}", e2e.render());
    println!(
        "Note the §6.3 effect in both tables: adding a fourth replica *lowers*\n\
         detection probability for small B (more chances for two replicas to\n\
         agree by accident), while for B ≥ 16 the loss is negligible."
    );
}
