//! §4.2 / §3.1 expectations: allocation probe counts and object separation.
//!
//! * "The fact that the heap can only become 1/M full bounds the expected
//!   time to search for an unused slot to 1/(1 − 1/M). For example, for
//!   M = 2, the expected number of probes is two."
//! * "By placing objects uniformly at random across the heap, we get a
//!   minimum expected separation of E[minimum separation] = M − 1 objects."
//!
//! Run: `cargo run --release -p diehard-bench --bin probes`

use diehard_bench::TextTable;
use diehard_core::analysis::{expected_min_separation, expected_probes_at_cap};
use diehard_core::partition::Partition;
use diehard_core::rng::{splitmix, Mwc};
use diehard_core::size_class::SizeClass;

const CAPACITY: usize = 1 << 14;
const STEADY_OPS: usize = 200_000;

/// Measures steady-state probes/alloc with the region held at its cap, and
/// the mean free gap between live neighbours.
fn measure(m: f64, rng: &mut Mwc) -> (f64, f64) {
    let threshold = (CAPACITY as f64 / m) as usize;
    let mut part = Partition::new(
        SizeClass::from_index(0),
        CAPACITY,
        threshold,
        splitmix(rng.next_u64()),
    );
    let mut victim_rng = rng.split();
    let mut live = Vec::with_capacity(threshold);
    while let Some(idx) = part.alloc() {
        live.push(idx);
    }
    // Steady state at the cap: free one, allocate one.
    let (a0, p0) = part.probe_stats();
    for _ in 0..diehard_bench::smoke_scaled(STEADY_OPS, 20_000) {
        let victim = live.swap_remove(victim_rng.below(live.len()));
        part.free(victim);
        live.push(part.alloc().expect("slot just freed"));
    }
    let (a1, p1) = part.probe_stats();
    let probes = (p1 - p0) as f64 / (a1 - a0) as f64;
    let gap = part.mean_live_gap().expect("many live objects");
    (probes, gap)
}

fn main() {
    println!("§4.2 / §3.1 — Expected probes per allocation and object separation\n");
    let mut table = TextTable::new(vec![
        "M",
        "E[probes] = 1/(1-1/M)",
        "measured probes",
        "E[min separation] = M-1",
        "measured mean gap",
    ]);
    let mut rng = Mwc::seeded(0x9806E5);
    for &m in &[4.0 / 3.0, 2.0, 4.0, 8.0] {
        let (probes, gap) = measure(m, &mut rng);
        table.row(vec![
            format!("{m:.2}"),
            format!("{:.3}", expected_probes_at_cap(m)),
            format!("{probes:.3}"),
            format!("{:.3}", expected_min_separation(m)),
            format!("{gap:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("Paper anchor: M = 2 ⇒ expected probes = 2; expected separation = 1 object.");
}
