//! Drives the installed `diehard` launcher binary end to end.

#![cfg(unix)]

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn launcher_votes_and_passes_output_through() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let mut child = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "tr a-z A-Z"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn diehard launcher");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"voted output\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(out.stdout, b"VOTED OUTPUT\n");
}

#[test]
fn launcher_reports_divergence_with_exit_code_2() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args(["-n", "3", "--", "/bin/sh", "-c", "echo $DIEHARD_SEED"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("run diehard launcher");
    assert_eq!(out.status.code(), Some(2), "divergence exit code");
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverged"));
}

#[test]
fn launcher_usage_on_bad_args() {
    let bin = env!("CARGO_BIN_EXE_diehard");
    let out = Command::new(bin)
        .args(["-n", "2", "--", "cat"]) // 2 replicas: rejected
        .stdin(Stdio::null())
        .output()
        .expect("run diehard launcher");
    assert_eq!(out.status.code(), Some(1));
}
