//! Allocator microbenchmarks: malloc/free churn across DieHard and every
//! baseline, on identical op sequences, plus the cost of DieHard's free
//! validation (§4.3) including the ignored erroneous kinds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diehard_baselines::{BdwGcSim, LeaSimAllocator, WindowsSimAllocator};
use diehard_core::config::HeapConfig;
use diehard_core::rng::Mwc;
use diehard_sim::{DieHardSimHeap, SimAllocator};
use std::hint::black_box;

const SPAN: usize = 64 << 20;
const OPS: usize = 2000;

/// A fixed malloc/free churn: allocate into a window, free the oldest.
fn churn<A: SimAllocator>(alloc: &mut A, sizes: &[usize]) {
    let mut live: Vec<usize> = Vec::with_capacity(80);
    for (i, &sz) in sizes.iter().cycle().take(OPS).enumerate() {
        if let Ok(Some(p)) = alloc.malloc(sz, &[]) {
            live.push(p);
        }
        if live.len() > 64 {
            let victim = live.remove(i % 32);
            let _ = alloc.free(victim);
        }
    }
    for p in live {
        let _ = alloc.free(p);
    }
}

fn sizes_for(pattern: &str) -> Vec<usize> {
    let mut rng = Mwc::seeded(0xBEAC4);
    match pattern {
        "small" => (0..64).map(|_| 8 + rng.below(56)).collect(),
        "mixed" => (0..64).map(|_| 8 + rng.below(2040)).collect(),
        "large" => (0..64).map(|_| 1024 + rng.below(15_360)).collect(),
        _ => unreachable!(),
    }
}

fn bench_alloc_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_churn");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for pattern in ["small", "mixed", "large"] {
        let sizes = sizes_for(pattern);
        group.bench_with_input(BenchmarkId::new("diehard", pattern), &sizes, |b, sizes| {
            b.iter(|| {
                let mut a = DieHardSimHeap::new(HeapConfig::default(), 1).unwrap();
                churn(&mut a, black_box(sizes));
            });
        });
        group.bench_with_input(BenchmarkId::new("lea", pattern), &sizes, |b, sizes| {
            b.iter(|| {
                let mut a = LeaSimAllocator::new(SPAN);
                churn(&mut a, black_box(sizes));
            });
        });
        group.bench_with_input(BenchmarkId::new("windows", pattern), &sizes, |b, sizes| {
            b.iter(|| {
                let mut a = WindowsSimAllocator::new(SPAN);
                churn(&mut a, black_box(sizes));
            });
        });
        group.bench_with_input(BenchmarkId::new("bdw-gc", pattern), &sizes, |b, sizes| {
            b.iter(|| {
                let mut a = BdwGcSim::new(SPAN);
                churn(&mut a, black_box(sizes));
            });
        });
    }
    group.finish();
}

/// Free-validation cost: valid frees vs the ignored erroneous kinds.
fn bench_free_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("free_validation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("diehard_valid_free", |b| {
        let mut heap = DieHardSimHeap::new(HeapConfig::default(), 2).unwrap();
        b.iter(|| {
            let p = heap.malloc(64, &[]).unwrap().unwrap();
            heap.free(black_box(p)).unwrap();
        });
    });
    group.bench_function("diehard_double_free_ignored", |b| {
        let mut heap = DieHardSimHeap::new(HeapConfig::default(), 3).unwrap();
        let p = heap.malloc(64, &[]).unwrap().unwrap();
        heap.free(p).unwrap();
        b.iter(|| heap.free(black_box(p)).unwrap());
    });
    group.bench_function("diehard_wild_free_ignored", |b| {
        let mut heap = DieHardSimHeap::new(HeapConfig::default(), 4).unwrap();
        b.iter(|| heap.free(black_box(0xDEAD_BEEF)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_alloc_churn, bench_free_validation);
criterion_main!(benches);
