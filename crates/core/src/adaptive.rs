//! Adaptive region growth — the paper's principal "future directions" item
//! (§9): "We plan to investigate an adaptive version of DieHard that grows
//! memory regions dynamically as objects are allocated."
//!
//! [`AdaptiveHeap`] starts each size-class region at a small slot count and
//! doubles it whenever the region hits its `1/M` cap, up to the configured
//! maximum. Object *addresses* are stable across growth: the region's
//! virtual span is reserved at the maximum size up front and only the
//! probing range (and therefore the live-data density) changes — exactly
//! the trade-off the paper describes, protection proportional to the
//! *current* region size rather than the maximum.

use crate::config::{ConfigError, HeapConfig, HeapGeometry};
use crate::engine::{locate_free, slot_offset, FreeOutcome, Slot};
use crate::partition::Partition;
use crate::rng::stream_seed;
use crate::size_class::SizeClass;

/// Default fraction of the maximum capacity each region starts at.
pub const DEFAULT_INITIAL_FRACTION: usize = 64;

/// `log2` of [`DEFAULT_INITIAL_FRACTION`], the form
/// [`HeapGeometry::new_elastic`] consumes.
pub const DEFAULT_INITIAL_FRACTION_LOG2: u32 = DEFAULT_INITIAL_FRACTION.trailing_zeros();

/// A DieHard heap whose regions grow on demand (future-work variant, §9).
///
/// # Examples
///
/// ```
/// use diehard_core::{adaptive::AdaptiveHeap, config::HeapConfig};
///
/// let mut heap = AdaptiveHeap::new(HeapConfig::default(), 7)?;
/// let before = heap.committed_slots(diehard_core::size_class::SizeClass::from_index(0));
/// for _ in 0..before {
///     heap.alloc(8);
/// }
/// let after = heap.committed_slots(diehard_core::size_class::SizeClass::from_index(0));
/// assert!(after > before, "region grew under pressure");
/// # Ok::<(), diehard_core::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct AdaptiveHeap {
    geometry: HeapGeometry,
    partitions: Vec<Partition>,
    growths: u64,
}

impl AdaptiveHeap {
    /// Creates an adaptive heap; every region starts at `1/64` of its
    /// maximum slot count (at least enough for one object at the cap,
    /// rounded up to a power of two). Power-of-two starts matter: they keep
    /// the partitions on the strength-reduced shift probe draw through
    /// every doubling instead of falling back to the widening-multiply
    /// `below`, and they make single-threaded adaptive histories
    /// bit-identical to an elastic [`crate::sharded::ShardedHeap`] started
    /// at the same fraction.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, ConfigError> {
        let geometry = HeapGeometry::new_elastic(config, DEFAULT_INITIAL_FRACTION_LOG2)?;
        let partitions = SizeClass::all()
            .map(|c| {
                Partition::new(
                    c,
                    geometry.initial_capacity(c),
                    geometry.initial_threshold(c),
                    stream_seed(seed, c.index() as u64),
                )
            })
            .collect();
        Ok(Self {
            geometry,
            partitions,
            growths: 0,
        })
    }

    /// The heap's configuration (region sizes are *maximums* here).
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        self.geometry.config()
    }

    /// Currently committed slot count for `class` (grows over time).
    #[must_use]
    pub fn committed_slots(&self, class: SizeClass) -> usize {
        self.partitions[class.index()].capacity()
    }

    /// Committed bytes across all regions — the adaptive variant's memory
    /// footprint, compared against the fixed heap in the ablation bench.
    #[must_use]
    pub fn committed_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.capacity() * p.class().object_size())
            .sum()
    }

    /// Number of doubling events so far.
    #[must_use]
    pub fn growth_events(&self) -> u64 {
        self.growths
    }

    /// Currently live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.partitions.iter().map(Partition::in_use).sum()
    }

    /// Allocates `size` bytes, doubling the region first when it is at its
    /// `1/M` cap. Returns `None` only for zero/oversized requests or once
    /// the region has reached its configured maximum *and* is full.
    pub fn alloc(&mut self, size: usize) -> Option<Slot> {
        let class = SizeClass::for_size(size)?;
        let max_cap = self.geometry.capacity(class);
        let p = &mut self.partitions[class.index()];
        if p.at_threshold() && p.capacity() < max_cap {
            let new_cap = (p.capacity() * 2).min(max_cap);
            let new_threshold = self.geometry.config().threshold_for(new_cap).max(1);
            p.grow(new_cap, new_threshold);
            self.growths += 1;
        }
        let index = self.partitions[class.index()].alloc()?;
        Some(Slot { class, index })
    }

    /// Byte offset of `slot` within the (maximum) heap span; stable across
    /// growth because regions are laid out at their maximum spacing.
    #[must_use]
    pub fn offset_of(&self, slot: Slot) -> usize {
        slot_offset(&self.geometry, slot)
    }

    /// Validated free, identical to the fixed heap's pipeline (§4.3) —
    /// shift/mask arithmetic, with the extra check that the slot falls
    /// inside the region's currently committed prefix.
    pub fn free_at(&mut self, offset: usize) -> FreeOutcome {
        let Slot { class, index } = match locate_free(&self.geometry, offset) {
            Ok(slot) => slot,
            Err(outcome) => return outcome,
        };
        let p = &mut self.partitions[class.index()];
        if index < p.capacity() && p.free(index) {
            FreeOutcome::Freed(Slot { class, index })
        } else {
            FreeOutcome::NotAllocated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn heap(seed: u64) -> AdaptiveHeap {
        AdaptiveHeap::new(HeapConfig::default(), seed).unwrap()
    }

    #[test]
    fn starts_small() {
        let h = heap(1);
        let c0 = SizeClass::from_index(0);
        let max = h.config().capacity(c0);
        assert!(h.committed_slots(c0) <= max / DEFAULT_INITIAL_FRACTION + 2);
        assert!(h.committed_bytes() < HeapConfig::default().heap_span() / 16);
    }

    #[test]
    fn start_capacities_are_pow2_for_the_shift_draw() {
        // A non-dyadic multiplier used to produce non-pow2 starts (e.g. a
        // minimum of 3 slots), dropping those partitions onto the slower
        // `below` fallback draw. Every start — and therefore every doubling
        // of it — must now be a power of two.
        for cfg in [
            HeapConfig::default(),
            HeapConfig::default().with_multiplier(3.0),
            HeapConfig::default().with_multiplier(4.0 / 3.0),
        ] {
            let h = AdaptiveHeap::new(cfg, 9).unwrap();
            for c in SizeClass::all() {
                assert!(
                    h.committed_slots(c).is_power_of_two(),
                    "class {} starts at non-pow2 {}",
                    c.index(),
                    h.committed_slots(c)
                );
            }
        }
    }

    #[test]
    fn grows_under_pressure_and_addresses_stay_valid() {
        let mut h = heap(2);
        let c0 = SizeClass::from_index(0);
        let start = h.committed_slots(c0);
        let mut offsets = Vec::new();
        for _ in 0..start * 2 {
            let slot = h.alloc(8).expect("adaptive heap must grow, not fail");
            offsets.push(h.offset_of(slot));
        }
        assert!(h.committed_slots(c0) > start);
        assert!(h.growth_events() > 0);
        // All earlier offsets still free correctly after growth.
        for off in offsets {
            assert!(h.free_at(off).freed(), "offset {off} should still be live");
        }
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn growth_capped_at_configured_maximum() {
        let cfg = HeapConfig::default().with_region_bytes(64 * 1024);
        let mut h = AdaptiveHeap::new(cfg.clone(), 3).unwrap();
        let c11 = SizeClass::from_index(11); // 16 KB: max capacity 4
        let max_cap = cfg.capacity(c11);
        let mut got = 0;
        for _ in 0..max_cap + 4 {
            if h.alloc(16 * 1024).is_some() {
                got += 1;
            }
        }
        assert_eq!(h.committed_slots(c11), max_cap);
        assert!(got <= max_cap);
        assert!(got >= max_cap / 2, "should serve up to the 1/M cap");
    }

    #[test]
    fn double_free_ignored() {
        let mut h = heap(4);
        let slot = h.alloc(64).unwrap();
        let off = h.offset_of(slot);
        assert!(h.free_at(off).freed());
        assert_eq!(h.free_at(off), FreeOutcome::NotAllocated);
    }

    #[test]
    fn offsets_disjoint_from_other_classes() {
        let mut h = heap(5);
        let a = h.alloc(8).unwrap();
        let b = h.alloc(16 * 1024).unwrap();
        let (oa, ob) = (h.offset_of(a), h.offset_of(b));
        assert!(oa < h.config().region_bytes);
        assert!(ob >= 11 * h.config().region_bytes);
    }

    proptest! {
        /// Under arbitrary alloc/free interleavings the adaptive heap never
        /// hands out overlapping objects, even across growth events.
        #[test]
        fn no_overlap_across_growth(seed in any::<u64>(), ops in proptest::collection::vec((any::<bool>(), 1usize..512), 1..300)) {
            let mut h = heap(seed);
            let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, size)
            let mut rng = crate::rng::Mwc::seeded(seed);
            for (do_alloc, sz) in ops {
                if do_alloc || live.is_empty() {
                    if let Some(slot) = h.alloc(sz) {
                        let off = h.offset_of(slot);
                        for &(o, s) in &live {
                            prop_assert!(off + slot.size() <= o || o + s <= off,
                                "overlap at {off}");
                        }
                        live.push((off, slot.size()));
                    }
                } else {
                    let (off, _) = live.swap_remove(rng.below(live.len()));
                    prop_assert!(h.free_at(off).freed());
                }
            }
        }
    }
}
