//! The real thing: DieHard as this process's `#[global_allocator]`.
//!
//! Every `Box`, `Vec`, `String`, and `HashMap` below is served by the
//! randomized mmap-backed DieHard heap — the Rust analogue of the paper's
//! `LD_PRELOAD` interposition (§5.1). The example then exercises C-style
//! entry points to show the §4.3 free validation and §4.4 bounded string
//! functions working on real memory.
//!
//! Run: `cargo run --example global_alloc`
//! Environment: `DIEHARD_SEED`, `DIEHARD_REGION_MB`, `DIEHARD_M`.

#[cfg(unix)]
mod unix_demo {
    use diehard::core::global::DieHard;
    use std::collections::HashMap;

    #[global_allocator]
    static DIEHARD: DieHard = DieHard::new();

    pub fn main() {
        println!("== Rust running on the DieHard global allocator ==\n");

        // Ordinary Rust data structures, randomized placement underneath.
        let mut v: Vec<u64> = (0..10_000).collect();
        v.retain(|x| x % 3 == 0);
        let mut map: HashMap<String, usize> = HashMap::new();
        for word in [
            "probabilistic",
            "memory",
            "safety",
            "for",
            "unsafe",
            "languages",
        ] {
            map.insert(word.repeat(3), word.len());
        }
        let joined: String = map.keys().cloned().collect::<Vec<_>>().join("-");
        println!(
            "vec retained {} elements; map holds {} keys; joined len {}",
            v.len(),
            map.len(),
            joined.len()
        );
        println!(
            "live small objects in the DieHard heap: {}",
            DIEHARD.live_objects()
        );

        // C-style API with full §4.3 validation.
        let p = DIEHARD.malloc(48);
        assert!(!p.is_null());
        DIEHARD.free(p.wrapping_add(4)); // interior pointer: ignored
        DIEHARD.free(p);
        DIEHARD.free(p); // double free: ignored
        let stats = DIEHARD.stats();
        println!(
            "\nC-style traffic: {} allocs, {} frees, {} erroneous frees ignored",
            stats.allocs, stats.frees, stats.ignored_frees
        );

        // §4.4: DieHard's strcpy clamps to the true object bound.
        let dst = DIEHARD.malloc(8);
        let neighbor = DIEHARD.malloc(8);
        // SAFETY: both are live 8-byte heap objects; the source is
        // NUL-terminated.
        unsafe {
            neighbor.write_bytes(0x5A, 8);
            let long = b"this would smash eight bytes\0";
            let copied = DIEHARD.strcpy(dst, long.as_ptr());
            println!(
                "\nbounded strcpy copied {copied} bytes into an 8-byte object \
                 (truncated, neighbour untouched: {})",
                (0..8).all(|i| *neighbor.add(i) == 0x5A)
            );
        }
        DIEHARD.free(dst);
        DIEHARD.free(neighbor);

        // Large objects get guard pages; goodbye.
        let big = DIEHARD.malloc(1 << 20);
        assert!(!big.is_null());
        DIEHARD.free(big);
        println!("\n1 MB large object served via mmap with PROT_NONE guard pages: ok");
    }
}

#[cfg(unix)]
fn main() {
    unix_demo::main();
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the real DieHard global allocator requires a Unix platform");
}
