//! The paper's analytical model (§6): closed-form probabilities of avoiding
//! or detecting each class of memory error, plus the allocation-cost and
//! object-separation expectations of §3.1 and §4.2.
//!
//! These functions regenerate Figures 4(a) and 4(b) and the worked examples
//! in the text; the Monte Carlo experiments in `diehard-bench` validate them
//! empirically against the actual allocator.

/// Theorem 1 — probability of *masking* a buffer overflow.
///
/// "Let OverflowedObjects be the number of live objects overwritten by a
/// buffer overflow. Then for k ≠ 2, the probability of masking a buffer
/// overflow is P = 1 − (1 − (F/H)^O)^k."
///
/// `free_fraction` is F/H (1 − heap fullness), `overflow_objects` is O (the
/// number of objects' worth of bytes written), `replicas` is k.
///
/// # Panics
///
/// Panics if `free_fraction` is outside `[0, 1]`, or `replicas == 2` — the
/// paper's analysis excludes two replicas because the voter cannot break a
/// 1–1 tie (§6), or `replicas == 0`.
///
/// # Examples
///
/// ```
/// use diehard_core::analysis::p_overflow_mask;
///
/// // §6.1: a heap no more than 1/8 full masks a single-object overflow
/// // with probability 87.5% stand-alone…
/// assert!((p_overflow_mask(7.0 / 8.0, 1, 1) - 0.875).abs() < 1e-12);
/// // …and with more than 99% probability with three replicas.
/// assert!(p_overflow_mask(7.0 / 8.0, 1, 3) > 0.99);
/// ```
#[must_use]
pub fn p_overflow_mask(free_fraction: f64, overflow_objects: u32, replicas: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&free_fraction),
        "free_fraction {free_fraction} outside [0, 1]"
    );
    assert_valid_replicas(replicas);
    let single = free_fraction.powi(overflow_objects as i32);
    1.0 - (1.0 - single).powi(replicas as i32)
}

/// Theorem 2 — lower bound on the probability that a prematurely freed
/// object survives intact.
///
/// "Let Overwrites be the number of times that a particular freed object of
/// size S gets overwritten by one of the next A allocations. Then
/// P(Overwrites = 0) ≥ 1 − (A / (F/S))^k", valid for `A ≤ F/S` and k ≠ 2.
///
/// `intervening_allocs` is A, `free_slots` is Q = F/S (free space divided by
/// the object size, i.e. the number of slots in the object's region bitmap
/// that are free), `replicas` is k. When `A > Q` the bound degenerates to 0.
///
/// # Panics
///
/// Panics if `free_slots == 0` or `replicas` is 0 or 2.
#[must_use]
pub fn p_dangling_mask(intervening_allocs: u64, free_slots: u64, replicas: u32) -> f64 {
    assert!(free_slots > 0, "free_slots must be positive");
    assert_valid_replicas(replicas);
    if intervening_allocs >= free_slots {
        return 0.0;
    }
    let ratio = intervening_allocs as f64 / free_slots as f64;
    1.0 - ratio.powi(replicas as i32)
}

/// [`p_dangling_mask`] evaluated in the paper's default configuration
/// (384 MB heap, twelve 32 MB regions, M = 2 ⇒ at least half of each
/// region free), as plotted in Figure 4(b).
///
/// # Panics
///
/// Panics if `object_size` is not one of the twelve class sizes, or
/// `replicas` is 0 or 2.
///
/// # Examples
///
/// ```
/// use diehard_core::analysis::p_dangling_mask_default_config;
///
/// // §6.2: "greater than a 99.5% chance of masking an 8-byte object that
/// // was freed 10,000 allocations too soon."
/// assert!(p_dangling_mask_default_config(8, 10_000, 1) > 0.995);
/// ```
#[must_use]
pub fn p_dangling_mask_default_config(
    object_size: usize,
    intervening_allocs: u64,
    replicas: u32,
) -> f64 {
    use crate::config::HeapConfig;
    use crate::size_class::SizeClass;
    let class = SizeClass::for_size(object_size)
        .unwrap_or_else(|| panic!("{object_size} is not a small-object size"));
    assert_eq!(
        class.object_size(),
        object_size,
        "{object_size} is not an exact class size"
    );
    let cfg = HeapConfig::paper_default();
    // At the 1/M cap, free slots = capacity − threshold = capacity/2.
    let free_slots = (cfg.capacity(class) - cfg.threshold(class)) as u64;
    p_dangling_mask(intervening_allocs, free_slots, replicas)
}

/// Theorem 3 — probability of *detecting* an uninitialized read of `bits`
/// bits across `replicas` replicas (k > 2).
///
/// "P = (2^B)! / ((2^B − k)! · 2^(Bk))" — the probability that all k
/// replicas fill the B uninitialized bits with pairwise-distinct values, so
/// that all outputs disagree and the voter flags the read.
///
/// Computed as ∏_{i=0}^{k−1} (2^B − i)/2^B in log space, which is exact for
/// the small k of interest and never overflows for large B.
///
/// # Panics
///
/// Panics if `replicas < 3` (detection requires disagreement among at least
/// three voters) or `bits == 0`.
///
/// # Examples
///
/// ```
/// use diehard_core::analysis::p_uninit_detect;
///
/// // §6.3: four bits across three replicas ⇒ 82%; four replicas ⇒ 66.7%.
/// assert!((p_uninit_detect(4, 3) - 0.8203).abs() < 1e-3);
/// assert!((p_uninit_detect(4, 4) - 0.6665).abs() < 1e-3);
/// // Sixteen bits: 99.995% for three replicas.
/// assert!(p_uninit_detect(16, 3) > 0.9999);
/// ```
#[must_use]
pub fn p_uninit_detect(bits: u32, replicas: u32) -> f64 {
    assert!(replicas >= 3, "uninit detection requires k >= 3 replicas");
    assert!(bits > 0, "bits must be positive");
    let domain = (2f64).powi(bits as i32);
    if f64::from(replicas) > domain {
        // More replicas than distinct values: they cannot all differ.
        return 0.0;
    }
    // ln ∏ (domain − i)/domain = Σ ln(1 − i/domain); ln_1p keeps the terms
    // exact when i/domain underflows ordinary subtraction (large B).
    let mut ln_p = 0.0;
    for i in 0..replicas {
        ln_p += (-f64::from(i) / domain).ln_1p();
    }
    ln_p.exp().clamp(0.0, 1.0)
}

/// Expected probes per allocation when the region is `fullness` full
/// (§4.2): probing a bitmap where each probe independently hits a live slot
/// with probability `fullness` succeeds after 1/(1 − fullness) attempts in
/// expectation. At the `1/M` cap this is the paper's `1/(1 − 1/M)`;
/// "for M = 2, the expected number of probes is two".
///
/// # Panics
///
/// Panics if `fullness` is outside `[0, 1)`.
#[must_use]
pub fn expected_probes(fullness: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&fullness),
        "fullness {fullness} outside [0, 1)"
    );
    1.0 / (1.0 - fullness)
}

/// Expected probes at the fullness cap for expansion factor `m`.
///
/// # Panics
///
/// Panics if `m <= 1`.
#[must_use]
pub fn expected_probes_at_cap(m: f64) -> f64 {
    assert!(m > 1.0, "expansion factor must exceed 1");
    expected_probes(1.0 / m)
}

/// Expected minimum separation between live objects, in objects, for an
/// M-approximation of the infinite heap (§3.1): "a minimum expected
/// separation of E[minimum separation] = M − 1 objects, making overflows
/// smaller than M − 1 objects benign."
///
/// # Panics
///
/// Panics if `m < 1`.
#[must_use]
pub fn expected_min_separation(m: f64) -> f64 {
    assert!(m >= 1.0, "expansion factor must be at least 1");
    m - 1.0
}

fn assert_valid_replicas(replicas: u32) {
    assert!(replicas >= 1, "at least one replica required");
    assert!(
        replicas != 2,
        "the analysis excludes k = 2: the voter cannot break a 1-1 tie (§6)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // ---- Theorem 1 -------------------------------------------------------

    #[test]
    fn overflow_paper_values() {
        // Figure 4(a) anchor points (heap 1/8, 1/4, 1/2 full; O = 1).
        assert!((p_overflow_mask(0.875, 1, 1) - 0.875).abs() < 1e-12);
        assert!((p_overflow_mask(0.75, 1, 1) - 0.75).abs() < 1e-12);
        assert!((p_overflow_mask(0.5, 1, 1) - 0.5).abs() < 1e-12);
        // Three replicas at 1/8 full: > 99%.
        assert!(p_overflow_mask(0.875, 1, 3) > 0.99);
        // Six replicas at 1/2 full: 1 − (1/2)^6.
        assert!((p_overflow_mask(0.5, 1, 6) - (1.0 - 0.5f64.powi(6))).abs() < 1e-12);
    }

    #[test]
    fn overflow_larger_overflows_harder_to_mask() {
        let p1 = p_overflow_mask(0.5, 1, 1);
        let p4 = p_overflow_mask(0.5, 4, 1);
        assert!(p4 < p1);
        assert!((p4 - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn overflow_degenerate_fractions() {
        assert_eq!(p_overflow_mask(1.0, 5, 1), 1.0); // empty heap: always masked
        assert_eq!(p_overflow_mask(0.0, 1, 1), 0.0); // full heap: never masked
    }

    #[test]
    #[should_panic(expected = "k = 2")]
    fn overflow_rejects_two_replicas() {
        let _ = p_overflow_mask(0.5, 1, 2);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn overflow_rejects_bad_fraction() {
        let _ = p_overflow_mask(1.5, 1, 1);
    }

    // ---- Theorem 2 -------------------------------------------------------

    #[test]
    fn dangling_paper_value() {
        // 8-byte object, 10,000 intervening allocations, default config:
        // > 99.5% (§6.2).
        let p = p_dangling_mask_default_config(8, 10_000, 1);
        assert!(p > 0.995, "got {p}");
        // Exact: 1 − 10000/2097152.
        assert!((p - (1.0 - 10_000.0 / 2_097_152.0)).abs() < 1e-12);
    }

    #[test]
    fn dangling_saturates_when_allocs_exceed_slots() {
        assert_eq!(p_dangling_mask(100, 50, 1), 0.0);
        assert_eq!(p_dangling_mask(50, 50, 1), 0.0);
    }

    #[test]
    fn dangling_replicas_help() {
        let p1 = p_dangling_mask(1000, 4096, 1);
        let p3 = p_dangling_mask(1000, 4096, 3);
        assert!(p3 > p1);
    }

    #[test]
    fn dangling_larger_objects_riskier() {
        // Fewer slots for bigger classes ⇒ lower survival (Fig 4b shape).
        let small = p_dangling_mask_default_config(8, 1000, 1);
        let big = p_dangling_mask_default_config(256, 1000, 1);
        assert!(big < small);
    }

    #[test]
    #[should_panic(expected = "not an exact class size")]
    fn dangling_default_config_rejects_non_class_size() {
        let _ = p_dangling_mask_default_config(24, 100, 1);
    }

    // ---- Theorem 3 -------------------------------------------------------

    #[test]
    fn uninit_paper_values() {
        assert!((p_uninit_detect(4, 3) - 3360.0 / 4096.0).abs() < 1e-12);
        assert!((p_uninit_detect(4, 4) - 43_680.0 / 65_536.0).abs() < 1e-12);
        assert!(p_uninit_detect(16, 3) > 0.999_94);
        assert!(p_uninit_detect(16, 4) > 0.999_8);
    }

    #[test]
    fn uninit_more_replicas_lower_detection() {
        // The counter-intuitive drop the paper highlights in §6.3.
        assert!(p_uninit_detect(4, 4) < p_uninit_detect(4, 3));
    }

    #[test]
    fn uninit_replicas_exceeding_domain() {
        // 1 bit across 3 replicas: pigeonhole, cannot all differ.
        assert_eq!(p_uninit_detect(1, 3), 0.0);
    }

    #[test]
    fn uninit_large_b_stable() {
        let p = p_uninit_detect(512, 3);
        assert!(p > 0.999_999);
        assert!(p <= 1.0);
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn uninit_rejects_one_replica() {
        let _ = p_uninit_detect(4, 1);
    }

    // ---- Expectations ----------------------------------------------------

    #[test]
    fn probes_paper_value() {
        assert!((expected_probes_at_cap(2.0) - 2.0).abs() < 1e-12);
        assert!((expected_probes(0.0) - 1.0).abs() < 1e-12);
        assert!((expected_probes(0.75) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn separation_paper_value() {
        assert_eq!(expected_min_separation(2.0), 1.0);
        assert_eq!(expected_min_separation(8.0), 7.0);
        assert_eq!(expected_min_separation(1.0), 0.0);
    }

    // ---- Property tests --------------------------------------------------

    fn replica_counts() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), 3u32..=8]
    }

    proptest! {
        #[test]
        fn overflow_in_unit_interval(
            f in 0.0f64..=1.0,
            o in 1u32..8,
            k in replica_counts(),
        ) {
            let p = p_overflow_mask(f, o, k);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// More replicas can only help mask overflows.
        #[test]
        fn overflow_monotone_in_replicas(f in 0.01f64..0.99, o in 1u32..4) {
            let p1 = p_overflow_mask(f, o, 1);
            let p3 = p_overflow_mask(f, o, 3);
            let p6 = p_overflow_mask(f, o, 6);
            prop_assert!(p1 <= p3 + 1e-12);
            prop_assert!(p3 <= p6 + 1e-12);
        }

        /// An emptier heap can only help.
        #[test]
        fn overflow_monotone_in_free_fraction(
            a in 0.0f64..=1.0,
            b in 0.0f64..=1.0,
            k in replica_counts(),
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p_overflow_mask(lo, 1, k) <= p_overflow_mask(hi, 1, k) + 1e-12);
        }

        #[test]
        fn dangling_in_unit_interval(
            a in 0u64..100_000,
            q in 1u64..10_000_000,
            k in replica_counts(),
        ) {
            let p = p_dangling_mask(a, q, k);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// Waiting longer (more intervening allocations) can only hurt.
        #[test]
        fn dangling_monotone_in_allocs(
            a in 0u64..1000,
            d in 0u64..1000,
            q in 2000u64..100_000,
            k in replica_counts(),
        ) {
            prop_assert!(p_dangling_mask(a + d, q, k) <= p_dangling_mask(a, q, k) + 1e-12);
        }

        #[test]
        fn uninit_in_unit_interval(b in 1u32..64, k in 3u32..8) {
            let p = p_uninit_detect(b, k);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// More uninitialized bits ⇒ easier to detect.
        #[test]
        fn uninit_monotone_in_bits(b in 2u32..32, k in 3u32..6) {
            prop_assert!(p_uninit_detect(b, k) <= p_uninit_detect(b + 1, k) + 1e-12);
        }

        #[test]
        fn probes_at_least_one(f in 0.0f64..0.999) {
            prop_assert!(expected_probes(f) >= 1.0);
        }
    }
}
