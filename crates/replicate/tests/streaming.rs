//! Integration tests for the event-driven streaming voter: mid-stream
//! kills, bounded buffering over multi-megabyte streams, and a replicated
//! server-style trace from `diehard-workloads`.

#![cfg(unix)]

use diehard_replicate::{run_replicated, run_streamed, InputSource, LaunchConfig, CHUNK};
use diehard_workloads::server;
use std::time::{Duration, Instant};

fn sh(script: &str) -> Vec<String> {
    vec!["/bin/sh".into(), "-c".into(), script.into()]
}

/// Emits `$1` (a 16-char string) 256 times = exactly one 4096-byte chunk.
const EMIT_CHUNK: &str =
    r#"emit() { i=0; while [ $i -lt 256 ]; do printf %s "$1"; i=$((i+1)); done; }"#;

#[test]
fn outvoted_replica_is_killed_mid_stream() {
    // The bad replica diverges on chunk 0 and then sleeps for 30 s before
    // producing chunk 1. With barrier-at-a-time voting it is SIGKILLed the
    // moment chunk 0 loses 2-1, so the run finishes in milliseconds; the
    // old buffer-everything design waited out the full sleep.
    let mut cfg = LaunchConfig::new(
        3,
        sh(&format!(
            r#"{EMIT_CHUNK}
            if [ "$DIEHARD_SEED" = "7" ]; then
                emit BBBBBBBBBBBBBBBB; sleep 30; emit BBBBBBBBBBBBBBBB
            else
                emit GGGGGGGGGGGGGGGG; emit GGGGGGGGGGGGGGGG
            fi"#
        )),
        Vec::new(),
    );
    cfg.seeds = vec![1, 7, 2];
    let start = Instant::now();
    let exit = run_replicated(&cfg).unwrap();
    let elapsed = start.elapsed();
    assert!(!exit.diverged);
    assert_eq!(exit.killed, vec![1], "the diverging replica must be killed");
    assert_eq!(exit.output, vec![b'G'; 2 * CHUNK]);
    assert_eq!(exit.exit_code, Some(0));
    assert!(
        elapsed < Duration::from_secs(20),
        "loser must die at its losing barrier, not at stream end \
         (took {elapsed:?}; un-killed it would sleep 30 s)"
    );
}

#[test]
fn survivors_continue_after_mid_stream_kill() {
    // The loser is killed at chunk 1; the survivors stream five more
    // chunks that must all commit.
    let mut cfg = LaunchConfig::new(
        3,
        sh(&format!(
            r#"{EMIT_CHUNK}
            emit SSSSSSSSSSSSSSSS
            if [ "$DIEHARD_SEED" = "7" ]; then
                emit XXXXXXXXXXXXXXXX
            else
                emit YYYYYYYYYYYYYYYY
            fi
            for c in 1 2 3 4 5; do emit ZZZZZZZZZZZZZZZZ; done"#
        )),
        Vec::new(),
    );
    cfg.seeds = vec![3, 7, 4];
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert_eq!(exit.killed, vec![1]);
    let mut expected = vec![b'S'; CHUNK];
    expected.extend_from_slice(&vec![b'Y'; CHUNK]);
    expected.extend_from_slice(&vec![b'Z'; 5 * CHUNK]);
    assert_eq!(exit.output, expected, "survivors' later chunks must commit");
    assert_eq!(exit.exit_code, Some(0));
}

#[test]
fn megabyte_stream_is_voted_with_bounded_buffering() {
    // 2,000,000 identical bytes per replica. The engine must commit all of
    // them while never holding more than replicas × CHUNK bytes — the old
    // design's peak was the full 6 MB of replica output.
    let cfg = LaunchConfig::new(3, sh("yes 0123456789abcde | head -c 2000000"), Vec::new());
    let mut out = Vec::new();
    let outcome = run_streamed(&cfg, InputSource::Buffer(Vec::new()), &mut out).unwrap();
    assert!(!outcome.diverged);
    assert_eq!(out.len(), 2_000_000);
    assert_eq!(outcome.committed, 2_000_000);
    assert_eq!(outcome.exit_code, Some(0));
    assert!(outcome.killed.is_empty());
    assert!(
        outcome.peak_buffered <= 3 * CHUNK,
        "peak buffered {} exceeds the replicas × CHUNK = {} bound",
        outcome.peak_buffered,
        3 * CHUNK
    );
    // Spot-check content: `yes` repeats "0123456789abcde\n".
    assert_eq!(&out[..16], b"0123456789abcde\n");
    assert_eq!(&out[1_999_984..], b"0123456789abcde\n");
}

#[test]
fn replicated_server_trace_round_trips() {
    // A long interactive session: requests are broadcast through the
    // bounded input window while produce bursts stream back out through
    // the voter, both directions interleaved by the reactor.
    let requests = server::trace(0xD1E_5EED, 400);
    let input = server::request_stream(&requests);
    let expected = server::expected_output(&requests);
    assert!(expected.len() > 128 * 1024, "trace must span many barriers");

    let cfg = LaunchConfig::new(3, sh(server::SERVER_SCRIPT), input);
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert!(exit.killed.is_empty());
    assert_eq!(exit.exit_code, Some(0), "QUIT exits the server cleanly");
    assert_eq!(
        exit.output, expected,
        "voted stream must equal the deterministic server transcript"
    );
}

#[test]
fn agreed_stderr_is_voted_and_forwarded() {
    let cfg = LaunchConfig::new(
        3,
        sh("echo shared-diagnostic >&2; echo payload"),
        Vec::new(),
    );
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert_eq!(exit.output, b"payload\n");
    // The replicas' identical captures form a unanimous stderr ballot and
    // exactly one copy is forwarded.
    assert_eq!(exit.stderr, b"shared-diagnostic\n");
    assert!(exit.killed.is_empty());
}

#[test]
fn stderr_divergence_fails_the_run_despite_unanimous_stdout() {
    // Byte-identical stdout and exit statuses, but every replica reports
    // different diagnostics: a memory error that only corrupts what a
    // replica *says* is still a divergence, and the stderr ballot (three
    // singleton groups, no strict plurality) must catch it.
    let mut cfg = LaunchConfig::new(
        3,
        sh("echo payload; echo \"diag from $DIEHARD_SEED\" >&2"),
        Vec::new(),
    );
    cfg.seeds = vec![1, 2, 3];
    let exit = run_replicated(&cfg).unwrap();
    assert!(exit.diverged, "per-replica stderr must fail the vote");
    assert_eq!(exit.output, b"payload\n", "agreed stdout streamed first");
    assert!(exit.stderr.is_empty(), "a diverged run forwards no stderr");
    assert_eq!(exit.exit_code, None, "no quorum, no agreed status");
}

#[test]
fn minority_stderr_loses_its_replica_the_exit_ballot() {
    // Two replicas agree on their diagnostics; the rogue third differs on
    // stderr *only*. The quorum's stderr and status win; the rogue is
    // outvoted at the stderr ballot.
    let mut cfg = LaunchConfig::new(
        3,
        sh(r#"echo payload
              if [ "$DIEHARD_SEED" = "7" ]; then
                  echo ROGUE-DIAGNOSTIC >&2
              else
                  echo steady-diagnostic >&2
              fi"#),
        Vec::new(),
    );
    cfg.seeds = vec![1, 7, 2];
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert_eq!(exit.output, b"payload\n");
    assert_eq!(exit.killed, vec![1], "minority stderr loses its vote");
    assert_eq!(exit.stderr, b"steady-diagnostic\n");
    assert_eq!(exit.exit_code, Some(0));
}

#[test]
fn loser_stderr_is_not_forwarded() {
    let mut cfg = LaunchConfig::new(
        3,
        sh(r#"if [ "$DIEHARD_SEED" = "7" ]; then
                  echo LOSER-DIAGNOSTIC >&2; echo bad
              else
                  echo quorum-diagnostic >&2; echo good
              fi"#),
        Vec::new(),
    );
    cfg.seeds = vec![7, 1, 2];
    let exit = run_replicated(&cfg).unwrap();
    assert!(!exit.diverged);
    assert_eq!(exit.output, b"good\n");
    assert_eq!(exit.killed, vec![0]);
    assert_eq!(
        exit.stderr, b"quorum-diagnostic\n",
        "only a quorum member's stderr may be forwarded"
    );
}

#[test]
fn stderr_capture_is_bounded_and_never_blocks_the_replica() {
    // Each replica writes 100 KB of diagnostics — beyond the 64 KB pipe
    // capacity — *before* producing stdout or exiting. Without continuous
    // draining the replica would block on stderr forever; with it, the
    // capture keeps exactly the first CHUNK bytes and drops the rest.
    let cfg = LaunchConfig::new(
        3,
        sh("yes e | head -c 200000 | tr -d '\\n' >&2; echo ok"),
        Vec::new(),
    );
    let mut out = Vec::new();
    let outcome = run_streamed(&cfg, InputSource::Buffer(Vec::new()), &mut out).unwrap();
    assert!(!outcome.diverged);
    assert_eq!(out, b"ok\n");
    assert_eq!(outcome.stderr.len(), CHUNK, "capture capped at one chunk");
    assert!(outcome.stderr.iter().all(|&b| b == b'e'));
    // `yes e` emits "e\n"; tr strips newlines, so 100 000 'e's total.
    assert_eq!(outcome.stderr_dropped, 100_000 - CHUNK as u64);
    assert!(
        outcome.peak_buffered <= 2 * 3 * CHUNK,
        "stderr captures are part of the (2 × replicas) × CHUNK bound, got {}",
        outcome.peak_buffered
    );
}

#[test]
fn diverged_run_forwards_no_stderr() {
    let cfg = LaunchConfig::new(
        3,
        sh("echo \"secret $DIEHARD_SEED\" >&2; echo $DIEHARD_SEED"),
        Vec::new(),
    );
    let exit = run_replicated(&cfg).unwrap();
    assert!(exit.diverged);
    assert!(
        exit.stderr.is_empty(),
        "no winner, nothing to forward (got {:?})",
        String::from_utf8_lossy(&exit.stderr)
    );
}

#[test]
fn exit_status_tie_is_divergence() {
    // Four replicas split 2-2 on their exit status after unanimous output:
    // no strict plurality — the run must report divergence rather than
    // pick a side.
    let mut cfg = LaunchConfig::new(
        4,
        sh(r#"echo agreed; if [ "$DIEHARD_SEED" -lt "10" ]; then exit 3; fi"#),
        Vec::new(),
    );
    cfg.seeds = vec![1, 2, 11, 12];
    let exit = run_replicated(&cfg).unwrap();
    assert!(exit.diverged, "2-2 exit-status split has no quorum");
    assert_eq!(exit.exit_code, None);
    assert_eq!(exit.output, b"agreed\n", "output had already committed");
}
