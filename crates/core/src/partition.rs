//! A single size-class region: bitmap, fullness accounting, random probing.
//!
//! Implements the per-region half of `DieHardMalloc`/`DieHardFree`
//! (Figure 2 of the paper): hash-table-style probing for a free slot,
//! the `1/M` fullness threshold, and the allocated-bit bookkeeping.
//!
//! Each partition owns its own [`Mwc`] stream, so a partition is a complete,
//! independently-lockable *shard* of the heap: no shared RNG (or any other
//! shared mutable state) couples allocations in different size classes.

use crate::bitmap::Bitmap;
use crate::rng::Mwc;
use crate::size_class::SizeClass;

/// One size-class region of the DieHard heap.
///
/// The partition works purely in slot indices; converting indices to byte
/// offsets (or machine pointers) is the enclosing heap's job. This lets the
/// simulated heap and the real `mmap`-backed heap share the exact same
/// placement logic.
#[derive(Debug)]
pub struct Partition {
    class: SizeClass,
    bitmap: Bitmap,
    capacity: usize,
    threshold: usize,
    in_use: usize,
    rng: Mwc,
    /// `64 - log2(capacity)` when the capacity is a power of two (every
    /// region the heap geometry builds): a probe index is then drawn as
    /// `next_u64() >> draw_shift`, which is **bit-identical** to the
    /// widening-multiply [`Mwc::below`] for a power-of-two bound —
    /// `(r * 2^k) >> 64 == r >> (64 - k)` — but costs a shift instead of a
    /// 128-bit multiply. `0` means the capacity is not a power of two (the
    /// adaptive variant's odd start sizes) and probes fall back to `below`.
    draw_shift: u32,
    /// Total probes performed by `alloc`, for validating the paper's
    /// E[probes] = 1/(1 - 1/M) claim (§4.2).
    probes: u64,
    allocs: u64,
}

/// The strength-reduced draw shift for `capacity`, or the `0` sentinel when
/// only the general widening-multiply draw is exact.
#[inline]
fn draw_shift_for(capacity: usize) -> u32 {
    if capacity.is_power_of_two() && capacity > 1 {
        64 - capacity.trailing_zeros()
    } else {
        // capacity == 1 draws index 0 either way; `below` handles it.
        0
    }
}

impl Partition {
    /// Creates an empty partition with `capacity` slots of which at most
    /// `threshold` may be live at once, probing with its own RNG stream
    /// seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > capacity` or `capacity == 0`.
    #[must_use]
    pub fn new(class: SizeClass, capacity: usize, threshold: usize, seed: u64) -> Self {
        assert!(capacity > 0, "partition capacity must be positive");
        assert!(
            threshold <= capacity,
            "threshold {threshold} exceeds capacity {capacity}"
        );
        Self {
            class,
            bitmap: Bitmap::new(capacity),
            capacity,
            threshold,
            in_use: 0,
            rng: Mwc::seeded(seed),
            draw_shift: draw_shift_for(capacity),
            probes: 0,
            allocs: 0,
        }
    }

    /// As [`new`](Self::new) but over caller-provided zeroed bitmap words,
    /// for allocators that cannot allocate (the global allocator's metadata
    /// arena).
    ///
    /// # Safety
    ///
    /// Same contract as [`Bitmap::from_storage`].
    #[must_use]
    pub unsafe fn from_storage(
        class: SizeClass,
        capacity: usize,
        threshold: usize,
        seed: u64,
        words: *mut u64,
    ) -> Self {
        assert!(capacity > 0, "partition capacity must be positive");
        assert!(
            threshold <= capacity,
            "threshold {threshold} exceeds capacity {capacity}"
        );
        Self {
            class,
            // SAFETY: forwarded caller contract.
            bitmap: unsafe { Bitmap::from_storage(words, capacity) },
            capacity,
            threshold,
            in_use: 0,
            rng: Mwc::seeded(seed),
            draw_shift: draw_shift_for(capacity),
            probes: 0,
            allocs: 0,
        }
    }

    /// The size class this partition serves.
    #[must_use]
    pub fn class(&self) -> SizeClass {
        self.class
    }

    /// Total slots in the region.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum simultaneously-live slots (`capacity / M`).
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Currently live slots (the paper's `inUse[c]`).
    #[must_use]
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Fraction of the region currently live.
    #[must_use]
    pub fn fullness(&self) -> f64 {
        self.in_use as f64 / self.capacity as f64
    }

    /// `true` when the region has hit its `1/M` cap.
    #[must_use]
    #[inline]
    pub fn at_threshold(&self) -> bool {
        self.in_use >= self.threshold
    }

    /// Picks a uniformly random free slot, marks it live, and returns its
    /// index; `None` when the region is at its threshold (the paper returns
    /// `NULL` here — "At threshold: no more memory").
    ///
    /// Probing repeats until an empty slot is found, exactly like probing an
    /// open hash table (§4.2). Because at most `1/M` of the region is ever
    /// live, the expected probe count is `1/(1 - 1/M)`. Indices are drawn
    /// from the partition's private RNG stream.
    #[inline]
    pub fn alloc(&mut self) -> Option<usize> {
        if self.at_threshold() {
            return None;
        }
        self.allocs += 1;
        loop {
            self.probes += 1;
            // Power-of-two capacities (every geometry-built region) draw
            // with one shift; the result is bit-identical to `below`, so
            // placement sequences are stable across the two paths.
            let index = if self.draw_shift != 0 {
                (self.rng.next_u64() >> self.draw_shift) as usize
            } else {
                self.rng.below(self.capacity)
            };
            if self.bitmap.try_set(index) {
                self.in_use += 1;
                return Some(index);
            }
        }
    }

    /// Frees `index` if it is currently live; returns `false` (ignoring the
    /// request, §4.3) when the slot is already free — a double or invalid
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` — the enclosing heap validates range
    /// and alignment before calling in, so this indicates a heap bug.
    #[inline]
    pub fn free(&mut self, index: usize) -> bool {
        if self.bitmap.get(index) {
            self.bitmap.clear(index);
            self.in_use -= 1;
            true
        } else {
            false
        }
    }

    /// Whether `index` is currently live.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[must_use]
    #[inline]
    pub fn is_live(&self, index: usize) -> bool {
        self.bitmap.get(index)
    }

    /// Iterates over the indices of live slots.
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.bitmap.iter_ones()
    }

    /// Mean number of free slots between consecutive live slots, used to
    /// check the paper's E[minimum separation] = M − 1 claim (§3.1).
    /// Returns `None` with fewer than two live slots.
    #[must_use]
    pub fn mean_live_gap(&self) -> Option<f64> {
        let live: Vec<usize> = self.bitmap.iter_ones().collect();
        if live.len() < 2 {
            return None;
        }
        let gaps: usize = live.windows(2).map(|w| w[1] - w[0] - 1).sum();
        Some(gaps as f64 / (live.len() - 1) as f64)
    }

    /// Lifetime probe statistics: `(allocations, total probes)`.
    #[must_use]
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.allocs, self.probes)
    }

    /// Grows the region's slot count to `new_capacity`, rescaling the
    /// threshold proportionally. Supports the adaptive variant sketched in
    /// the paper's future work (§9). Existing live slots keep their indices.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity < capacity`, or when the partition was built
    /// over raw storage (the fixed-size global allocator never grows).
    pub fn grow(&mut self, new_capacity: usize, new_threshold: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot shrink partition from {} to {new_capacity}",
            self.capacity
        );
        assert!(new_threshold <= new_capacity);
        let mut bigger = Bitmap::new(new_capacity);
        for idx in self.bitmap.iter_ones() {
            bigger.set(idx);
        }
        self.bitmap = bigger;
        self.capacity = new_capacity;
        self.threshold = new_threshold;
        self.draw_shift = draw_shift_for(new_capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn part_seeded(cap: usize, thresh: usize, seed: u64) -> Partition {
        Partition::new(SizeClass::from_index(0), cap, thresh, seed)
    }

    fn part(cap: usize, thresh: usize) -> Partition {
        part_seeded(cap, thresh, 0xDEED)
    }

    #[test]
    fn alloc_until_threshold() {
        let mut p = part_seeded(64, 32, 1);
        let mut seen = HashSet::new();
        for _ in 0..32 {
            let idx = p.alloc().expect("below threshold");
            assert!(seen.insert(idx), "duplicate slot handed out");
            assert!(idx < 64);
        }
        assert!(p.at_threshold());
        assert_eq!(p.alloc(), None, "at threshold: no more memory");
        assert_eq!(p.in_use(), 32);
    }

    #[test]
    fn free_returns_slot_for_reuse() {
        let mut p = part_seeded(16, 8, 2);
        let idx = p.alloc().unwrap();
        assert!(p.is_live(idx));
        assert!(p.free(idx));
        assert!(!p.is_live(idx));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn double_free_is_ignored() {
        let mut p = part_seeded(16, 8, 3);
        let idx = p.alloc().unwrap();
        assert!(p.free(idx));
        assert!(!p.free(idx), "second free must be ignored");
        assert_eq!(p.in_use(), 0, "accounting unchanged by double free");
    }

    #[test]
    fn invalid_free_of_never_allocated_slot_ignored() {
        let mut p = part(16, 8);
        assert!(!p.free(5));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn fullness_tracks_in_use() {
        let mut p = part_seeded(64, 32, 4);
        assert_eq!(p.fullness(), 0.0);
        for _ in 0..16 {
            p.alloc();
        }
        assert!((p.fullness() - 0.25).abs() < f64::EPSILON);
    }

    #[test]
    fn expected_probes_near_formula() {
        // M = 2 ⇒ the heap is at most half full ⇒ E[probes] ≤ 2; measured
        // over a region driven to its threshold, the mean probe count from
        // an occupancy ramping 0 → 1/2 must be well under 2.
        let mut p = part_seeded(4096, 2048, 5);
        while p.alloc().is_some() {}
        let (allocs, probes) = p.probe_stats();
        assert_eq!(allocs, 2048);
        let mean = probes as f64 / allocs as f64;
        assert!(
            mean > 1.0 && mean < 2.0,
            "mean probes {mean} outside (1, 2) for ramp to half full"
        );
    }

    #[test]
    fn probes_at_steady_state_half_full() {
        // Hold the region exactly at threshold−1 and measure steady-state
        // probing: should approach 1/(1 − 1/M) = 2 for M = 2.
        let mut p = part_seeded(4096, 2048, 6);
        let mut victim_rng = Mwc::seeded(60);
        for _ in 0..2047 {
            p.alloc();
        }
        let (a0, p0) = p.probe_stats();
        let mut freed: Vec<usize> = Vec::new();
        for _ in 0..20_000 {
            let idx = p.alloc().unwrap();
            freed.push(idx);
            let victim = freed.swap_remove(victim_rng.below(freed.len()));
            p.free(victim);
        }
        let (a1, p1) = p.probe_stats();
        let mean = (p1 - p0) as f64 / (a1 - a0) as f64;
        assert!(
            (mean - 2.0).abs() < 0.15,
            "steady-state probes {mean}, expected ≈ 2"
        );
    }

    #[test]
    fn mean_gap_none_when_sparse() {
        let mut p = part_seeded(64, 32, 7);
        assert_eq!(p.mean_live_gap(), None);
        p.alloc();
        assert_eq!(p.mean_live_gap(), None);
        p.alloc();
        assert!(p.mean_live_gap().is_some());
    }

    #[test]
    fn grow_preserves_live_slots() {
        let mut p = part_seeded(32, 16, 8);
        let mut live = HashSet::new();
        for _ in 0..16 {
            live.insert(p.alloc().unwrap());
        }
        assert!(p.at_threshold());
        p.grow(64, 32);
        assert!(!p.at_threshold());
        let after: HashSet<usize> = p.live_slots().collect();
        assert_eq!(after, live);
        // Freshly unlocked capacity is allocatable.
        assert!(p.alloc().is_some());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        part(32, 16).grow(16, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn new_rejects_threshold_above_capacity() {
        part(8, 9);
    }

    proptest! {
        /// No two live allocations ever share a slot, and accounting matches
        /// the bitmap exactly under arbitrary interleavings.
        #[test]
        fn no_overlap_and_consistent_accounting(
            seed in any::<u64>(),
            ops in proptest::collection::vec(any::<bool>(), 1..400),
        ) {
            let mut p = part_seeded(256, 128, seed);
            let mut rng = Mwc::seeded(seed);
            let mut model: Vec<usize> = Vec::new();
            for op in ops {
                if op || model.is_empty() {
                    if let Some(idx) = p.alloc() {
                        prop_assert!(!model.contains(&idx), "slot {} double-booked", idx);
                        model.push(idx);
                    } else {
                        prop_assert!(p.at_threshold());
                    }
                } else {
                    let victim = model.swap_remove(rng.below(model.len()));
                    prop_assert!(p.free(victim));
                }
                prop_assert_eq!(p.in_use(), model.len());
                let bitmap_live: HashSet<usize> = p.live_slots().collect();
                let model_live: HashSet<usize> = model.iter().copied().collect();
                prop_assert_eq!(bitmap_live, model_live);
            }
        }

        /// Freeing everything returns the partition to pristine state.
        #[test]
        fn drain_restores_empty(seed in any::<u64>(), n in 1usize..100) {
            let mut p = part_seeded(256, 128, seed);
            let mut live = Vec::new();
            for _ in 0..n {
                if let Some(idx) = p.alloc() {
                    live.push(idx);
                }
            }
            for idx in live {
                prop_assert!(p.free(idx));
            }
            prop_assert_eq!(p.in_use(), 0);
            prop_assert_eq!(p.live_slots().count(), 0);
        }
    }
}
