//! The machine-readable perf trajectory: deterministic hot-path kernels and
//! the `BENCH_*.json` report they emit.
//!
//! Every perf-focused PR runs the same registered kernels through
//! `cargo run --release -p diehard-bench --bin perf_report` and commits the
//! resulting `BENCH_<pr>.json` at the repo root, so allocator speedups leave
//! a diffable number trail instead of prose tables. The kernels are seeded
//! and fixed-size — two runs on the same machine measure the same work —
//! and deliberately target the allocator's strength-reduced arithmetic:
//! partition probing, free validation, and the replicated-mode random fill —
//! plus the §5 replicated network front end: voted bytes/second through a
//! loopback proxy session, the full connect→vote→close cycle cost both
//! cold (replicas spawned inline) and warm (handed out of the pre-spawned
//! replica-set pool), and the background cost of refilling that pool.
//!
//! Schema of the emitted JSON: a single object mapping kernel name to
//! `{"mean_ns": float, "min_ns": float, "max_ns": float, "iters": int}`,
//! where the `_ns` figures are nanoseconds *per operation* (mean/min/max
//! across timed samples) and `iters` is the total operation count measured.

use diehard_core::config::{FillPolicy, HeapConfig};
use diehard_core::magazine::MagazineHeap;
use diehard_core::partition::Partition;
use diehard_core::rng::Mwc;
use diehard_core::sharded::ShardedHeap;
use diehard_core::size_class::SizeClass;
use diehard_sim::{DieHardSimHeap, SimAllocator};
use std::hint::black_box;
use std::time::Instant;

/// Every kernel the report must contain; CI fails when one is missing.
pub const KERNELS: &[&str] = &[
    "alloc_churn_mixed",
    "magazine_alloc_churn",
    "preload_alloc_churn",
    "probe_steady_half_full",
    "fill_none",
    "fill_random",
    "grow_under_churn",
    "hugepage_fill",
    "proxy_throughput",
    "proxy_conn_latency",
    "proxy_conn_latency_warm",
    "pool_refill",
];

/// One kernel's timing summary (nanoseconds per operation across samples).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Registered kernel name (one of [`KERNELS`]).
    pub name: &'static str,
    /// Mean ns/op across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns/op.
    pub min_ns: f64,
    /// Slowest sample's ns/op.
    pub max_ns: f64,
    /// Total operations measured (samples × ops per sample).
    pub iters: u64,
}

/// Times `samples` runs of `sample_fn`, each performing `ops` operations,
/// after `warmup` untimed runs; reports ns/op statistics.
fn measure(
    name: &'static str,
    warmup: usize,
    samples: usize,
    ops: u64,
    mut sample_fn: impl FnMut(),
) -> KernelResult {
    for _ in 0..warmup {
        sample_fn();
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        sample_fn();
        per_op.push(start.elapsed().as_nanos() as f64 / ops as f64);
    }
    summarize(name, &per_op, ops * samples as u64)
}

/// Folds per-sample ns/op figures into a [`KernelResult`] — the stats half
/// of [`measure`], split out for kernels that must time each sample
/// themselves (e.g. to exclude an untimed wait from the measurement).
fn summarize(name: &'static str, per_op: &[f64], iters: u64) -> KernelResult {
    let min = per_op.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_op.iter().copied().fold(0.0, f64::max);
    let mean = per_op.iter().sum::<f64>() / per_op.len() as f64;
    KernelResult {
        name,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        iters,
    }
}

/// The `alloc_micro` diehard churn, made steady-state: a persistent sim
/// heap serves mixed-size malloc/free traffic through a 64-slot ring of
/// live objects. One op = one free (of the slot's previous occupant) plus
/// one malloc. The ring is a fixed array indexed by mask, so the harness
/// contributes a load and a branch per op — the measurement is the
/// allocator's placement and free-validation arithmetic, not container
/// bookkeeping.
fn alloc_churn_mixed(smoke: bool) -> KernelResult {
    const RING: usize = 64;
    let (warmup, samples, ops) = if smoke {
        (1, 3, 2_000)
    } else {
        (3, 25, 50_000)
    };
    let sizes: [usize; RING] = {
        let mut rng = Mwc::seeded(0xBEAC4);
        core::array::from_fn(|_| 8 + rng.below(2040))
    };
    let mut heap = DieHardSimHeap::new(HeapConfig::default(), 1).unwrap();
    let mut ring = [usize::MAX; RING];
    let mut i = 0usize;
    measure("alloc_churn_mixed", warmup, samples, ops, move || {
        for _ in 0..ops {
            let slot = i & (RING - 1);
            if ring[slot] != usize::MAX {
                let _ = heap.free(ring[slot]);
            }
            ring[slot] = match heap.malloc(sizes[slot], &[]) {
                Ok(Some(p)) => p,
                _ => usize::MAX,
            };
            i += 1;
        }
    })
}

/// The same 64-slot mixed-size churn ring as `alloc_churn_mixed`, but
/// against the concurrent [`MagazineHeap`] through its thread-local
/// magazine cache — the exact in-process path `libdiehard.so` puts under
/// every interposed `malloc`. Comparing the two rows prices the
/// thread-safety layers (magazines + lock-free shard CAS) against the
/// single-threaded sim heap.
fn magazine_alloc_churn(smoke: bool) -> KernelResult {
    const RING: usize = 64;
    let (warmup, samples, ops) = if smoke {
        (1, 3, 2_000)
    } else {
        (3, 25, 50_000)
    };
    let sizes: [usize; RING] = {
        let mut rng = Mwc::seeded(0xBEAC4);
        core::array::from_fn(|_| 8 + rng.below(2040))
    };
    let heap = MagazineHeap::new(HeapConfig::default(), 0xCAFE).unwrap();
    let mut ring = [usize::MAX; RING];
    let mut i = 0usize;
    measure("magazine_alloc_churn", warmup, samples, ops, move || {
        let mut cache = heap.thread_cache();
        for _ in 0..ops {
            let slot = i & (RING - 1);
            if ring[slot] != usize::MAX {
                let _ = cache.free_at(ring[slot]);
            }
            ring[slot] = match cache.alloc(sizes[slot]) {
                Some(s) => heap.offset_of(s),
                None => usize::MAX,
            };
            i += 1;
        }
        // Return buffered frees to the shards so samples stay steady-state.
        cache.flush();
    })
}

/// Resolves `malloc`/`free` out of a freshly `dlopen`ed `libdiehard.so`
/// (found next to the running binary's profile directory). `RTLD_LOCAL`
/// keeps the library's strong allocation symbols *out* of the global
/// scope: this process keeps its own allocator, and the kernel drives the
/// interposer's exports purely through the returned function pointers.
#[cfg(unix)]
fn preload_library() -> (
    extern "C" fn(usize) -> *mut libc::c_void,
    extern "C" fn(*mut libc::c_void),
) {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir");
    // Bins run from target/<profile>/, test bins from target/<profile>/deps/.
    // `cargo test` alone does not emit the cdylib artifact, so a debug test
    // run falls back to the sibling profile's copy — tier-1 (`cargo build
    // --release && cargo test -q`) always has target/release/libdiehard.so,
    // and the release interposer is the artifact worth timing anyway.
    let mut candidates = vec![dir.to_path_buf()];
    candidates.extend(dir.parent().map(std::path::Path::to_path_buf));
    for up in [dir.parent(), dir.parent().and_then(std::path::Path::parent)]
        .into_iter()
        .flatten()
    {
        candidates.push(up.join("release"));
        candidates.push(up.join("debug"));
    }
    let so = candidates
        .into_iter()
        .map(|d| d.join("libdiehard.so"))
        .find(|p| p.exists())
        .expect("libdiehard.so not built — run `cargo build --release -p diehard-preload` first");
    let mut path = so.into_os_string().into_string().expect("utf-8 path");
    path.push('\0');
    // SAFETY: NUL-terminated path; dlopen/dlsym have no other
    // preconditions. The transmutes match the C signatures libdiehard.so
    // exports for malloc and free.
    unsafe {
        let handle = libc::dlopen(path.as_ptr().cast(), libc::RTLD_NOW | libc::RTLD_LOCAL);
        assert!(!handle.is_null(), "dlopen(libdiehard.so) failed");
        let malloc_sym = libc::dlsym(handle, c"malloc".as_ptr().cast());
        let free_sym = libc::dlsym(handle, c"free".as_ptr().cast());
        assert!(
            !malloc_sym.is_null() && !free_sym.is_null(),
            "libdiehard.so must export malloc and free"
        );
        (
            core::mem::transmute::<*mut libc::c_void, extern "C" fn(usize) -> *mut libc::c_void>(
                malloc_sym,
            ),
            core::mem::transmute::<*mut libc::c_void, extern "C" fn(*mut libc::c_void)>(free_sym),
        )
    }
}

/// The same churn ring once more, but through the `LD_PRELOAD`
/// interposer's exported C ABI (`dlopen` + `dlsym`, see
/// [`preload_library`]). The delta against `magazine_alloc_churn` is the
/// interposition overhead itself: the re-entrancy guard, the arena range
/// check, the `Layout` round-trip, and the indirect call.
#[cfg(unix)]
fn preload_alloc_churn(smoke: bool) -> KernelResult {
    const RING: usize = 64;
    let (warmup, samples, ops) = if smoke {
        (1, 3, 2_000)
    } else {
        (3, 25, 50_000)
    };
    let sizes: [usize; RING] = {
        let mut rng = Mwc::seeded(0xBEAC4);
        core::array::from_fn(|_| 8 + rng.below(2040))
    };
    let (c_malloc, c_free) = preload_library();
    let mut ring: [*mut libc::c_void; RING] = [core::ptr::null_mut(); RING];
    let mut i = 0usize;
    measure("preload_alloc_churn", warmup, samples, ops, move || {
        for _ in 0..ops {
            let slot = i & (RING - 1);
            if !ring[slot].is_null() {
                c_free(ring[slot]);
            }
            ring[slot] = black_box(c_malloc(sizes[slot]));
            i += 1;
        }
    })
}

#[cfg(not(unix))]
fn preload_alloc_churn(_smoke: bool) -> KernelResult {
    unreachable!("the preload kernel requires unix dlopen plumbing")
}

/// Steady-state partition probing at the paper's default occupancy (half
/// full, M = 2): one op = one alloc/free pair against a 16 Ki-slot region.
fn probe_steady_half_full(smoke: bool) -> KernelResult {
    const CAPACITY: usize = 1 << 14;
    let (warmup, samples, ops) = if smoke {
        (1, 3, 5_000)
    } else {
        (3, 25, 100_000)
    };
    let mut part = Partition::new(SizeClass::from_index(0), CAPACITY, CAPACITY, 7);
    for _ in 0..CAPACITY / 2 {
        part.alloc();
    }
    measure("probe_steady_half_full", warmup, samples, ops, move || {
        for _ in 0..ops {
            let idx = part.alloc().expect("has space");
            part.free(black_box(idx));
        }
    })
}

/// Allocation with a given fill policy: one op = one 4 KB malloc, with the
/// live window drained inside the timed loop so the heap stays reusable and
/// both policies run the identical op sequence.
/// `fill_random` minus `fill_none` is the replicated-mode fill overhead.
fn fill_kernel(name: &'static str, fill: FillPolicy, smoke: bool) -> KernelResult {
    let (warmup, samples, ops) = if smoke { (1, 3, 64) } else { (2, 25, 2_048) };
    let mut heap = DieHardSimHeap::new(HeapConfig::default().with_fill(fill), 5).unwrap();
    measure(name, warmup, samples, ops, move || {
        let mut live: Vec<usize> = Vec::with_capacity(64);
        for _ in 0..ops {
            if let Ok(Some(p)) = heap.malloc(4096, &[]) {
                live.push(p);
            }
            if live.len() >= 64 {
                for p in live.drain(..) {
                    let _ = heap.free(p);
                }
            }
        }
        for p in live.drain(..) {
            let _ = heap.free(p);
        }
    })
}

/// Elastic growth under allocation pressure: one op = one 8-byte
/// allocation against a concurrent heap born at 1/64 of its maximum
/// capacity, so the timed loop crosses every doubling of the smallest
/// class on its way to the full-size `1/M` threshold. Each sample builds
/// a fresh heap (seed varied per sample) — the growth protocol runs
/// *inside* the measurement, so this number prices the lock-free read
/// path plus the maintenance-locked doublings, not just steady state.
fn grow_under_churn(smoke: bool) -> KernelResult {
    let (warmup, samples, region) = if smoke {
        (1, 3, 1usize << 16)
    } else {
        (2, 25, 1usize << 18)
    };
    let config = HeapConfig::default().with_region_bytes(region);
    let ops = config.threshold(SizeClass::from_index(0)) as u64;
    let mut seed = 0x6_2011u64;
    measure("grow_under_churn", warmup, samples, ops, move || {
        seed += 1;
        let heap = ShardedHeap::new_elastic(config.clone(), seed, 6).unwrap();
        for _ in 0..ops {
            let slot = heap.try_alloc(8).placed().expect("below the 1/M cap");
            black_box(slot);
        }
    })
}

/// Huge-page commit cost: one op = first-touch of one 4 KB page inside a
/// fresh anonymous mapping advised with `MADV_HUGEPAGE` — the
/// mmap/madvise/fault sequence the global allocator issues for its arena
/// and each large object. The advice is best-effort: on kernels without
/// transparent huge pages this degrades to (and measures) ordinary 4 KB
/// faults, so the number is meaningful either way.
fn hugepage_fill(smoke: bool) -> KernelResult {
    let (warmup, samples, len) = if smoke {
        (0, 2, 4usize << 20)
    } else {
        (1, 10, 32usize << 20)
    };
    const PAGE: usize = 4096;
    let ops = (len / PAGE) as u64;
    measure("hugepage_fill", warmup, samples, ops, move || {
        // SAFETY: a fresh, exclusively-owned anonymous mapping of `len`
        // bytes; madvise is non-destructive advice; every touched offset is
        // inside the mapping; munmap releases the same range mmap returned.
        unsafe {
            let ptr = libc::mmap(
                core::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            );
            assert!(ptr != libc::MAP_FAILED, "anonymous mmap failed");
            let _ = libc::madvise(ptr, len, libc::MADV_HUGEPAGE);
            let bytes = ptr.cast::<u8>();
            for off in (0..len).step_by(PAGE) {
                bytes.add(off).write_volatile(1);
            }
            libc::munmap(ptr, len);
        }
    })
}

/// Shared proxy-kernel scaffolding: a loopback [`Proxy`] voting three
/// `/bin/cat` replicas per connection, run on its own thread for the
/// duration of `body`, which receives the bound port.
#[cfg(unix)]
fn with_cat_proxy<R>(body: impl FnOnce(u16) -> R) -> R {
    use diehard_replicate::net::Listener;
    use diehard_replicate::proxy::Proxy;
    use diehard_replicate::LaunchConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let config = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
    let listener = Listener::bind_loopback(0).expect("loopback bind");
    let mut proxy = Proxy::new(listener, config).expect("default chunk is valid");
    let port = proxy.local_port().expect("bound port");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let server = std::thread::spawn(move || proxy.run(&flag));
    let result = body(port);
    stop.store(true, Ordering::Release);
    server
        .join()
        .expect("proxy thread")
        .expect("reactor ran clean");
    result
}

/// [`with_cat_proxy`] with a warm replica-set pool of `depth` parked sets:
/// `body` also receives the pool's fill gauge so rounds can wait for a
/// parked set (a guaranteed pool hit) outside their timed region.
#[cfg(unix)]
fn with_pooled_cat_proxy<R>(
    depth: usize,
    body: impl FnOnce(u16, std::sync::Arc<std::sync::atomic::AtomicUsize>) -> R,
) -> R {
    use diehard_replicate::net::Listener;
    use diehard_replicate::proxy::Proxy;
    use diehard_replicate::LaunchConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let config = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
    let listener = Listener::bind_loopback(0).expect("loopback bind");
    let proxy = Proxy::new(listener, config).expect("default chunk is valid");
    let gauge = proxy.pool_gauge();
    let mut proxy = proxy.with_pool(depth);
    let port = proxy.local_port().expect("bound port");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let server = std::thread::spawn(move || proxy.run(&flag));
    let result = body(port, gauge);
    stop.store(true, Ordering::Release);
    let summary = server
        .join()
        .expect("proxy thread")
        .expect("reactor ran clean");
    assert_eq!(
        summary.pool.cold_spawns, 0,
        "warm kernel rounds must all be pool hits: {:?}",
        summary.pool
    );
    result
}

/// One voted proxy session: connect, stream `payload`, half-close, read the
/// quorum echo to EOF, and check the byte count survived the vote.
#[cfg(unix)]
fn proxy_echo_round(port: u16, payload: &[u8]) {
    use diehard_replicate::net::{connect_loopback, shutdown_write};
    use std::io::{Read, Write};

    let mut stream = connect_loopback(port).expect("connect");
    if payload.len() <= 4096 {
        // Small payloads fit the socket buffer: write inline so the
        // latency kernels don't carry a per-round thread spawn.
        stream.write_all(payload).expect("send payload");
        shutdown_write(&stream).expect("half-close");
        let mut echoed = Vec::new();
        stream.read_to_end(&mut echoed).expect("read voted echo");
        assert_eq!(echoed.len(), payload.len(), "quorum echo must be complete");
        return;
    }
    let to_send = payload.to_vec();
    let writer = {
        let stream = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            let mut stream = stream;
            let _ = stream.write_all(&to_send);
            let _ = shutdown_write(&stream);
        })
    };
    let mut echoed = Vec::new();
    stream.read_to_end(&mut echoed).expect("read voted echo");
    writer.join().expect("writer thread");
    assert_eq!(echoed.len(), payload.len(), "quorum echo must be complete");
}

/// Voted proxy throughput: one op = one payload byte pushed through a full
/// loopback session (client → broadcast to 3 cat replicas → 4 KB chunk
/// votes → quorum bytes back). Each sample is a fresh connection, so the
/// number includes a session spawn amortized over the payload — the shape
/// a short-lived proxy client actually sees.
#[cfg(unix)]
fn proxy_throughput(smoke: bool) -> KernelResult {
    let (warmup, samples, len) = if smoke {
        (0, 2, 8_192usize)
    } else {
        (1, 10, 262_144usize)
    };
    let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    with_cat_proxy(|port| {
        measure("proxy_throughput", warmup, samples, len as u64, move || {
            proxy_echo_round(port, &payload);
        })
    })
}

/// One latency round: connect, send exactly one chunk, and time until the
/// voted first chunk is read back. A full-chunk request is deliberate —
/// its barrier commits the moment every replica has echoed the chunk,
/// *without* waiting for replica EOF — and the half-close is deferred
/// until *after* the voted chunk is back, so the replicas are still
/// parked alive at their next read throughout the timed region. The EOF
/// ballots, the replica exits, and the reap (identical cold and warm,
/// and not what the pool optimizes) are only triggered by the FIN
/// afterwards, fully off the clock.
#[cfg(unix)]
fn proxy_first_chunk_round(port: u16, payload: &[u8]) -> std::time::Duration {
    use diehard_replicate::net::{connect_loopback, shutdown_write};
    use std::io::{Read, Write};

    let start = Instant::now();
    let mut stream = connect_loopback(port).expect("connect");
    stream.write_all(payload).expect("send request");
    let mut first = vec![0u8; payload.len()];
    stream
        .read_exact(&mut first)
        .expect("read voted first chunk");
    let elapsed = start.elapsed();
    // Teardown off the clock: half-close now, then drain to EOF so the
    // session retires clean before the next round.
    shutdown_write(&stream).expect("half-close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain EOF");
    assert!(
        rest.is_empty(),
        "one-chunk request must vote exactly one chunk"
    );
    elapsed
}

/// Per-connection cost, cold path: one op = one [`proxy_first_chunk_round`]
/// against a proxy that fork/execs the connection's three replicas inline
/// at accept — so the number is dominated by replica spawning. This is the
/// fixed cost `proxy_throughput` amortizes and the baseline
/// `proxy_conn_latency_warm` is measured against.
#[cfg(unix)]
fn proxy_conn_latency(smoke: bool) -> KernelResult {
    let (warmup, samples) = if smoke { (0, 2) } else { (1, 12) };
    let payload = vec![7u8; diehard_replicate::CHUNK];
    with_cat_proxy(|port| {
        for _ in 0..warmup {
            proxy_first_chunk_round(port, &payload);
        }
        let mut per_op: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            per_op.push(proxy_first_chunk_round(port, &payload).as_nanos() as f64);
        }
        summarize("proxy_conn_latency", &per_op, samples as u64)
    })
}

/// Warm-pool counterpart of [`proxy_conn_latency`]: the identical
/// [`proxy_first_chunk_round`], against a proxy whose replica sets are
/// pre-spawned (`--pool`). Each round waits *untimed* for the pool's fill
/// gauge to report a *full* pool before connecting — full, not merely
/// non-empty, so the reactor is provably idle (not mid-way through
/// topping up) when the connection arrives and the measurement is the
/// pool-hit path alone: O(1) handoff, one voted round-trip, with the
/// fork/exec cost moved off the connection entirely. The delta against
/// `proxy_conn_latency` is the tentpole number: the per-connection setup
/// cost the pool hides.
#[cfg(unix)]
fn proxy_conn_latency_warm(smoke: bool) -> KernelResult {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    const DEPTH: usize = 2;
    let (warmup, samples) = if smoke { (1, 2) } else { (4, 24) };
    let payload = vec![7u8; diehard_replicate::CHUNK];
    with_pooled_cat_proxy(DEPTH, |port, gauge| {
        let wait_for_full_pool = || {
            let deadline = Instant::now() + Duration::from_secs(10);
            while gauge.load(Ordering::Acquire) < DEPTH {
                assert!(Instant::now() < deadline, "pool never refilled");
                std::thread::yield_now();
            }
            // The gauge rises the moment fork() returns, but the fresh
            // replicas still need background CPU to finish exec and park
            // at their blocking read — give them that slice off the clock,
            // as any set parked for more than an instant has had. Without
            // this, on a single-core runner the timed round is taxed by
            // the *next* set's startup, which is exactly the work the
            // pool exists to keep off the connection path. Yielding (not
            // sleeping) cedes the core to those replicas while keeping it
            // out of idle states: a sleep here sends the round into the
            // platform's wake-from-idle tax, which measures the runner's
            // power management, not the pool.
            let settle = Instant::now();
            while settle.elapsed() < Duration::from_millis(15) {
                std::thread::yield_now();
            }
        };
        for _ in 0..warmup {
            wait_for_full_pool();
            proxy_first_chunk_round(port, &payload);
        }
        let mut per_op: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            wait_for_full_pool(); // refill happens off the clock
            per_op.push(proxy_first_chunk_round(port, &payload).as_nanos() as f64);
        }
        summarize("proxy_conn_latency_warm", &per_op, samples as u64)
    })
}

/// Pool refill cost: one op = parking one complete 3-replica `/bin/cat`
/// set (seed resolution + 3 × fork/exec + pipe plumbing) via
/// [`Pool::prime`]. This is the background work [`proxy_conn_latency_warm`]
/// moves off the connection path; teardown (abort + reap) runs untimed
/// between samples.
#[cfg(unix)]
fn pool_refill(smoke: bool) -> KernelResult {
    use diehard_replicate::{LaunchConfig, Pool};

    let (warmup, samples, depth) = if smoke {
        (0, 2, 1usize)
    } else {
        (1, 10, 4usize)
    };
    let config = LaunchConfig::new(3, vec!["/bin/cat".into()], Vec::new());
    for _ in 0..warmup {
        let mut pool = Pool::new(config.clone(), depth).expect("valid config");
        pool.prime();
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut pool = Pool::new(config.clone(), depth).expect("valid config");
        let start = Instant::now();
        pool.prime();
        per_op.push(start.elapsed().as_nanos() as f64 / depth as f64);
        assert_eq!(pool.idle_len(), depth, "every set must park");
        drop(pool); // SIGKILL + reap of the parked sets stays off the clock
    }
    summarize("pool_refill", &per_op, (samples * depth) as u64)
}

#[cfg(not(unix))]
fn proxy_throughput(_smoke: bool) -> KernelResult {
    unreachable!("proxy kernels require unix process plumbing")
}

#[cfg(not(unix))]
fn proxy_conn_latency(_smoke: bool) -> KernelResult {
    unreachable!("proxy kernels require unix process plumbing")
}

#[cfg(not(unix))]
fn proxy_conn_latency_warm(_smoke: bool) -> KernelResult {
    unreachable!("proxy kernels require unix process plumbing")
}

#[cfg(not(unix))]
fn pool_refill(_smoke: bool) -> KernelResult {
    unreachable!("proxy kernels require unix process plumbing")
}

/// Runs every registered kernel, in registry order.
#[must_use]
pub fn run_all(smoke: bool) -> Vec<KernelResult> {
    KERNELS
        .iter()
        .map(|&name| run_kernel(name, smoke).expect("registered kernel"))
        .collect()
}

/// Runs one kernel by name; `None` for an unregistered name.
#[must_use]
pub fn run_kernel(name: &str, smoke: bool) -> Option<KernelResult> {
    match name {
        "alloc_churn_mixed" => Some(alloc_churn_mixed(smoke)),
        "magazine_alloc_churn" => Some(magazine_alloc_churn(smoke)),
        "preload_alloc_churn" => Some(preload_alloc_churn(smoke)),
        "probe_steady_half_full" => Some(probe_steady_half_full(smoke)),
        "fill_none" => Some(fill_kernel("fill_none", FillPolicy::None, smoke)),
        "fill_random" => Some(fill_kernel("fill_random", FillPolicy::Random, smoke)),
        "grow_under_churn" => Some(grow_under_churn(smoke)),
        "hugepage_fill" => Some(hugepage_fill(smoke)),
        "proxy_throughput" => Some(proxy_throughput(smoke)),
        "proxy_conn_latency" => Some(proxy_conn_latency(smoke)),
        "proxy_conn_latency_warm" => Some(proxy_conn_latency_warm(smoke)),
        "pool_refill" => Some(pool_refill(smoke)),
        _ => None,
    }
}

/// Renders results as the `BENCH_*.json` document (stable key order).
#[must_use]
pub fn render_json(results: &[KernelResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\"mean_ns\": {:.2}, \"min_ns\": {:.2}, \"max_ns\": {:.2}, \"iters\": {}}}{}\n",
            r.name,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.iters,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("}\n");
    out
}

/// Extracts `kernel name → mean_ns` from a rendered (or committed) report,
/// in file order. Accepts exactly the schema [`render_json`] emits (one
/// `"name": {"mean_ns": …}` entry per line) and skips anything that does
/// not parse — so a hand-mangled report degrades to fewer deltas, not a
/// crash. This is the read half of the `BENCH_<pr>.json` trajectory: it
/// lets `perf_report` diff a fresh run against the previous PR's committed
/// numbers without a JSON dependency.
#[must_use]
pub fn parse_means(json: &str) -> Vec<(String, f64)> {
    let mut means = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(rest) = rest.split_once("\"mean_ns\":").map(|(_, r)| r) else {
            continue;
        };
        let num = rest.trim_start().split([',', '}']).next().unwrap_or("");
        if let Ok(mean) = num.trim().parse::<f64>() {
            means.push((name.to_string(), mean));
        }
    }
    means
}

/// Checks a rendered (or committed) report for every registered kernel,
/// returning the missing names — the CI gate for the perf trajectory.
#[must_use]
pub fn missing_kernels(json: &str) -> Vec<&'static str> {
    KERNELS
        .iter()
        .copied()
        .filter(|name| !json.contains(&format!("\"{name}\"")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_every_kernel() {
        let results = run_all(true);
        assert_eq!(results.len(), KERNELS.len());
        for (r, &name) in results.iter().zip(KERNELS) {
            assert_eq!(r.name, name);
            assert!(r.mean_ns > 0.0, "{name} measured nothing");
            assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
            assert!(r.iters > 0);
        }
    }

    #[test]
    fn json_roundtrips_kernel_names() {
        let results = run_all(true);
        let json = render_json(&results);
        assert!(missing_kernels(&json).is_empty(), "all kernels present");
        assert!(json.contains("\"mean_ns\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn missing_kernels_detects_gaps() {
        let missing = missing_kernels("{\"alloc_churn_mixed\": {}}");
        assert!(!missing.contains(&"alloc_churn_mixed"));
        assert!(missing.contains(&"magazine_alloc_churn"));
        assert!(missing.contains(&"preload_alloc_churn"));
        assert!(missing.contains(&"probe_steady_half_full"));
        assert!(missing.contains(&"fill_none"));
        assert!(missing.contains(&"fill_random"));
        assert!(missing.contains(&"grow_under_churn"));
        assert!(missing.contains(&"hugepage_fill"));
        assert!(missing.contains(&"proxy_throughput"));
        assert!(missing.contains(&"proxy_conn_latency"));
        assert!(missing.contains(&"proxy_conn_latency_warm"));
        assert!(missing.contains(&"pool_refill"));
    }

    #[test]
    fn unregistered_kernel_is_none() {
        assert!(run_kernel("nonesuch", true).is_none());
    }

    #[test]
    fn parse_means_roundtrips_render_json() {
        let results = run_all(true);
        let parsed = parse_means(&render_json(&results));
        assert_eq!(parsed.len(), results.len());
        for ((name, mean), r) in parsed.iter().zip(&results) {
            assert_eq!(name, r.name);
            assert!(
                (mean - r.mean_ns).abs() < 0.01,
                "{name}: {mean} vs {}",
                r.mean_ns
            );
        }
    }

    #[test]
    fn parse_means_skips_malformed_lines() {
        let json = "{\n  \"good\": {\"mean_ns\": 12.50, \"iters\": 3},\n  garbage line\n  \"bad\": {\"mean_ns\": not-a-number},\n}\n";
        assert_eq!(parse_means(json), vec![("good".to_string(), 12.5)]);
    }
}
