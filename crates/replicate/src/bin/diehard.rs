//! The `diehard` launcher (§5.1).
//!
//! "The diehard command takes three arguments: the path to the replicated
//! variant of the DieHard memory allocator (a dynamically-loadable
//! library), the number of replicas to create, and the application name."
//!
//! Usage:
//!
//! ```text
//! diehard [-n REPLICAS] [--chunk BYTES] [--preload LIB] [--seed SEED] [--pool DEPTH] -- COMMAND [ARGS...]
//! ```
//!
//! `--pool DEPTH` primes a warm replica-set pool before streaming begins:
//! the run takes a pre-spawned set (same seed stream as the cold path, so
//! outcomes are bit-identical) instead of paying fork/exec inline. Depth 0
//! (the default) is the unchanged cold path.
//!
//! Standard input is broadcast to all replicas **incrementally** (never
//! buffered whole — arbitrary-length and interactive streams work) and
//! standard output carries the voted output, committed as each 4 KB
//! barrier resolves. Exit status: the replicas' *agreed* exit status on
//! agreement (so a command that fails identically everywhere keeps its
//! status), 2 on detected divergence (the uninitialized-read signal), and
//! 1 on usage or launch errors. As with any status-forwarding wrapper
//! (`env`, `nice`, `ssh`), an agreed status of 1 or 2 is indistinguishable
//! from the launcher's own sentinels by code alone — the stderr diagnostics
//! (`diehard: ...`) disambiguate.

use diehard_replicate::{run_pooled, run_streamed, InputSource, LaunchConfig, Pool};
use std::os::unix::io::AsRawFd;

fn usage() -> ! {
    eprintln!(
        "usage: diehard [-n REPLICAS] [--chunk BYTES] [--preload LIB] [--seed SEED] [--pool DEPTH] -- COMMAND [ARGS...]\n\
         \n\
         Runs COMMAND in REPLICAS differently-seeded replicas (default 3),\n\
         streaming stdin to all and voting on stdout at BYTES-sized barriers\n\
         (default 4096; a bounded power of two).\n\
         Exits with the replicas' agreed status, or 2 on divergence.\n\
         Each replica receives a unique DIEHARD_SEED; --preload exports\n\
         LD_PRELOAD for C binaries using libdiehard-style interposition.\n\
         --pool primes DEPTH warm replica sets before streaming begins\n\
         (same seed stream as the cold path; 0 = spawn inline, the default)."
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut replicas = 3usize;
    let mut chunk: Option<usize> = None;
    let mut preload: Option<String> = None;
    let mut master_seed: Option<u64> = None;
    let mut pool_depth: Option<usize> = None;
    let mut command: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-n" | "--replicas" => {
                i += 1;
                replicas = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chunk" => {
                i += 1;
                chunk = args.get(i).and_then(|s| s.parse().ok());
                if chunk.is_none() {
                    usage();
                }
            }
            "--preload" => {
                i += 1;
                preload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                master_seed = args.get(i).and_then(|s| s.parse().ok());
                if master_seed.is_none() {
                    usage();
                }
            }
            "--pool" => {
                i += 1;
                pool_depth = args.get(i).and_then(|s| s.parse().ok());
                if pool_depth.is_none() {
                    usage();
                }
            }
            "--" => {
                command = args[i + 1..].to_vec();
                break;
            }
            "-h" | "--help" => usage(),
            other if command.is_empty() && !other.starts_with('-') => {
                command = args[i..].to_vec();
                break;
            }
            _ => usage(),
        }
        i += 1;
    }
    if command.is_empty() || replicas == 0 || replicas == 2 {
        usage();
    }

    let mut config = LaunchConfig::new(replicas, command, Vec::new());
    config.preload = preload;
    if let Some(c) = chunk {
        config.chunk = c; // validated (pow2, bounded) at launch
    }
    if let Some(seed) = master_seed {
        config.seeds = (0..replicas as u64)
            .map(|i| diehard_core::rng::splitmix(seed ^ (i + 1)))
            .collect();
    }

    // Hand the engine our stdin descriptor and locked stdout: input is
    // streamed on demand and each voted chunk is committed the moment its
    // barrier resolves.
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut sink = stdout.lock();
    let input = InputSource::Fd(stdin.as_raw_fd());
    let result = match pool_depth.unwrap_or(0) {
        0 => run_streamed(&config, input, &mut sink),
        depth => {
            // Warm start: pre-spawn the set(s) before touching stdin, then
            // stream through a pooled session — same engine, same seed
            // stream, bit-identical outcomes (pinned by tests/pool.rs).
            match Pool::new(config.clone(), depth) {
                Ok(mut pool) => {
                    pool.prime();
                    run_pooled(&mut pool, input, &mut sink)
                }
                Err(e) => Err(e),
            }
        }
    };
    match result {
        Ok(outcome) => {
            drop(sink);
            // Forward the winning replica's captured stderr (first ≤ 4 KB)
            // before the launcher's own diagnostics.
            if !outcome.stderr.is_empty() {
                use std::io::Write;
                let _ = std::io::stderr().write_all(&outcome.stderr);
            }
            if outcome.stderr_dropped > 0 {
                eprintln!(
                    "diehard: replica stderr truncated ({} bytes dropped)",
                    outcome.stderr_dropped
                );
            }
            if outcome.diverged {
                eprintln!("diehard: replicas diverged (possible uninitialized read); terminated");
                std::process::exit(2);
            }
            if !outcome.killed.is_empty() {
                eprintln!(
                    "diehard: killed {} disagreeing replica(s)",
                    outcome.killed.len()
                );
            }
            match outcome.exit_code {
                Some(code) => std::process::exit(code),
                None => {
                    eprintln!("diehard: every replica crashed");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("diehard: launch failed: {e}");
            std::process::exit(1);
        }
    }
}
