//! # diehard — probabilistic memory safety for unsafe languages
//!
//! A from-scratch Rust reproduction of *DieHard: Probabilistic Memory
//! Safety for Unsafe Languages* (Berger & Zorn, PLDI 2006): the randomized
//! memory manager, the replicated execution architecture with output
//! voting, the analytical model, and the paper's full evaluation harness.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`](diehard_core) — the DieHard algorithm, analysis (Theorems
//!   1–3), and a real `#[global_allocator]`;
//! * [`sim`](diehard_sim) — the simulated address space, DieHard-on-sim,
//!   and the infinite-heap oracle;
//! * [`baselines`](diehard_baselines) — Lea/dlmalloc-style, BDW-GC-style,
//!   and Windows-style allocators;
//! * [`runtime`](diehard_runtime) — the op-stream executor, Table 1 system
//!   emulators, in-process replication, heap differencing;
//! * [`inject`](diehard_inject) — allocation tracing and fault injection;
//! * [`workloads`](diehard_workloads) — the paper's benchmark suite as
//!   deterministic allocation profiles, plus squid-sim;
//! * [`replicate`](diehard_replicate) — subprocess replication (`diehard`
//!   launcher binary).
//!
//! ## Quick start
//!
//! ```
//! use diehard::prelude::*;
//!
//! // A DieHard heap over simulated memory:
//! let mut heap = DieHardSimHeap::new(HeapConfig::default(), 42)?;
//! let p = heap.malloc(100, &[])?.expect("space available");
//! heap.memory_mut().write(p, b"probabilistic memory safety")?;
//! heap.free(p)?;
//! heap.free(p)?; // double free: validated and ignored, per the paper
//!
//! // The analytical model:
//! let p_mask = diehard::core::analysis::p_overflow_mask(7.0 / 8.0, 1, 3);
//! assert!(p_mask > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use diehard_baselines as baselines;
pub use diehard_core as core;
pub use diehard_inject as inject;
pub use diehard_replicate as replicate;
pub use diehard_runtime as runtime;
pub use diehard_sim as sim;
pub use diehard_workloads as workloads;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use diehard_baselines::{BdwGcSim, LeaSimAllocator, WindowsSimAllocator};
    pub use diehard_core::adaptive::AdaptiveHeap;
    pub use diehard_core::config::{FillPolicy, HeapConfig};
    pub use diehard_core::engine::{FreeOutcome, HeapCore, Slot};
    pub use diehard_core::rng::Mwc;
    pub use diehard_core::size_class::SizeClass;
    pub use diehard_runtime::{
        oracle_output, run_program, verdict, CheckPolicy, ExecOptions, Op, Program, ReplicaSet,
        ReplicatedOutcome, RunOutcome, System, Verdict,
    };
    pub use diehard_sim::{DieHardSimHeap, Fault, InfiniteHeap, PagedArena, SimAllocator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything_together() {
        let mut heap = DieHardSimHeap::new(HeapConfig::default(), 1).unwrap();
        let p = heap.malloc(64, &[]).unwrap().unwrap();
        heap.memory_mut().write(p, &[1; 64]).unwrap();
        assert_eq!(heap.free(p), Ok(()));
    }
}
