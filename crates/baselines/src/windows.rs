//! A Windows-XP-era default-allocator stand-in.
//!
//! §7.2.2 attributes DieHard's strong showing on Windows partly to the fact
//! that "the default Windows XP allocator is substantially slower than the
//! Lea allocator". This baseline reproduces that cost profile with the
//! classic pre-LFH design: a **single address-ordered free list** searched
//! **best-fit, end to end**, with boundary tags in the arena just like the
//! Lea baseline. Every malloc is O(free chunks), every free re-walks the
//! list for its insertion point — faithfully slow.

use diehard_sim::arena::PagedArena;
use diehard_sim::fault::Fault;
use diehard_sim::traits::{Addr, SimAllocator};

const IN_USE: u64 = 0x1;
const SIZE_MASK: u64 = !0xF;
const MIN_CHUNK: usize = 32;
const ALIGN: usize = 16;
const STEP_BUDGET: u64 = 400_000;

/// The slow, single-free-list baseline allocator.
#[derive(Debug)]
pub struct WindowsSimAllocator {
    arena: PagedArena,
    /// Head of the address-ordered free list (0 = empty); links (`next` at
    /// chunk+8) are threaded through the arena.
    head: Addr,
    brk: usize,
    max_span: usize,
    live_bytes: usize,
    steps: u64,
    op_start: u64,
}

impl WindowsSimAllocator {
    /// Creates an allocator with a maximum heap span of `max_span` bytes.
    #[must_use]
    pub fn new(max_span: usize) -> Self {
        let mut arena = PagedArena::new(0);
        arena.set_limit(ALIGN);
        Self {
            arena,
            head: 0,
            brk: ALIGN,
            max_span,
            live_bytes: 0,
            steps: 0,
            op_start: 0,
        }
    }

    fn chunk_size_for(request: usize) -> usize {
        ((request + 8 + ALIGN - 1) & !(ALIGN - 1)).max(MIN_CHUNK)
    }

    fn step(&mut self) -> Result<(), Fault> {
        self.steps += 1;
        if self.steps - self.op_start > STEP_BUDGET {
            return Err(Fault::Livelock);
        }
        Ok(())
    }

    fn check_link(&self, addr: Addr) -> Result<(), Fault> {
        if addr >= self.brk || addr < ALIGN {
            return Err(Fault::Segv { addr });
        }
        Ok(())
    }

    /// Best-fit scan of the entire free list. Returns `(prev, chunk, size)`.
    fn find_best(&mut self, need: usize) -> Result<Option<(Addr, Addr, usize)>, Fault> {
        let mut best: Option<(Addr, Addr, usize)> = None;
        let mut prev = 0;
        let mut cur = self.head;
        while cur != 0 {
            self.step()?;
            self.check_link(cur)?;
            let header = self.arena.read_u64(cur)?;
            let size = (header & SIZE_MASK) as usize;
            if size >= need && cur.checked_add(size).is_some_and(|e| e <= self.brk) {
                let better = match best {
                    Some((_, _, bs)) => size < bs,
                    None => true,
                };
                if better {
                    best = Some((prev, cur, size));
                    if size == need {
                        break; // exact fit: cannot improve
                    }
                }
            }
            prev = cur;
            cur = self.arena.read_u64(cur + 8)? as usize;
        }
        Ok(best)
    }

    fn remove_after(&mut self, prev: Addr, chunk: Addr) -> Result<(), Fault> {
        let next = self.arena.read_u64(chunk + 8)?;
        if prev == 0 {
            self.head = next as usize;
        } else {
            self.arena.write_u64(prev + 8, next)?;
        }
        Ok(())
    }

    /// Inserts a free chunk keeping the list address-ordered, coalescing
    /// with adjacent neighbours found during the walk.
    fn insert_free(&mut self, chunk: Addr, mut size: usize) -> Result<(), Fault> {
        let mut prev = 0;
        let mut cur = self.head;
        while cur != 0 && cur < chunk {
            self.step()?;
            self.check_link(cur)?;
            prev = cur;
            cur = self.arena.read_u64(cur + 8)? as usize;
        }
        // Coalesce forward: `cur` directly follows the new chunk.
        if cur != 0 && chunk.checked_add(size) == Some(cur) {
            self.check_link(cur)?;
            let cur_header = self.arena.read_u64(cur)?;
            size += (cur_header & SIZE_MASK) as usize;
            cur = self.arena.read_u64(cur + 8)? as usize;
        }
        // Coalesce backward: `prev` directly precedes it.
        if prev != 0 {
            let prev_header = self.arena.read_u64(prev)?;
            let prev_size = (prev_header & SIZE_MASK) as usize;
            if prev.checked_add(prev_size) == Some(chunk) {
                let merged = prev_size + size;
                self.arena.write_u64(prev, merged as u64)?;
                self.arena.write_u64(prev + 8, cur as u64)?;
                return Ok(());
            }
        }
        self.arena.write_u64(chunk, size as u64)?;
        self.arena.write_u64(chunk + 8, cur as u64)?;
        if prev == 0 {
            self.head = chunk;
        } else {
            self.arena.write_u64(prev + 8, chunk as u64)?;
        }
        Ok(())
    }
}

impl SimAllocator for WindowsSimAllocator {
    fn name(&self) -> &'static str {
        "win-default"
    }

    fn malloc(&mut self, size: usize, _roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        self.op_start = self.steps;
        if size == 0 {
            return Ok(None);
        }
        let need = Self::chunk_size_for(size);
        if let Some((prev, chunk, found)) = self.find_best(need)? {
            self.remove_after(prev, chunk)?;
            if found >= need + MIN_CHUNK {
                self.insert_free(chunk + need, found - need)?;
                self.arena.write_u64(chunk, need as u64 | IN_USE)?;
            } else {
                self.arena.write_u64(chunk, found as u64 | IN_USE)?;
            }
            self.live_bytes += size;
            return Ok(Some(chunk + 8));
        }
        if self.brk + need > self.max_span {
            return Ok(None);
        }
        let chunk = self.brk;
        self.brk += need;
        self.arena.set_limit(self.brk);
        self.arena.write_u64(chunk, need as u64 | IN_USE)?;
        self.live_bytes += size;
        Ok(Some(chunk + 8))
    }

    fn free(&mut self, addr: Addr) -> Result<(), Fault> {
        self.op_start = self.steps;
        if addr == 0 {
            return Ok(());
        }
        let chunk = addr.wrapping_sub(8);
        if chunk < ALIGN || chunk >= self.brk {
            return Err(Fault::Segv { addr: chunk });
        }
        let header = self.arena.read_u64(chunk)?;
        let size = (header & SIZE_MASK) as usize;
        if size < MIN_CHUNK || chunk.checked_add(size).is_none_or(|e| e > self.brk) {
            return Err(Fault::CorruptMetadata {
                addr: chunk,
                what: "free(): invalid chunk size",
            });
        }
        self.insert_free(chunk, size)?;
        self.live_bytes = self.live_bytes.saturating_sub(size - 8);
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        &self.arena
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        let chunk = addr.checked_sub(8)?;
        if chunk < ALIGN || chunk >= self.brk {
            return None;
        }
        let header = self.arena.read_u64(chunk).ok()?;
        if header & IN_USE == 0 {
            return None;
        }
        ((header & SIZE_MASK) as usize).checked_sub(8)
    }

    fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    fn work(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diehard_core::rng::Mwc;
    use proptest::prelude::*;

    fn win() -> WindowsSimAllocator {
        WindowsSimAllocator::new(64 << 20)
    }

    #[test]
    fn roundtrip() {
        let mut a = win();
        let p = a.malloc(100, &[]).unwrap().unwrap();
        a.memory_mut().write(p, &[3u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        a.memory().read(p, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 100]);
        a.free(p).unwrap();
    }

    #[test]
    fn best_fit_prefers_tightest_chunk() {
        let mut a = win();
        let big = a.malloc(512, &[]).unwrap().unwrap();
        let _g1 = a.malloc(16, &[]).unwrap().unwrap();
        let small = a.malloc(64, &[]).unwrap().unwrap();
        let _g2 = a.malloc(16, &[]).unwrap().unwrap();
        a.free(big).unwrap();
        a.free(small).unwrap();
        // A 64-byte request must choose the tight 72-byte chunk, not the
        // 520-byte one.
        let p = a.malloc(64, &[]).unwrap().unwrap();
        assert_eq!(p, small);
    }

    #[test]
    fn address_ordered_coalescing_merges_all_three() {
        let mut a = win();
        let p1 = a.malloc(24, &[]).unwrap().unwrap();
        let p2 = a.malloc(24, &[]).unwrap().unwrap();
        let p3 = a.malloc(24, &[]).unwrap().unwrap();
        let _guard = a.malloc(24, &[]).unwrap().unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        a.free(p2).unwrap(); // middle free merges p1+p2+p3 into 96 bytes
        let merged = a.malloc(88, &[]).unwrap().unwrap();
        assert_eq!(merged, p1);
    }

    #[test]
    fn slower_than_lea_on_fragmented_heaps() {
        // The §7.2.2 claim, as a work-model assertion: with many free
        // chunks, best-fit full scans burn far more steps than Lea's
        // binned first-fit.
        let mut w = win();
        let mut l = crate::lea::LeaSimAllocator::new(64 << 20);
        let mut rng = Mwc::seeded(42);
        for alloc in [
            &mut w as &mut dyn SimAllocator,
            &mut l as &mut dyn SimAllocator,
        ] {
            let mut live = Vec::new();
            for _ in 0..2000 {
                let sz = 16 + rng.below(800);
                if let Some(p) = alloc.malloc(sz, &[]).unwrap() {
                    live.push(p);
                }
            }
            // Free every other object to fragment the heap, then churn.
            for p in live.iter().step_by(2) {
                alloc.free(*p).unwrap();
            }
            for _ in 0..2000 {
                let sz = 16 + rng.below(800);
                let _ = alloc.malloc(sz, &[]).unwrap();
            }
        }
        assert!(
            w.work() > l.work() * 3,
            "windows {} steps vs lea {} steps",
            w.work(),
            l.work()
        );
    }

    #[test]
    fn corrupted_header_crashes_free() {
        let mut a = win();
        let p = a.malloc(24, &[]).unwrap().unwrap();
        let q = a.malloc(24, &[]).unwrap().unwrap();
        a.memory_mut().write(p + 24, &[0xFF; 8]).unwrap();
        assert!(a.free(q).is_err());
    }

    #[test]
    fn exhaustion_returns_null() {
        let mut a = WindowsSimAllocator::new(4096);
        let mut served = 0;
        while let Ok(Some(_)) = a.malloc(64, &[]) {
            served += 1;
            if served > 500 {
                break;
            }
        }
        assert!(served > 0 && served < 500);
    }

    proptest! {
        /// Clean runs: no faults, no overlap, memory reused.
        #[test]
        fn clean_runs_never_fault(seed in any::<u64>(), ops in 1usize..200) {
            let mut a = win();
            let mut rng = Mwc::seeded(seed);
            let mut live: Vec<(Addr, usize)> = Vec::new();
            for _ in 0..ops {
                if rng.chance(0.6) || live.is_empty() {
                    let sz = 1 + rng.below(1000);
                    if let Some(p) = a.malloc(sz, &[]).unwrap() {
                        for &(q, qs) in &live {
                            prop_assert!(p + sz <= q || q + qs <= p);
                        }
                        live.push((p, sz));
                    }
                } else {
                    let (p, _) = live.swap_remove(rng.below(live.len()));
                    a.free(p).unwrap();
                }
            }
        }
    }
}
