//! Thin, allocation-free wrappers over the Unix virtual-memory syscalls the
//! real DieHard heap needs: reserve, release, and guard-page protection.

/// The system page size, queried once per call site (cheap syscall; the
/// allocator caches it in its state).
#[must_use]
pub fn page_size() -> usize {
    // SAFETY: sysconf is async-signal-safe and has no preconditions.
    let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if sz <= 0 {
        4096
    } else {
        sz as usize
    }
}

/// Reserves `len` bytes of zeroed, lazily-committed, read-write anonymous
/// memory (the paper: "memory that is reserved by DieHard but not used does
/// not consume any virtual memory; the actual implementation of DieHard
/// lazily initializes heap partitions"). Returns null on failure.
#[must_use]
pub fn map_reserve(len: usize) -> *mut u8 {
    // SAFETY: anonymous private mapping with no address hint; all argument
    // combinations here are valid per POSIX.
    let ptr = unsafe {
        libc::mmap(
            core::ptr::null_mut(),
            len,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
            -1,
            0,
        )
    };
    if ptr == libc::MAP_FAILED {
        core::ptr::null_mut()
    } else {
        ptr.cast::<u8>()
    }
}

/// Releases a mapping previously returned by [`map_reserve`].
///
/// # Safety
///
/// `ptr`/`len` must denote a live mapping created by [`map_reserve`] and no
/// references into it may outlive the call.
pub unsafe fn unmap(ptr: *mut u8, len: usize) {
    // SAFETY: forwarded caller contract.
    unsafe {
        libc::munmap(ptr.cast::<libc::c_void>(), len);
    }
}

/// Advises the kernel to back `[ptr, ptr + len)` with transparent huge
/// pages (`MADV_HUGEPAGE`). Best-effort and non-destructive: failure (old
/// kernel, THP disabled, unaligned range) changes nothing about the
/// mapping's contents or validity, so the result is deliberately ignored.
/// Self-gates on ranges shorter than one 2 MB huge page — advice there is
/// pure syscall overhead.
pub fn advise_hugepages(ptr: *mut u8, len: usize) {
    if ptr.is_null() || len < (2 << 20) {
        return;
    }
    // SAFETY: non-destructive advice on a mapping the caller owns; madvise
    // never invalidates the range.
    let _ = unsafe { libc::madvise(ptr.cast::<libc::c_void>(), len, libc::MADV_HUGEPAGE) };
}

/// Revokes all access to `[ptr, ptr + len)`, turning it into a guard region
/// ("guard pages without read or write access", §4.1).
///
/// # Safety
///
/// The range must lie within a live mapping and be page-aligned.
pub unsafe fn protect_none(ptr: *mut u8, len: usize) {
    // SAFETY: forwarded caller contract.
    unsafe {
        libc::mprotect(ptr.cast::<libc::c_void>(), len, libc::PROT_NONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p >= 4096);
        assert!(p.is_power_of_two());
    }

    #[test]
    fn map_and_unmap() {
        let len = 1 << 20;
        let ptr = map_reserve(len);
        assert!(!ptr.is_null());
        // Newly mapped anonymous memory reads as zero and is writable.
        // SAFETY: `ptr` maps `len` zeroed writable bytes.
        unsafe {
            assert_eq!(*ptr, 0);
            *ptr = 0xAB;
            assert_eq!(*ptr, 0xAB);
            unmap(ptr, len);
        }
    }

    #[test]
    fn hugepage_advice_is_harmless() {
        // Under the 2 MB gate: no syscall, trivially fine (null included).
        advise_hugepages(core::ptr::null_mut(), 1 << 30);
        advise_hugepages(4096 as *mut u8, 4096);
        // At size: advice must leave a live mapping fully usable.
        let len = 4 << 20;
        let ptr = map_reserve(len);
        assert!(!ptr.is_null());
        advise_hugepages(ptr, len);
        // SAFETY: `ptr` maps `len` zeroed writable bytes.
        unsafe {
            *ptr = 0xCD;
            *ptr.add(len - 1) = 0xEF;
            assert_eq!(*ptr, 0xCD);
            unmap(ptr, len);
        }
    }
}
