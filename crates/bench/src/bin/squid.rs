//! §7.3.2 — Real faults: the Squid buffer overflow.
//!
//! "Version 2.3s5 of the Squid web cache server has a buffer overflow error
//! that can be triggered by an ill-formed input. When faced with this input
//! and running with either the GNU libc allocator or the Boehm-Demers-
//! Weiser collector, Squid crashes with a segmentation fault. Using DieHard
//! in stand-alone mode, the overflow has no effect."
//!
//! Run: `cargo run --release -p diehard-bench --bin squid [runs]`

use diehard_bench::TextTable;
use diehard_core::config::HeapConfig;
use diehard_runtime::System;
use diehard_workloads::squid;

fn main() {
    let runs: u64 = diehard_bench::positional_args()
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| diehard_bench::smoke_scaled(10, 3));
    println!("§7.3.2 — squid-sim: one ill-formed request amid normal traffic\n");

    // Control: clean traffic works everywhere.
    let clean = squid::clean_scenario(30);
    let attack = squid::attack_scenario(30);

    let mut table = TextTable::new(vec!["system", "clean traffic", "ill-formed input"]);
    for system in [System::Libc, System::BdwGc] {
        let clean_v = system.evaluate(&clean);
        let attack_v = system.evaluate(&attack);
        table.row(vec![
            system.name().to_string(),
            clean_v.to_string(),
            attack_v.to_string(),
        ]);
    }
    // DieHard across seeds: the survival is probabilistic, overwhelmingly
    // in DieHard's favour.
    let mut correct = 0;
    for seed in 0..runs {
        let v = System::DieHard {
            config: HeapConfig::default(),
            seed,
        }
        .evaluate(&attack);
        if v.is_correct() {
            correct += 1;
        }
    }
    let clean_dh = System::DieHard {
        config: HeapConfig::default(),
        seed: 0,
    }
    .evaluate(&clean);
    table.row(vec![
        "DieHard".to_string(),
        clean_dh.to_string(),
        format!("correct {correct}/{runs} seeds"),
    ]);
    println!("{}", table.render());
    println!(
        "Paper: GNU libc → segfault; BDW GC → segfault; DieHard → runs correctly.\n\
         The overflow smashes whatever follows the 64-byte title buffer: a\n\
         boundary tag (libc), the adjacent cache entry's payload pointer (GC),\n\
         or — under DieHard — a random spot in a half-empty region."
    );
}
