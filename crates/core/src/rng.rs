//! Marsaglia's multiply-with-carry pseudo-random number generator.
//!
//! The paper (§4.1) specifies "an inlined version of Marsaglia's
//! multiply-with-carry random number generation algorithm, which is a fast,
//! high-quality source of pseudo-random numbers". This module implements the
//! classic two-lag MWC generator posted by George Marsaglia to
//! `sci.stat.math` in 1994:
//!
//! ```text
//! z = 36969 * (z & 65535) + (z >> 16);
//! w = 18000 * (w & 65535) + (w >> 16);
//! result = (z << 16) + w;
//! ```
//!
//! Every source of randomness in this repository flows through [`Mwc`] so
//! that experiments are exactly reproducible from a seed.

/// Marsaglia multiply-with-carry generator ("MWC", a.k.a. `znew`/`wnew`).
///
/// Fast, allocation-free, and deterministic given a seed — the properties the
/// DieHard allocator needs, since it runs inside `malloc` itself.
///
/// # Examples
///
/// ```
/// use diehard_core::rng::Mwc;
///
/// let mut a = Mwc::seeded(42);
/// let mut b = Mwc::seeded(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mwc {
    z: u32,
    w: u32,
}

/// Marsaglia's published default lag values; used when a seed half is zero
/// (a zero lag would collapse the generator into a fixed point).
const DEFAULT_Z: u32 = 362_436_069;
const DEFAULT_W: u32 = 521_288_629;

/// Words generated per state write-back in [`Mwc::fill_bytes`] (512 bytes —
/// a balance between stack footprint and amortizing the batch overhead).
const FILL_BATCH: usize = 64;

/// One step of the two-lag MWC recurrence — the single definition every
/// draw path shares (`next_u32`, batched fills, and the atomic generator's
/// local advance), so their streams are bit-identical by construction.
#[inline(always)]
fn mwc_step(z: &mut u32, w: &mut u32) -> u32 {
    *z = 36_969u32.wrapping_mul(*z & 0xFFFF).wrapping_add(*z >> 16);
    *w = 18_000u32.wrapping_mul(*w & 0xFFFF).wrapping_add(*w >> 16);
    (*z << 16).wrapping_add(*w)
}

impl Mwc {
    /// Creates a generator from a single 64-bit seed.
    ///
    /// The two 32-bit halves seed the two MWC lags. Zero halves are replaced
    /// with Marsaglia's published defaults so the generator never degenerates.
    ///
    /// # Examples
    ///
    /// ```
    /// use diehard_core::rng::Mwc;
    /// let mut rng = Mwc::seeded(0xDEAD_BEEF);
    /// let _ = rng.next_u32();
    /// ```
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let z = (seed >> 32) as u32;
        let w = seed as u32;
        Self {
            z: if z == 0 { DEFAULT_Z } else { z },
            w: if w == 0 { DEFAULT_W } else { w },
        }
    }

    /// Creates a generator seeded from the operating system's entropy source,
    /// mirroring the paper's use of `/dev/urandom` ("seeded with a true
    /// random number").
    ///
    /// Falls back to a mix of the current time and a stack address when
    /// `/dev/urandom` is unavailable.
    #[must_use]
    pub fn from_entropy() -> Self {
        Self::seeded(entropy_seed())
    }

    /// Returns the next 32-bit pseudo-random value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        mwc_step(&mut self.z, &mut self.w)
    }

    /// Returns the next 64-bit pseudo-random value (two MWC draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniformly distributed index in `0..bound`.
    ///
    /// Uses the widening-multiply technique, which avoids the modulo bias of
    /// `next % bound` while staying branch-light (important inside `malloc`).
    /// For a power-of-two bound `2^k` the result is exactly
    /// `next_u64() >> (64 - k)` — the shift the partition probe loop uses.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero (debug builds only; this runs inside the
    /// allocation probe loop, and every caller passes a capacity already
    /// validated positive at construction).
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        // 64x64 -> 128-bit multiply keeps the result uniform for any bound
        // that fits in usize.
        let r = self.next_u64();
        ((u128::from(r) * bound as u128) >> 64) as usize
    }

    /// Fills `out` with pseudo-random bytes, drawing one 64-bit word per
    /// eight bytes (replicated mode fills whole objects this way — a word
    /// per draw instead of calling the generator byte by byte, §4.1/§4.2).
    ///
    /// The byte stream is a pure function of the generator state as long as
    /// the caller chunks on 8-byte boundaries: filling one 64-byte buffer
    /// or eight 8-byte buffers back to back produces the same bytes (the
    /// fill paths chunk at the 4 KB page size, a multiple of 8). A trailing
    /// partial word consumes one full draw and keeps its leading bytes, so
    /// splitting *inside* a word would draw differently — don't.
    #[inline]
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut words = [0u64; FILL_BATCH];
        let mut chunks = out.chunks_exact_mut(8 * FILL_BATCH);
        for chunk in &mut chunks {
            self.fill_words(&mut words);
            for (dst, word) in chunk.chunks_exact_mut(8).zip(&words) {
                dst.copy_from_slice(&word.to_ne_bytes());
            }
        }
        let rest = chunks.into_remainder();
        let full = rest.len() / 8;
        self.fill_words(&mut words[..full]);
        let mut tail = rest.chunks_exact_mut(8);
        for (dst, word) in (&mut tail).zip(&words) {
            dst.copy_from_slice(&word.to_ne_bytes());
        }
        let rem = tail.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_ne_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }

    /// Fills `out` with consecutive [`next_u64`](Self::next_u64) draws in
    /// one batch: the generator state is hoisted into locals for the whole
    /// slice and written back once, so the loop body is pure register
    /// arithmetic — one state load/store pair per batch instead of per
    /// draw. The word stream is bit-identical to calling `next_u64` in a
    /// loop (both run the same [`mwc_step`]).
    #[inline]
    pub fn fill_words(&mut self, out: &mut [u64]) {
        let (mut z, mut w) = (self.z, self.w);
        for slot in out {
            let hi = mwc_step(&mut z, &mut w);
            let lo = mwc_step(&mut z, &mut w);
            *slot = (u64::from(hi) << 32) | u64::from(lo);
        }
        self.z = z;
        self.w = w;
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives a new independent generator, used to hand each replica its own
    /// random sequence from a single experiment master seed.
    #[must_use]
    pub fn split(&mut self) -> Self {
        // SplitMix-style avalanche of a fresh draw decorrelates the child.
        let s = splitmix(self.next_u64());
        Self::seeded(s)
    }
}

impl Default for Mwc {
    /// A generator with Marsaglia's published default lags.
    fn default() -> Self {
        Self {
            z: DEFAULT_Z,
            w: DEFAULT_W,
        }
    }
}

/// A shared-state [`Mwc`] whose two 32-bit lags live packed in one
/// `AtomicU64`, advanced by compare-and-swap.
///
/// The lock-free partition probe loop draws from this generator with `&self`
/// from any thread. A draw loads the packed state, computes the next two MWC
/// steps locally, and publishes them with a single CAS:
///
/// * **single-threaded, the stream is bit-identical to [`Mwc`]** — every
///   successful draw advances the state exactly as two `next_u32` calls
///   would, which is what keeps alloc-only placement sequences identical to
///   the locked heap for the same seed;
/// * **under contention, draws are serialized by the CAS** — each successful
///   `next_u64` returns a distinct consecutive pair from the one sequential
///   MWC stream (losers retry on the updated state), so concurrent threads
///   interleave the stream rather than duplicating values.
///
/// All state transitions use `Relaxed` ordering: the generator carries no
/// payload other than its own lags, and slot claims are ordered separately
/// by the bitmap's own atomics.
#[derive(Debug)]
pub struct AtomicMwc {
    /// `z` in the high 32 bits, `w` in the low 32 bits.
    state: core::sync::atomic::AtomicU64,
}

impl AtomicMwc {
    /// Creates a generator from a single 64-bit seed, with the same
    /// zero-half replacement as [`Mwc::seeded`] (so `AtomicMwc::seeded(s)`
    /// and `Mwc::seeded(s)` start from identical lags).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let m = Mwc::seeded(seed);
        Self {
            state: core::sync::atomic::AtomicU64::new(pack(m.z, m.w)),
        }
    }

    /// Returns the next 64-bit value (two MWC steps), identical to
    /// [`Mwc::next_u64`] on the same state.
    #[inline]
    pub fn next_u64(&self) -> u64 {
        use core::sync::atomic::Ordering::Relaxed;
        let mut cur = self.state.load(Relaxed);
        loop {
            let mut m = unpack(cur);
            let out = m.next_u64();
            match self
                .state
                .compare_exchange_weak(cur, pack(m.z, m.w), Relaxed, Relaxed)
            {
                Ok(_) => return out,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns a uniformly distributed index in `0..bound` via the same
    /// widening multiply as [`Mwc::below`] (used for the rare non-power-of-two
    /// capacities; power-of-two probes use the shift on `next_u64` directly).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero (debug builds only).
    #[inline]
    pub fn below(&self, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        let r = self.next_u64();
        ((u128::from(r) * bound as u128) >> 64) as usize
    }
}

#[inline]
fn pack(z: u32, w: u32) -> u64 {
    (u64::from(z) << 32) | u64::from(w)
}

#[inline]
fn unpack(state: u64) -> Mwc {
    Mwc {
        z: (state >> 32) as u32,
        w: state as u32,
    }
}

impl Iterator for Mwc {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        Some(self.next_u32())
    }
}

/// Derives the seed of substream `stream` from a single master seed.
///
/// The sharded heap gives every size-class partition its own [`Mwc`] so
/// that shards never contend on a shared generator; seeding each from
/// `stream_seed(master, class_index)` keeps the whole heap deterministic
/// from one master seed while decorrelating the per-shard streams (two
/// SplitMix64 avalanche rounds separate even adjacent stream indices).
///
/// # Examples
///
/// ```
/// use diehard_core::rng::stream_seed;
///
/// assert_eq!(stream_seed(42, 0), stream_seed(42, 0)); // deterministic
/// assert_ne!(stream_seed(42, 0), stream_seed(42, 1)); // streams differ
/// ```
#[must_use]
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    splitmix(master ^ splitmix(stream.wrapping_add(1)))
}

/// One round of the SplitMix64 finalizer, used to stretch and decorrelate
/// seeds (not used on the allocation fast path).
#[must_use]
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Reads a 64-bit truly random seed, preferring `/dev/urandom` exactly as the
/// Linux version of DieHard does (§4.1).
///
/// This implementation is allocation-free so it can run inside the global
/// allocator. When `/dev/urandom` cannot be read (non-Unix platforms or a
/// sandboxed environment), it falls back to hashing the current time and a
/// stack address (ASLR entropy).
#[must_use]
pub fn entropy_seed() -> u64 {
    if let Some(seed) = urandom_seed() {
        return seed;
    }
    fallback_seed()
}

#[cfg(all(unix, feature = "global"))]
fn urandom_seed() -> Option<u64> {
    // Raw libc calls: no heap allocation, safe to run inside malloc.
    let path = b"/dev/urandom\0";
    // SAFETY: `path` is a valid NUL-terminated string; O_RDONLY has no
    // required mode argument.
    let fd = unsafe { libc::open(path.as_ptr().cast::<libc::c_char>(), libc::O_RDONLY) };
    if fd < 0 {
        return None;
    }
    let mut buf = [0u8; 8];
    // SAFETY: `buf` is valid for 8 writable bytes and `fd` is open.
    let n = unsafe { libc::read(fd, buf.as_mut_ptr().cast::<libc::c_void>(), 8) };
    // SAFETY: `fd` was returned by `open` above.
    unsafe { libc::close(fd) };
    if n == 8 {
        Some(u64::from_ne_bytes(buf))
    } else {
        None
    }
}

#[cfg(not(all(unix, feature = "global")))]
fn urandom_seed() -> Option<u64> {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom").ok()?;
    let mut buf = [0u8; 8];
    f.read_exact(&mut buf).ok()?;
    Some(u64::from_ne_bytes(buf))
}

fn fallback_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let stack_probe = 0u8;
    let addr = core::ptr::addr_of!(stack_probe) as u64;
    splitmix(t ^ addr.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed from Marsaglia's recurrence by hand:
    /// starting from the published default lags, one step gives
    /// z1 = 36969*(362436069 & 0xFFFF) + (362436069 >> 16)
    /// w1 = 18000*(521288629 & 0xFFFF) + (521288629 >> 16)
    /// out = (z1 << 16) + w1 (mod 2^32).
    #[test]
    fn matches_marsaglia_recurrence() {
        let mut rng = Mwc::default();
        let z = DEFAULT_Z;
        let w = DEFAULT_W;
        let z1 = 36_969u32.wrapping_mul(z & 0xFFFF).wrapping_add(z >> 16);
        let w1 = 18_000u32.wrapping_mul(w & 0xFFFF).wrapping_add(w >> 16);
        let expect = (z1 << 16).wrapping_add(w1);
        assert_eq!(rng.next_u32(), expect);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Mwc::seeded(123_456_789);
        let mut b = Mwc::seeded(123_456_789);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mwc::seeded(1);
        let mut b = Mwc::seeded(2);
        let equal = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(equal < 4, "streams should differ (got {equal} collisions)");
    }

    #[test]
    fn zero_seed_does_not_degenerate() {
        let mut rng = Mwc::seeded(0);
        let first = rng.next_u32();
        let second = rng.next_u32();
        assert_ne!(first, second);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Mwc::seeded(7);
        for bound in [1usize, 2, 3, 10, 1024, 4095] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)] // `below` hot path carries a debug_assert only
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Mwc::seeded(1).below(0);
    }

    #[test]
    fn below_power_of_two_equals_shift() {
        // The strength-reduced partition draw relies on this identity.
        let mut a = Mwc::seeded(0x5EED);
        let mut b = Mwc::seeded(0x5EED);
        for k in [1u32, 3, 6, 14, 20, 31, 47, 63] {
            for _ in 0..256 {
                let via_below = a.below(1usize << k);
                let via_shift = (b.next_u64() >> (64 - k)) as usize;
                assert_eq!(via_below, via_shift, "bound 2^{k}");
            }
        }
    }

    #[test]
    fn fill_bytes_matches_word_draws_and_chunking() {
        let mut words = Mwc::seeded(42);
        let mut filler = Mwc::seeded(42);
        let mut buf = [0u8; 24];
        filler.fill_bytes(&mut buf);
        for chunk in buf.chunks(8) {
            assert_eq!(chunk, &words.next_u64().to_ne_bytes());
        }
        // Chunked fills draw the same stream as one contiguous fill.
        let mut chunked = Mwc::seeded(42);
        let mut a = [0u8; 16];
        let mut b = [0u8; 8];
        chunked.fill_bytes(&mut a);
        chunked.fill_bytes(&mut b);
        assert_eq!(&buf[..16], &a);
        assert_eq!(&buf[16..], &b);
        // A trailing partial word consumes one draw and keeps its prefix.
        let mut tail = Mwc::seeded(7);
        let expect = tail.next_u64().to_ne_bytes();
        let mut tail2 = Mwc::seeded(7);
        let mut small = [0u8; 3];
        tail2.fill_bytes(&mut small);
        assert_eq!(small, expect[..3]);
        assert_eq!(tail2.next_u64(), tail.next_u64(), "exactly one draw used");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Mwc::seeded(99);
        let bound = 8;
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.below(bound)] += 1;
        }
        let expect = n / bound;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "bucket {i} off by {dev:.3}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Mwc::seeded(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Mwc::seeded(11);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.1));
        }
    }

    #[test]
    fn chance_mid_probability() {
        let mut rng = Mwc::seeded(13);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn split_produces_distinct_stream() {
        let mut parent = Mwc::seeded(77);
        let mut child = parent.split();
        let mut collisions = 0;
        for _ in 0..64 {
            if parent.next_u32() == child.next_u32() {
                collisions += 1;
            }
        }
        assert!(collisions < 4);
    }

    #[test]
    fn entropy_seed_varies() {
        // Two reads should essentially never agree.
        assert_ne!(entropy_seed(), entropy_seed());
    }

    #[test]
    fn iterator_interface() {
        let rng = Mwc::seeded(3);
        let v: Vec<u32> = rng.take(4).collect();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn stream_seeds_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..16).map(|i| stream_seed(0xA11C, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_eq!(a, stream_seed(0xA11C, i as u64), "stream {i} unstable");
            for (j, &b) in seeds.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "streams {i} and {j} collide");
            }
        }
        // Different masters shift every stream.
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn atomic_mwc_matches_sequential_stream() {
        // Single-threaded, the CAS generator is bit-identical to Mwc — the
        // property the lock-free heap's determinism contract rests on.
        let mut seq = Mwc::seeded(0xD1E_4A8D);
        let atomic = AtomicMwc::seeded(0xD1E_4A8D);
        for _ in 0..1000 {
            assert_eq!(atomic.next_u64(), seq.next_u64());
        }
        for bound in [1usize, 3, 1024, 4095] {
            assert_eq!(atomic.below(bound), seq.below(bound));
        }
    }

    #[test]
    fn atomic_mwc_interleaves_one_stream_across_threads() {
        // Concurrent draws must partition the single sequential stream:
        // every value drawn by any thread appears in the sequential stream,
        // and no value is drawn twice.
        use std::collections::HashSet;
        use std::sync::Arc;
        let atomic = Arc::new(AtomicMwc::seeded(0xC0FFEE));
        const PER_THREAD: usize = 2000;
        const THREADS: usize = 4;
        let mut drawn: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let rng = Arc::clone(&atomic);
                    s.spawn(move || (0..PER_THREAD).map(|_| rng.next_u64()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("drawer thread"))
                .collect()
        });
        let mut seq = Mwc::seeded(0xC0FFEE);
        let expected: HashSet<u64> = (0..THREADS * PER_THREAD).map(|_| seq.next_u64()).collect();
        drawn.sort_unstable();
        let before = drawn.len();
        drawn.dedup();
        assert_eq!(drawn.len(), before, "a draw was duplicated");
        for v in &drawn {
            assert!(expected.contains(v), "draw {v:#x} not in the MWC stream");
        }
    }

    #[test]
    fn splitmix_known_value() {
        // First output of SplitMix64 with seed 0 (well-known test vector).
        assert_eq!(splitmix(0), 0xE220_A839_7B1D_CDAF);
    }
}
