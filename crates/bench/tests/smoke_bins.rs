//! Runs a representative subset of the evaluation binaries with `--smoke`,
//! proving every registered bin target actually launches, computes, and
//! prints a table — the CI guard for the `cargo run --bin fig4a -- --smoke`
//! fast path.

use std::process::Command;

fn run_smoke(bin_path: &str, expect: &str) {
    let out = Command::new(bin_path)
        .arg("--smoke")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin_path}: {e}"));
    assert!(
        out.status.success(),
        "{bin_path} --smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(expect),
        "{bin_path} output missing {expect:?}:\n{stdout}"
    );
}

#[test]
fn fig4a_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_fig4a"), "Figure 4(a)");
}

#[test]
fn squid_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_squid"), "squid-sim");
}

#[test]
fn table1_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_table1"), "Table 1");
}

#[test]
fn uninit_smoke() {
    run_smoke(env!("CARGO_BIN_EXE_uninit"), "Theorem 3");
}
