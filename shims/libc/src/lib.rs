//! Minimal offline stand-in for the `libc` crate.
//!
//! The build container has no access to crates.io, so this shim declares
//! exactly the libc surface the workspace uses — the virtual-memory and
//! file-descriptor calls behind `diehard_core::global`, the TCP
//! socket surface behind `diehard_replicate::net` (socket/bind/listen/
//! accept/connect/setsockopt/getsockname/shutdown), plus the errno/fork/
//! dlopen surface behind the `diehard-preload` interposer and its tests —
//! against the system C library that every Rust binary on Linux already
//! links. Constants are
//! the Linux (x86_64/aarch64) values; each is annotated where platforms
//! diverge. Swap this for the real `libc` crate by editing one line in
//! the workspace `Cargo.toml` when online.

#![no_std]
#![allow(non_camel_case_types)]

/// C `char` (platform-signedness is irrelevant for our byte-wise uses).
pub type c_char = core::ffi::c_char;
/// C `short`.
pub type c_short = core::ffi::c_short;
/// C `int`.
pub type c_int = core::ffi::c_int;
/// C `long`.
pub type c_long = core::ffi::c_long;
/// C `unsigned long`.
pub type c_ulong = core::ffi::c_ulong;
/// C `void` (only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t`.
pub type ssize_t = isize;
/// C `off_t` (64-bit on the Linux targets we build for).
pub type off_t = i64;
/// Process id.
pub type pid_t = c_int;
/// `pthread(3)` thread-specific-data key (glibc/musl: an unsigned int).
pub type pthread_key_t = core::ffi::c_uint;
/// `poll(2)` descriptor-count type.
pub type nfds_t = c_ulong;
/// Socket address length (POSIX: an unsigned 32-bit int on Linux).
pub type socklen_t = u32;
/// Socket address family tag (Linux: unsigned short).
pub type sa_family_t = u16;

/// An IPv4 address in network byte order (`netinet/in.h`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct in_addr {
    /// The 32-bit address, big-endian.
    pub s_addr: u32,
}

/// An IPv4 socket address (`netinet/in.h`). Layout audit: Linux packs
/// `sin_family` (u16), `sin_port` (u16, network order), `sin_addr` (u32),
/// then 8 bytes of zero padding to pad the struct to `sockaddr`'s 16
/// bytes — 16 bytes total, no implicit padding between fields.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    /// Always `AF_INET`.
    pub sin_family: sa_family_t,
    /// Port in network byte order (`u16::to_be`).
    pub sin_port: u16,
    /// Address in network byte order.
    pub sin_addr: in_addr,
    /// Zero padding up to `sizeof(struct sockaddr)`.
    pub sin_zero: [u8; 8],
}

/// The generic socket address header (`sys/socket.h`); only ever used as
/// a pointer target for casts from concrete families.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr {
    /// Address family tag.
    pub sa_family: sa_family_t,
    /// Family-specific payload.
    pub sa_data: [c_char; 14],
}

/// One entry in a `poll(2)` descriptor set.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct pollfd {
    /// The file descriptor to watch (negative entries are ignored).
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Returned events (may include `POLLERR` / `POLLHUP` / `POLLNVAL`).
    pub revents: c_short,
}

/// `open(2)` flag: read-only.
pub const O_RDONLY: c_int = 0;
/// File-status flag: non-blocking I/O (Linux generic value).
pub const O_NONBLOCK: c_int = 0o4000;

/// `fcntl(2)` command: get descriptor flags (`FD_CLOEXEC`).
pub const F_GETFD: c_int = 1;
/// `fcntl(2)` command: set descriptor flags.
pub const F_SETFD: c_int = 2;
/// `fcntl(2)` command: get file-status flags.
pub const F_GETFL: c_int = 3;
/// `fcntl(2)` command: set file-status flags.
pub const F_SETFL: c_int = 4;
/// Descriptor flag: close on `execve(2)`. The proxy sets it on every
/// socket so replica children never inherit client connections (an
/// inherited socket would keep the peer's EOF from ever arriving).
pub const FD_CLOEXEC: c_int = 1;

/// Socket family: IPv4 (Linux value).
pub const AF_INET: c_int = 2;
/// Socket type: byte stream / TCP (Linux generic value; 1 on x86_64 and
/// aarch64 — only SPARC differs, which we don't build for).
pub const SOCK_STREAM: c_int = 1;
/// `setsockopt(2)` level: the socket layer itself (Linux value; 1 on
/// x86_64/aarch64 — BSD's 0xffff does NOT apply).
pub const SOL_SOCKET: c_int = 1;
/// Socket option: allow rebinding a recently-closed local address (Linux
/// value).
pub const SO_REUSEADDR: c_int = 2;
/// `shutdown(2)` how: close the write half (SHUT_WR), delivering EOF to
/// the peer while keeping the read half open.
pub const SHUT_WR: c_int = 1;

/// `poll(2)` event: data available to read.
pub const POLLIN: c_short = 0x001;
/// `poll(2)` event: writable without blocking.
pub const POLLOUT: c_short = 0x004;
/// `poll(2)` returned event: error condition on the descriptor.
pub const POLLERR: c_short = 0x008;
/// `poll(2)` returned event: peer hung up.
pub const POLLHUP: c_short = 0x010;
/// `poll(2)` returned event: invalid descriptor.
pub const POLLNVAL: c_short = 0x020;

/// `SIGKILL` — uncatchable termination (the voter's kill signal).
pub const SIGKILL: c_int = 9;

/// `errno` value: out of memory (`ENOMEM`, Linux generic value).
pub const ENOMEM: c_int = 12;
/// `errno` value: invalid argument (`EINVAL`, Linux generic value).
pub const EINVAL: c_int = 22;

/// `dlopen(3)` flag: resolve all symbols at load time.
pub const RTLD_NOW: c_int = 2;
/// `dlopen(3)` flag: keep the object's symbols out of the global scope —
/// essential when loading a malloc-exporting library for inspection: its
/// symbols must not start interposing on this process (Linux value; the
/// default, spelled explicitly).
pub const RTLD_LOCAL: c_int = 0;

/// `sysconf(3)` selector for the VM page size (Linux value).
pub const _SC_PAGESIZE: c_int = 30;

/// `mmap(2)` protection: readable.
pub const PROT_READ: c_int = 1;
/// `mmap(2)` protection: writable.
pub const PROT_WRITE: c_int = 2;
/// `mprotect(2)` protection: no access (guard pages).
pub const PROT_NONE: c_int = 0;

/// `mmap(2)` flag: private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// `mmap(2)` flag: anonymous (not file-backed) mapping (Linux value).
pub const MAP_ANONYMOUS: c_int = 0x20;
/// `mmap(2)` flag: don't reserve swap for the mapping (Linux value).
pub const MAP_NORESERVE: c_int = 0x4000;
/// `mmap(2)` error sentinel: `(void *) -1`.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

/// `madvise(2)` advice: back this mapping with transparent huge pages
/// (Linux value).
pub const MADV_HUGEPAGE: c_int = 14;

extern "C" {
    /// `open(2)`.
    pub fn open(path: *const c_char, flags: c_int, ...) -> c_int;
    /// `read(2)`.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// `sysconf(3)`.
    pub fn sysconf(name: c_int) -> c_long;
    /// `getenv(3)`.
    pub fn getenv(name: *const c_char) -> *mut c_char;
    /// `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// `munmap(2)`.
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
    /// `mprotect(2)`.
    pub fn mprotect(addr: *mut c_void, length: size_t, prot: c_int) -> c_int;
    /// `madvise(2)`.
    pub fn madvise(addr: *mut c_void, length: size_t, advice: c_int) -> c_int;
    /// `poll(2)`.
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    /// `fcntl(2)` (variadic: `F_SETFL` takes the flags as a third argument).
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    /// `kill(2)`.
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// `fork(2)`.
    pub fn fork() -> pid_t;
    /// `waitpid(2)`.
    pub fn waitpid(pid: pid_t, wstatus: *mut c_int, options: c_int) -> pid_t;
    /// `_exit(2)`: terminate immediately, no atexit/stdio teardown (the
    /// only safe exit from a test's forked child).
    pub fn _exit(status: c_int) -> !;
    /// `__errno_location(3)`: the address of this thread's `errno` (glibc
    /// and musl both export this exact symbol on Linux).
    pub fn __errno_location() -> *mut c_int;
    /// `pthread_atfork(3)`: registers fork preparation/resume handlers.
    pub fn pthread_atfork(
        prepare: Option<extern "C" fn()>,
        parent: Option<extern "C" fn()>,
        child: Option<extern "C" fn()>,
    ) -> c_int;
    /// `dlopen(3)` (in libc proper since glibc 2.34; the container's glibc
    /// qualifies).
    pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    /// `dlsym(3)`.
    pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    /// `pthread_key_create(3)`: allocates a thread-specific-data key whose
    /// destructor runs at each thread's exit while its value is non-null.
    pub fn pthread_key_create(
        key: *mut pthread_key_t,
        destructor: Option<unsafe extern "C" fn(*mut c_void)>,
    ) -> c_int;
    /// `pthread_setspecific(3)`: binds this thread's value for `key`.
    pub fn pthread_setspecific(key: pthread_key_t, value: *const c_void) -> c_int;
    /// `socket(2)`.
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    /// `bind(2)`.
    pub fn bind(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    /// `listen(2)`.
    pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    /// `accept(2)` (plain form — the shim targets portable POSIX, so
    /// `O_NONBLOCK`/`FD_CLOEXEC` are applied via `fcntl(2)` afterwards
    /// rather than through Linux-only `accept4`).
    pub fn accept(sockfd: c_int, addr: *mut sockaddr, addrlen: *mut socklen_t) -> c_int;
    /// `connect(2)`.
    pub fn connect(sockfd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    /// `setsockopt(2)`.
    pub fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;
    /// `getsockname(2)` (used to recover the port after binding port 0).
    pub fn getsockname(sockfd: c_int, addr: *mut sockaddr, addrlen: *mut socklen_t) -> c_int;
    /// `shutdown(2)`.
    pub fn shutdown(sockfd: c_int, how: c_int) -> c_int;
}
