//! Audited parsing for the `DIEHARD_*` environment knobs.
//!
//! Every environment read the allocator performs funnels through this
//! module, so the whole knob surface has one parsing contract:
//!
//! * **Strict decimal.** A value is accepted only when it is a non-empty
//!   run of ASCII digits whose value fits the target type. Anything else —
//!   empty string, sign, whitespace, hex, overflow — is *malformed* and
//!   treated exactly like an unset variable, falling back to the knob's
//!   documented default. Malformed input never panics: these parsers run
//!   inside allocator initialization, where a panic would try to allocate
//!   and recurse.
//! * **No allocation.** The readers walk the `getenv` C string into a
//!   fixed stack buffer; a value longer than the longest representable
//!   `u64` (20 digits) cannot be in range, so oversized values are
//!   malformed by construction. This keeps the readers callable from
//!   inside `malloc` itself (the `global` allocator and the `LD_PRELOAD`
//!   interposer both initialize lazily on first allocation).
//! * **Clamped ranges.** Knobs with a bounded domain (`DIEHARD_GROW`'s
//!   fraction exponent) are clamped here, in one place, instead of being
//!   truncated ad hoc at the use site.
//!
//! The pure parsers are always available (and unit-tested without any
//! process-global state); the `getenv`-backed readers exist only with the
//! `global` feature on Unix, alongside the allocator that uses them.
//!
//! | Variable            | Meaning                                  | Default    |
//! |---------------------|------------------------------------------|------------|
//! | `DIEHARD_SEED`      | master RNG seed                          | entropy    |
//! | `DIEHARD_REGION_MB` | per-class region megabytes               | 32 (min 1) |
//! | `DIEHARD_M`         | expansion factor `M`                     | 2 (min 1)  |
//! | `DIEHARD_GROW`      | elastic start fraction `1/2^n` (`n`≤63)  | unset      |

/// Largest accepted `DIEHARD_GROW` exponent: a class starting at `1/2^63`
/// of its maximum is already a degenerate single-doubling ladder, and the
/// geometry's shift arithmetic lives in `u64` space. Values above this are
/// clamped (the intent "start tiny" is preserved), never truncated bit-wise
/// — `DIEHARD_GROW=4294967296` used to truncate through `as u32` to `0`,
/// silently meaning "start at full size".
pub const MAX_GROW_LOG2: u32 = 63;

/// Default `DIEHARD_REGION_MB`: 32 MB per class, the paper's 384 MB heap.
pub const DEFAULT_REGION_MB: u64 = 32;

/// Default `DIEHARD_M`: the paper's evaluation multiplier.
pub const DEFAULT_MULTIPLIER: u64 = 2;

/// Strict decimal parse: `Some(value)` iff `bytes` is a non-empty ASCII
/// digit run whose value fits a `u64`. No sign, no whitespace, no radix
/// prefixes; leading zeros are fine.
#[must_use]
pub fn parse_u64(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &b in bytes {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(value)
}

/// Parses a `DIEHARD_GROW` value: strict decimal, then clamped to
/// [`MAX_GROW_LOG2`]. Malformed input is `None` (elastic mode stays off).
#[must_use]
pub fn parse_grow(bytes: &[u8]) -> Option<u32> {
    parse_u64(bytes).map(|g| g.min(u64::from(MAX_GROW_LOG2)) as u32)
}

#[cfg(all(feature = "global", unix))]
mod readers {
    use super::{parse_u64, DEFAULT_MULTIPLIER, DEFAULT_REGION_MB, MAX_GROW_LOG2};

    /// Longest value worth reading: `u64::MAX` has 20 digits; anything
    /// longer is out of range (or has leading zeros past any sane use) and
    /// is treated as malformed.
    const VALUE_MAX: usize = 20;

    /// Reads environment variable `name` (NUL-terminated literal) as a
    /// strict decimal `u64` without allocating. `None` when unset,
    /// malformed, or longer than [`VALUE_MAX`] bytes.
    #[must_use]
    pub fn read_u64(name: &'static str) -> Option<u64> {
        debug_assert!(name.ends_with('\0'), "env names must be NUL-terminated");
        // SAFETY: `name` is NUL-terminated; getenv does not allocate.
        let raw = unsafe { libc::getenv(name.as_ptr().cast::<libc::c_char>()) };
        if raw.is_null() {
            return None;
        }
        let mut buf = [0u8; VALUE_MAX];
        let mut len = 0;
        loop {
            // SAFETY: `raw + len` walks the NUL-terminated getenv string;
            // every byte before the terminator is readable.
            let c = unsafe { *raw.add(len) } as u8;
            if c == 0 {
                break;
            }
            if len == VALUE_MAX {
                return None; // longer than any in-range value
            }
            buf[len] = c;
            len += 1;
        }
        parse_u64(&buf[..len])
    }

    /// `DIEHARD_SEED`: `Some(seed)` when set and well-formed, else `None`
    /// (the allocator then draws true entropy).
    #[must_use]
    pub fn seed() -> Option<u64> {
        read_u64("DIEHARD_SEED\0")
    }

    /// `DIEHARD_GROW`: the elastic start-fraction exponent, clamped to
    /// [`MAX_GROW_LOG2`]. `None` (unset/malformed) keeps elastic mode off.
    #[must_use]
    pub fn grow() -> Option<u32> {
        read_u64("DIEHARD_GROW\0").map(|g| g.min(u64::from(MAX_GROW_LOG2)) as u32)
    }

    /// `DIEHARD_REGION_MB`: per-class region megabytes, default
    /// [`DEFAULT_REGION_MB`], floored at 1 (a zero-byte region is not a
    /// heap).
    #[must_use]
    pub fn region_mb() -> u64 {
        read_u64("DIEHARD_REGION_MB\0")
            .unwrap_or(DEFAULT_REGION_MB)
            .max(1)
    }

    /// `DIEHARD_M`: the expansion factor, default [`DEFAULT_MULTIPLIER`],
    /// floored at 1 (`M < 1` would cap classes below their own capacity).
    #[must_use]
    pub fn multiplier() -> u64 {
        read_u64("DIEHARD_M\0").unwrap_or(DEFAULT_MULTIPLIER).max(1)
    }
}

#[cfg(all(feature = "global", unix))]
pub use readers::{grow, multiplier, read_u64, region_mb, seed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_plain_decimal() {
        assert_eq!(parse_u64(b"0"), Some(0));
        assert_eq!(parse_u64(b"12345"), Some(12345));
        assert_eq!(parse_u64(b"00042"), Some(42));
        assert_eq!(parse_u64(b"18446744073709551615"), Some(u64::MAX));
    }

    #[test]
    fn parse_rejects_everything_else() {
        for bad in [
            &b""[..],
            b" 1",
            b"1 ",
            b"-1",
            b"+1",
            b"0x10",
            b"1e3",
            b"12x45",
            b"18446744073709551616", // u64::MAX + 1
            b"99999999999999999999999999",
        ] {
            assert_eq!(parse_u64(bad), None, "{:?}", core::str::from_utf8(bad));
        }
    }

    #[test]
    fn grow_clamps_instead_of_truncating() {
        assert_eq!(parse_grow(b"6"), Some(6));
        assert_eq!(parse_grow(b"63"), Some(63));
        // The old `as u32` cast turned 2^32 into 0 ("start at full size");
        // the audited parser clamps to the largest meaningful exponent.
        assert_eq!(parse_grow(b"4294967296"), Some(MAX_GROW_LOG2));
        assert_eq!(parse_grow(b"18446744073709551615"), Some(MAX_GROW_LOG2));
        assert_eq!(parse_grow(b"sideways"), None);
        assert_eq!(parse_grow(b""), None);
    }

    #[cfg(all(feature = "global", unix))]
    mod getenv_backed {
        use super::super::*;

        // One test mutating one process-global variable, serialized with
        // nothing: no other test in the workspace reads this name.
        #[test]
        fn read_u64_walks_real_environment() {
            std::env::set_var("DIEHARD_ENV_MODULE_TEST", "12345");
            assert_eq!(read_u64("DIEHARD_ENV_MODULE_TEST\0"), Some(12345));
            std::env::set_var("DIEHARD_ENV_MODULE_TEST", "12x45");
            assert_eq!(read_u64("DIEHARD_ENV_MODULE_TEST\0"), None);
            std::env::set_var("DIEHARD_ENV_MODULE_TEST", "184467440737095516151");
            assert_eq!(read_u64("DIEHARD_ENV_MODULE_TEST\0"), None, "21 digits");
            std::env::remove_var("DIEHARD_ENV_MODULE_TEST");
            assert_eq!(read_u64("DIEHARD_ENV_MODULE_TEST\0"), None);
        }

        #[test]
        fn defaults_apply_when_unset() {
            // These names are never set by the test harness.
            assert_eq!(region_mb(), DEFAULT_REGION_MB);
            assert_eq!(multiplier(), DEFAULT_MULTIPLIER);
        }
    }
}
