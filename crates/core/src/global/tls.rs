//! Thread-local magazine storage for the global allocator.
//!
//! # Why this TLS scheme
//!
//! The magazines of [`crate::magazine`] need per-thread storage that is
//! reachable from inside `malloc` itself, which rules out almost every
//! convenient option:
//!
//! * **`std` lazy TLS (`thread_local!` with a `Drop` type)** registers its
//!   destructor through `__cxa_thread_atexit_impl`, which **allocates**
//!   (glibc `calloc`s the dtor list) — re-entering the allocator that is
//!   mid-initialization. Rejected.
//! * **`#[thread_local]`** would be exactly right but is unstable.
//! * **`pthread_getspecific` for the data itself** costs a call per
//!   allocation and an allocation for the block. Rejected for the hot path.
//!
//! What stable Rust *does* lower to plain ELF TLS is `thread_local!` with a
//! `const` initializer and a type that `!needs_drop` — no lazy-init state,
//! no destructor registration, no allocation, ever. So the per-thread block
//! here is exactly that: a `const`-initialized [`ThreadMagazines`] plus a
//! few `Cell`s. The one thing ELF TLS cannot give us is a **thread-exit
//! hook** (a thread that dies holding reservations would leak them), so a
//! single process-wide `pthread` key is created lazily and each thread's
//! block pointer is stored in it once — the key's destructor flushes the
//! block when the thread exits. `pthread_setspecific` for the first few keys
//! writes into fixed storage inside glibc's `struct pthread` (no malloc),
//! and the destructor runs while ELF TLS is still mapped, so the pointer it
//! receives is valid.
//!
//! # Why the heap registry
//!
//! A TLS block caches a raw pointer to the [`GlobalState`] it is bound to.
//! Unlike the process-singleton `#[global_allocator]` case, tests construct
//! many short-lived [`DieHard`](super::DieHard) instances, so that pointer
//! can outlive its heap. Every deref that is **not** protected by a live
//! `&GlobalState` borrow (the thread-exit destructor, and the flush of the
//! *previous* heap when a thread rebinds to a new one) therefore goes
//! through [`REGISTRY`], a fixed-capacity table of live heap ids:
//!
//! * a heap registers itself (id → pointer) when magazines first engage and
//!   unregisters in `Drop` — both under the registry lock;
//! * dangling-pointer flushes hold the registry lock for the *entire* flush,
//!   so a concurrent `Drop` (which must take the same lock to unregister)
//!   cannot free the state mid-flush;
//! * a lookup miss means the heap is gone: the block's contents are
//!   discarded (the reservations died with the heap's arena).
//!
//! Consequence, documented in the unsafe-surface audit: a `DieHard` value
//! must not be *moved* after its first allocation (the registry holds its
//! interior address). Statics never move; test instances are moved only
//! while still uninitialized.

use super::GlobalState;
use crate::magazine::ThreadMagazines;
use crate::sync::{OnceCell, SpinLock};
use core::cell::{Cell, UnsafeCell};
use core::sync::atomic::{AtomicU64, Ordering};

/// Maximum simultaneously-live registered heaps. Overflow is handled
/// gracefully: an unregistrable heap simply runs uncached (see
/// [`super::DieHard`]'s `magazines_on`).
const MAX_HEAPS: usize = 64;

/// Live-heap table: `ids[i]` is 0 for a free row, else the id whose
/// `GlobalState` lives at `ptrs[i]`.
struct Registry {
    ids: [u64; MAX_HEAPS],
    ptrs: [usize; MAX_HEAPS],
}

static REGISTRY: SpinLock<Registry> = SpinLock::new(Registry {
    ids: [0; MAX_HEAPS],
    ptrs: [0; MAX_HEAPS],
});

/// Monotonic heap-id source; 0 is reserved for "unbound".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The one process-wide thread-exit key (created on first magazine bind).
static EXIT_KEY: OnceCell<libc::pthread_key_t> = OnceCell::new();

/// Draws a fresh nonzero heap id.
pub(super) fn allocate_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Guardless registry lock for the `fork(2)` prepare path: with the
/// registry held, no thread is mid-way through a stale-heap flush (which
/// holds this lock for its whole duration), so the child inherits a
/// registry no one was mutating. First in the fork lock order — a flush
/// takes maintenance locks *while* holding the registry, never the
/// reverse.
pub(super) fn registry_lock() {
    REGISTRY.raw_lock();
}

/// Releases [`registry_lock`] (parent and child resume paths).
///
/// # Safety
///
/// The registry must be held via `registry_lock` (by this thread or, in a
/// fork child, by the thread the process forked from).
pub(super) unsafe fn registry_unlock() {
    // SAFETY: forwarded caller contract.
    unsafe { REGISTRY.raw_unlock() };
}

/// Registers `state` under its id; idempotent. Returns `false` when the
/// table is full (the caller then disables magazines for this heap).
pub(super) fn register(state: &GlobalState) -> bool {
    let mut reg = REGISTRY.lock();
    let mut free = None;
    for i in 0..MAX_HEAPS {
        if reg.ids[i] == state.id {
            return true;
        }
        if reg.ids[i] == 0 && free.is_none() {
            free = Some(i);
        }
    }
    match free {
        Some(i) => {
            reg.ids[i] = state.id;
            reg.ptrs[i] = core::ptr::from_ref(state) as usize;
            true
        }
        None => false,
    }
}

impl Registry {
    fn lookup(&self, id: u64) -> Option<*const GlobalState> {
        (0..MAX_HEAPS)
            .find(|&i| self.ids[i] == id)
            .map(|i| self.ptrs[i] as *const GlobalState)
    }

    fn remove(&mut self, id: u64) {
        for i in 0..MAX_HEAPS {
            if self.ids[i] == id {
                self.ids[i] = 0;
                self.ptrs[i] = 0;
            }
        }
    }
}

/// The per-thread block: plain data, `const`-initialized, `!needs_drop` —
/// see the module docs for why all three properties are load-bearing.
struct TlsBlock {
    /// Id of the heap the magazines are bound to; 0 = unbound.
    bound: Cell<u64>,
    /// Whether this thread's pointer is stored in [`EXIT_KEY`].
    exit_hooked: Cell<bool>,
    mags: UnsafeCell<ThreadMagazines>,
}

thread_local! {
    static BLOCK: TlsBlock = const {
        TlsBlock {
            bound: Cell::new(0),
            exit_hooked: Cell::new(false),
            mags: UnsafeCell::new(ThreadMagazines::new()),
        }
    };
}

/// Runs `f` on this thread's magazines, bound to `state`'s heap — rebinding
/// (flush old heap via the registry, or discard if it is gone) when the
/// thread last touched a different heap.
pub(super) fn with_cache<R>(
    state: &GlobalState,
    f: impl FnOnce(&mut ThreadMagazines, &GlobalState) -> R,
) -> R {
    BLOCK.with(|block| {
        if block.bound.get() != state.id {
            rebind(block, state);
        }
        // SAFETY: the block is thread-local and `with_cache` is never
        // re-entered while `f` runs — magazine operations neither allocate
        // nor call back into the allocator.
        let mags = unsafe { &mut *block.mags.get() };
        f(mags, state)
    })
}

/// Flushes this thread's magazines into `state`'s heap if they are bound to
/// it (leaves the binding in place). Used before reading diagnostics.
pub(super) fn flush_if_bound(state: &GlobalState) {
    BLOCK.with(|block| {
        if block.bound.get() == state.id {
            // SAFETY: thread-local block; `&GlobalState` proves the heap is
            // live, so no registry round-trip is needed.
            unsafe { (*block.mags.get()).flush(&state.heap) };
        }
    });
}

/// `Drop` path: flush this thread's binding to the dying heap (other
/// threads' bindings become registry misses and are discarded on their next
/// rebind or exit) and remove it from the registry.
pub(super) fn retire(state: &GlobalState) {
    BLOCK.with(|block| {
        if block.bound.get() == state.id {
            // SAFETY: as in `flush_if_bound`.
            unsafe { (*block.mags.get()).flush(&state.heap) };
            block.bound.set(0);
        }
    });
    REGISTRY.lock().remove(state.id);
}

/// Rebinds `block` from whatever heap it was serving to `state`'s.
#[cold]
fn rebind(block: &TlsBlock, state: &GlobalState) {
    let old = block.bound.get();
    if old != 0 {
        flush_stale(block, old);
    }
    block.bound.set(state.id);
    ensure_exit_hook(block);
}

/// Flushes `block` into the heap registered under `id`, or discards the
/// cached state when that heap no longer exists. Holding the registry lock
/// across the flush pins the heap: `Drop` must take the same lock to
/// unregister before the state can be freed.
fn flush_stale(block: &TlsBlock, id: u64) {
    let reg = REGISTRY.lock();
    match reg.lookup(id) {
        Some(ptr) => {
            // SAFETY: the registry entry proves the GlobalState is live, and
            // the held registry lock blocks its Drop until we are done; the
            // mags pointer is this thread's own TLS block.
            unsafe { (*block.mags.get()).flush(&(*ptr).heap) };
        }
        None => {
            // SAFETY: thread-local block, no heap to flush into.
            unsafe { (*block.mags.get()).discard() };
        }
    }
    drop(reg);
    block.bound.set(0);
}

/// Ensures this thread's block pointer is stored under the process-wide
/// exit key, so [`thread_exit_flush`] runs when the thread dies. Failure
/// (key exhaustion) is tolerated: the thread simply never gets an exit
/// flush, and its reservations are reclaimed only if it rebinds.
fn ensure_exit_hook(block: &TlsBlock) {
    if block.exit_hooked.get() {
        return;
    }
    let key = EXIT_KEY.get_or_try_init(|| {
        let mut key: libc::pthread_key_t = 0;
        // SAFETY: `key` is a live out-pointer; the destructor is a plain fn
        // pointer. pthread_key_create performs no heap allocation.
        let rc = unsafe { libc::pthread_key_create(&mut key, Some(thread_exit_flush)) };
        (rc == 0).then_some(key)
    });
    let Some(&key) = key else { return };
    // SAFETY: the value is this thread's ELF-TLS block, which glibc keeps
    // mapped until after pthread key destructors run; setspecific for
    // low-numbered keys writes into fixed per-thread storage (no malloc).
    if unsafe { libc::pthread_setspecific(key, core::ptr::from_ref(block).cast()) } == 0 {
        block.exit_hooked.set(true);
    }
}

/// The thread-exit destructor: flush the dying thread's magazines into
/// their heap (if it still exists) so no reservation outlives its thread.
unsafe extern "C" fn thread_exit_flush(value: *mut libc::c_void) {
    let block = value.cast_const().cast::<TlsBlock>();
    // SAFETY: `value` was set (once) to this thread's TLS block, which is
    // still mapped while pthread key destructors run.
    let block = unsafe { &*block };
    let id = block.bound.get();
    if id != 0 {
        flush_stale(block, id);
    }
    // pthread has already nulled the key's value for this run, so if a
    // *later* TSD destructor (ordering is unspecified) routes allocator
    // traffic back through this block, the rebind must re-register or that
    // traffic's reservations would be stranded forever. Re-setting the
    // value makes pthread run this destructor again (implementations
    // iterate up to PTHREAD_DESTRUCTOR_ITERATIONS).
    block.exit_hooked.set(false);
}
