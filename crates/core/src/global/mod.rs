//! The real DieHard allocator: an `mmap`-backed heap usable as Rust's
//! `#[global_allocator]`.
//!
//! This is the production analogue of the paper's `LD_PRELOAD` interposition
//! (§5.1): where the C implementation replaces `malloc`/`free` at link time,
//! a Rust program opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: diehard_core::global::DieHard = diehard_core::global::DieHard::new();
//! ```
//!
//! Everything the paper prescribes is here: twelve randomized power-of-two
//! regions capped at `1/M` fullness, metadata fully segregated in its own
//! mapping, large objects served by dedicated `mmap`s with `PROT_NONE`
//! guard pages on both ends, validated (and silently ignored) erroneous
//! frees, and seeding from `/dev/urandom`.
//!
//! Environment knobs (read once, at first allocation):
//!
//! * `DIEHARD_SEED` — decimal RNG seed (default: true randomness).
//! * `DIEHARD_REGION_MB` — per-class region megabytes (default 32, i.e. the
//!   paper's 384 MB heap).
//! * `DIEHARD_M` — integer expansion factor `M` (default 2).
//!
//! ## Unsafe-surface audit (2026-07, stable toolchain)
//!
//! This module and [`sys`]/[`lock`] are the crate's entire `unsafe` and
//! syscall surface, which is why the whole subtree sits behind the
//! off-by-default `global` cargo feature. Findings, kept current as the
//! module changes:
//!
//! * **No `static mut` anywhere.** Allocator state is interior-mutable
//!   through [`SpinLock`] — an `AtomicBool` acquire/release flag guarding an
//!   `UnsafeCell<T>` — the pattern stable Rust recommends over `static mut`
//!   (which trips `static_mut_refs` on current toolchains). No
//!   `SyncUnsafeCell` is needed: `SpinLock` provides the `Sync` impl with an
//!   explicit exclusivity argument, and stays dependency-free so it can run
//!   inside `malloc` (a parking mutex may allocate on contention and
//!   re-enter the allocator).
//! * **Raw-pointer state.** `GlobalHeap` owns raw `mmap` regions; its
//!   `unsafe impl Send` is sound because every access happens under the
//!   `SpinLock` (there is no lock-free fast path, matching the paper's
//!   single-lock allocator).
//! * **Every `unsafe` block carries a `SAFETY:` comment** naming its
//!   invariant; `cargo clippy --all-targets --features global` is
//!   warning-clean with no `#[allow]` escapes in this subtree.
//! * **Lazily-initialized, never self-allocating.** Metadata (bitmaps and
//!   the large-object validity tables) lives in a dedicated mapping created
//!   in [`DieHard::init`], so initialization cannot recurse into the
//!   allocator being initialized.

mod lock;
mod sys;

pub use lock::{SpinGuard, SpinLock};

use crate::config::HeapConfig;
use crate::engine::HeapCore;
use crate::large::LargeTable;
use crate::rng::entropy_seed;
use crate::safe_str;
use core::alloc::{GlobalAlloc, Layout};
use core::ptr;

/// Capacity of the large-object validity tables (live large objects).
const LARGE_CAPACITY: usize = 4096;

/// The state behind an initialized allocator.
struct GlobalHeap {
    core: HeapCore,
    heap_base: *mut u8,
    page: usize,
    /// user pointer → mapping base (differs from the user pointer by the
    /// front guard page and any extra alignment padding).
    large_base: LargeTable,
    /// user pointer → total mapping length (guards included).
    large_len: LargeTable,
}

// SAFETY: the raw pointers reference mappings owned by this heap; all access
// is serialized by the enclosing SpinLock.
unsafe impl Send for GlobalHeap {}

impl core::fmt::Debug for GlobalHeap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GlobalHeap")
            .field("heap_base", &self.heap_base)
            .field("live_objects", &self.core.live_objects())
            .field("large_objects", &self.large_len.len())
            .finish()
    }
}

/// The DieHard global allocator.
///
/// Construct it `const` in a static; the heap initializes lazily on first
/// allocation (never allocating through itself — all metadata lives in a
/// dedicated `mmap` arena).
#[derive(Debug)]
pub struct DieHard {
    state: SpinLock<Option<GlobalHeap>>,
    fixed_seed: Option<u64>,
}

impl DieHard {
    /// Creates an uninitialized allocator; usable in `static` items.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            state: SpinLock::new(None),
            fixed_seed: None,
        }
    }

    /// As [`new`](Self::new) but with a fixed RNG seed — deterministic
    /// layouts for tests and debugging (heap differencing, §9).
    #[must_use]
    pub const fn with_seed(seed: u64) -> Self {
        Self {
            state: SpinLock::new(None),
            fixed_seed: Some(seed),
        }
    }

    /// C-style allocation entry point: allocate `size` bytes aligned to 8
    /// bytes, matching the paper's smallest (8-byte) size class. Rust
    /// callers needing stricter alignment go through [`GlobalAlloc::alloc`]
    /// with an explicit `Layout`. Returns null when the size class is at its
    /// `1/M` cap or the system is out of memory.
    #[must_use]
    pub fn malloc(&self, size: usize) -> *mut u8 {
        if size == 0 {
            return ptr::null_mut();
        }
        let layout = Layout::from_size_align(size, 8).unwrap_or(Layout::new::<u8>());
        // SAFETY: size is non-zero and the layout is valid.
        unsafe { self.alloc(layout) }
    }

    /// C-style free: validates `ptr` exactly like `DieHardFree` (§4.3) and
    /// *ignores* invalid, double, and foreign frees.
    pub fn free(&self, ptr: *mut u8) {
        if ptr.is_null() {
            return;
        }
        let mut guard = self.state.lock();
        let Some(heap) = guard.as_mut() else { return };
        Self::release(heap, ptr);
    }

    /// DieHard's bounded `strcpy` (§4.4): copies the NUL-terminated string
    /// at `src` to `dest`, clamped to the true remaining space of the heap
    /// object containing `dest`. Falls back to an ordinary bounded-by-source
    /// copy when `dest` is not a DieHard heap pointer.
    ///
    /// Returns the number of payload bytes copied.
    ///
    /// # Safety
    ///
    /// `src` must point to a NUL-terminated string; `dest` must be valid for
    /// writes of the computed bound (always true for live DieHard objects).
    pub unsafe fn strcpy(&self, dest: *mut u8, src: *const u8) -> usize {
        // SAFETY: src is NUL-terminated per contract.
        let src_len = unsafe { c_strlen(src) };
        let src_slice = unsafe { core::slice::from_raw_parts(src, src_len) };

        let space = {
            let mut guard = self.state.lock();
            match guard.as_mut() {
                Some(heap) => Self::object_space(heap, dest),
                None => None,
            }
        };
        let space = space.unwrap_or(src_len + 1);
        // SAFETY: dest is valid for `space` bytes: inside the heap that is
        // the distance to the object end; outside it the caller guarantees
        // room for the whole string.
        let dest_slice = unsafe { core::slice::from_raw_parts_mut(dest, space) };
        safe_str::bounded_strcpy(dest_slice, space, src_slice).copied
    }

    /// DieHard's bounded `strncpy` (§4.4): the caller's `n` is clamped by
    /// the true object bound.
    ///
    /// # Safety
    ///
    /// As [`strcpy`](Self::strcpy); `src` must be valid for `n` bytes or up
    /// to its NUL terminator, whichever comes first.
    pub unsafe fn strncpy(&self, dest: *mut u8, src: *const u8, n: usize) -> usize {
        // SAFETY: per contract.
        let src_len = unsafe { c_strlen_bounded(src, n) };
        let src_slice = unsafe { core::slice::from_raw_parts(src, src_len) };
        let space = {
            let mut guard = self.state.lock();
            match guard.as_mut() {
                Some(heap) => Self::object_space(heap, dest),
                None => None,
            }
        };
        let space = space.unwrap_or(n.max(src_len + 1));
        // SAFETY: as in `strcpy`.
        let dest_slice = unsafe { core::slice::from_raw_parts_mut(dest, space) };
        safe_str::bounded_strncpy(dest_slice, space, src_slice, n).copied
    }

    /// Live small objects currently tracked (diagnostics).
    #[must_use]
    pub fn live_objects(&self) -> usize {
        let mut guard = self.state.lock();
        guard.as_mut().map_or(0, |h| h.core.live_objects())
    }

    /// Heap statistics since initialization.
    #[must_use]
    pub fn stats(&self) -> crate::engine::HeapStats {
        let mut guard = self.state.lock();
        guard
            .as_mut()
            .map_or_else(Default::default, |h| h.core.stats())
    }

    // ---- internals -------------------------------------------------------

    fn init(&self, slot: &mut Option<GlobalHeap>) -> bool {
        if slot.is_some() {
            return true;
        }
        let region_mb = sys::env_u64("DIEHARD_REGION_MB\0").unwrap_or(32).max(1);
        let m = sys::env_u64("DIEHARD_M\0").unwrap_or(2).max(1);
        let config = HeapConfig::paper_default()
            .with_region_bytes((region_mb as usize) << 20)
            .with_multiplier(m as f64);
        if config.validate().is_err() {
            return false;
        }
        let seed = self
            .fixed_seed
            .or_else(|| sys::env_u64("DIEHARD_SEED\0"))
            .unwrap_or_else(entropy_seed);

        let page = sys::page_size();
        let words = HeapCore::bitmap_words_needed(&config);
        let table_cap = (LARGE_CAPACITY * 2).next_power_of_two();
        let meta_bytes = (words * 8 + 4 * table_cap * 8 + page - 1) & !(page - 1);
        let meta = sys::map_reserve(meta_bytes);
        if meta.is_null() {
            return false;
        }
        let heap_base = sys::map_reserve(config.heap_span());
        if heap_base.is_null() {
            // SAFETY: meta was just mapped with this length.
            unsafe { sys::unmap(meta, meta_bytes) };
            return false;
        }

        let bitmap_words = meta.cast::<u64>();
        // SAFETY: the meta arena provides `words` zeroed u64s followed by
        // four table arrays of `table_cap` usizes each; mmap'd memory is
        // zeroed and exclusively ours.
        let core = match unsafe { HeapCore::from_raw_parts(config, seed, bitmap_words) } {
            Ok(c) => c,
            Err(_) => return false,
        };
        let tables = unsafe { meta.add(words * 8).cast::<usize>() };
        // SAFETY: as above; disjoint quarters of the table area.
        let large_base =
            unsafe { LargeTable::from_storage(tables, tables.add(table_cap), table_cap) };
        let large_len = unsafe {
            LargeTable::from_storage(
                tables.add(2 * table_cap),
                tables.add(3 * table_cap),
                table_cap,
            )
        };
        *slot = Some(GlobalHeap {
            core,
            heap_base,
            page,
            large_base,
            large_len,
        });
        true
    }

    /// Distance from `ptr` to the end of its (small) heap object, when
    /// `ptr` points into the small-object heap.
    fn object_space(heap: &mut GlobalHeap, ptr: *mut u8) -> Option<usize> {
        let base = heap.heap_base as usize;
        let addr = ptr as usize;
        if addr < base || addr >= base + heap.core.heap_span() {
            return None;
        }
        safe_str::space_to_object_end(&heap.core, addr - base)
    }

    fn release(heap: &mut GlobalHeap, ptr: *mut u8) {
        let base = heap.heap_base as usize;
        let addr = ptr as usize;
        if addr >= base && addr < base + heap.core.heap_span() {
            // Small object: full §4.3 validation inside.
            let _ = heap.core.free_at(addr - base);
            return;
        }
        // Possibly a large object: consult the validity tables; unknown
        // addresses are ignored ("otherwise, it ignores the request").
        let Some(total) = heap.large_len.remove(addr) else {
            return;
        };
        let map_base = heap
            .large_base
            .remove(addr)
            .expect("large tables out of sync");
        // SAFETY: we recorded (map_base, total) when mapping this object and
        // it has not been released since (the table entry was live).
        unsafe { sys::unmap(map_base as *mut u8, total) };
    }

    fn alloc_large(heap: &mut GlobalHeap, size: usize, align: usize) -> *mut u8 {
        let page = heap.page;
        let user_len = (size + page - 1) & !(page - 1);
        let extra_align = if align > page { align } else { 0 };
        let total = user_len + 2 * page + extra_align;
        let base = sys::map_reserve(total);
        if base.is_null() {
            return ptr::null_mut();
        }
        let user = {
            let candidate = base as usize + page;
            let aligned = if align > page {
                (candidate + align - 1) & !(align - 1)
            } else {
                candidate
            };
            aligned as *mut u8
        };
        let user_addr = user as usize;
        // Guard everything before and after the user range (§4.1: "guard
        // pages without read or write access on either end").
        // SAFETY: the ranges are page-aligned and inside the fresh mapping.
        unsafe {
            sys::protect_none(base, user_addr - base as usize);
            let tail = user_addr + user_len;
            sys::protect_none(tail as *mut u8, base as usize + total - tail);
        }
        if !heap.large_len.insert(user_addr, total) {
            // Table full: refuse rather than lose track of the mapping.
            // SAFETY: mapping is unreferenced; release it whole.
            unsafe { sys::unmap(base, total) };
            return ptr::null_mut();
        }
        let inserted = heap.large_base.insert(user_addr, base as usize);
        debug_assert!(inserted, "large tables out of sync");
        user
    }
}

impl Default for DieHard {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: `alloc`/`dealloc` satisfy the GlobalAlloc contract: blocks are
// valid for the layout, never aliased while live (uniqueness is the bitmap
// no-overlap invariant), and dealloc releases exactly what alloc returned.
unsafe impl GlobalAlloc for DieHard {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let mut guard = self.state.lock();
        if !self.init(&mut guard) {
            return ptr::null_mut();
        }
        let heap = guard.as_mut().expect("initialized above");
        // Slots are naturally aligned to their (power-of-two) class size, so
        // serving max(size, align) satisfies any alignment request.
        let need = layout.size().max(layout.align()).max(1);
        if need <= crate::size_class::MAX_OBJECT_SIZE {
            match heap.core.alloc(need) {
                Some(slot) => {
                    let off = heap.core.offset_of(slot);
                    // SAFETY: `off` lies within the reserved heap span.
                    unsafe { heap.heap_base.add(off) }
                }
                None => ptr::null_mut(),
            }
        } else {
            Self::alloc_large(heap, layout.size(), layout.align())
        }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, _layout: Layout) {
        let mut guard = self.state.lock();
        let Some(heap) = guard.as_mut() else { return };
        Self::release(heap, ptr);
    }
}

/// Length of the NUL-terminated string at `p`.
///
/// # Safety
///
/// `p` must point to a NUL-terminated string.
unsafe fn c_strlen(p: *const u8) -> usize {
    let mut n = 0;
    // SAFETY: caller guarantees a terminator exists.
    while unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

/// Length of the string at `p`, scanning at most `max` bytes.
///
/// # Safety
///
/// `p` must be valid for reads up to `max` bytes or its NUL terminator.
unsafe fn c_strlen_bounded(p: *const u8, max: usize) -> usize {
    let mut n = 0;
    // SAFETY: caller guarantees validity up to `max` or the terminator.
    while n < max && unsafe { *p.add(n) } != 0 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_test_heap() -> DieHard {
        // Small regions keep test address-space usage modest; seed fixed for
        // reproducibility. Region must be set via env for lazily-initialized
        // statics, but direct construction lets us test instance-by-instance.
        std::env::set_var("DIEHARD_REGION_MB", "1");
        DieHard::with_seed(0xFEED_FACE)
    }

    #[test]
    fn malloc_free_roundtrip() {
        let heap = small_test_heap();
        let p = heap.malloc(100);
        assert!(!p.is_null());
        // The object is writable through its full rounded size.
        // SAFETY: DieHard returned a live 128-byte object.
        unsafe {
            for i in 0..128 {
                *p.add(i) = i as u8;
            }
            assert_eq!(*p.add(127), 127);
        }
        assert_eq!(heap.live_objects(), 1);
        heap.free(p);
        assert_eq!(heap.live_objects(), 0);
    }

    #[test]
    fn double_free_is_ignored() {
        let heap = small_test_heap();
        let p = heap.malloc(64);
        heap.free(p);
        heap.free(p); // must not crash or corrupt
        heap.free(p);
        assert_eq!(heap.stats().ignored_frees, 2);
    }

    #[test]
    fn invalid_free_is_ignored() {
        let heap = small_test_heap();
        let p = heap.malloc(64);
        // Interior pointer.
        // SAFETY: p+1 stays within the allocated object.
        heap.free(unsafe { p.add(1) });
        // Wild pointer.
        heap.free(0x1234_5678 as *mut u8);
        assert_eq!(heap.live_objects(), 1, "victim object must stay live");
        heap.free(p);
    }

    #[test]
    fn alignment_served_up_to_class_sizes() {
        let heap = small_test_heap();
        for align in [1usize, 8, 64, 4096] {
            let layout = Layout::from_size_align(40, align).unwrap();
            // SAFETY: valid non-zero layout.
            let p = unsafe { heap.alloc(layout) };
            assert!(!p.is_null());
            assert_eq!(p as usize % align, 0, "alignment {align}");
            // SAFETY: p came from alloc with this layout.
            unsafe { heap.dealloc(p, layout) };
        }
    }

    #[test]
    fn large_objects_roundtrip_with_guard_pages() {
        let heap = small_test_heap();
        let p = heap.malloc(100_000);
        assert!(!p.is_null());
        // SAFETY: 100k bytes live at p.
        unsafe {
            *p = 1;
            *p.add(99_999) = 2;
            assert_eq!(*p, 1);
        }
        heap.free(p);
        // Freeing again is ignored (validity table already empty).
        heap.free(p);
    }

    #[test]
    fn zero_malloc_returns_null() {
        let heap = small_test_heap();
        assert!(heap.malloc(0).is_null());
    }

    #[test]
    fn exhaustion_returns_null_not_crash() {
        std::env::set_var("DIEHARD_REGION_MB", "1");
        let heap = DieHard::with_seed(7);
        // The 16 KB class in a 1 MB region holds 64 slots, 32 live cap.
        let mut got = 0;
        for _ in 0..100 {
            if !heap.malloc(16 * 1024).is_null() {
                got += 1;
            }
        }
        assert_eq!(got, 32, "1/M cap must bound live objects");
    }

    #[test]
    fn strcpy_contains_overflow() {
        let heap = small_test_heap();
        let dst = heap.malloc(8);
        let neighbor = heap.malloc(8);
        assert!(!dst.is_null() && !neighbor.is_null());
        // SAFETY: neighbor is a live 8-byte object.
        unsafe { neighbor.write_bytes(0x5A, 8) };
        let long = b"this string is far longer than eight bytes\0";
        // SAFETY: dst is a live heap object; src is NUL-terminated.
        let copied = unsafe { heap.strcpy(dst, long.as_ptr()) };
        assert_eq!(copied, 7, "8-byte object keeps 7 payload bytes + NUL");
        // SAFETY: both objects are live.
        unsafe {
            assert_eq!(*dst.add(7), 0);
            for i in 0..8 {
                assert_eq!(*neighbor.add(i), 0x5A, "neighbor byte {i} corrupted");
            }
        }
        heap.free(dst);
        heap.free(neighbor);
    }

    #[test]
    fn strncpy_clamps_lying_length() {
        let heap = small_test_heap();
        let dst = heap.malloc(8);
        let src = b"aaaaaaaaaaaaaaaaaaaaaaaa\0";
        // Caller claims dst holds 100 bytes; DieHard knows better.
        // SAFETY: dst is live; src NUL-terminated.
        let copied = unsafe { heap.strncpy(dst, src.as_ptr(), 100) };
        assert_eq!(copied, 7);
        heap.free(dst);
    }

    #[test]
    fn different_seeds_randomize_layout() {
        std::env::set_var("DIEHARD_REGION_MB", "1");
        let a = DieHard::with_seed(1);
        let b = DieHard::with_seed(2);
        let base_a = a.malloc(64) as isize;
        let base_b = b.malloc(64) as isize;
        let mut same = 0;
        for _ in 0..32 {
            let pa = a.malloc(64) as isize - base_a;
            let pb = b.malloc(64) as isize - base_b;
            if pa == pb {
                same += 1;
            }
        }
        assert!(same < 8, "layouts should differ across seeds");
    }

    #[test]
    fn concurrent_alloc_free_safe() {
        std::env::set_var("DIEHARD_REGION_MB", "1");
        let heap: &'static DieHard = Box::leak(Box::new(DieHard::with_seed(3)));
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for i in 0..500 {
                    let p = heap.malloc(8 + (t * 97 + i) % 2000);
                    if !p.is_null() {
                        // SAFETY: live object of at least 8 bytes.
                        unsafe { p.write_bytes(t as u8, 8) };
                        ptrs.push(p);
                    }
                    if ptrs.len() > 50 {
                        heap.free(ptrs.swap_remove(0));
                    }
                }
                for p in ptrs {
                    heap.free(p);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(heap.live_objects(), 0);
    }
}
