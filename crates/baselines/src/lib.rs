//! # diehard-baselines
//!
//! The allocators DieHard is evaluated against in the paper, rebuilt from
//! scratch over the simulated address space of `diehard-sim`:
//!
//! * [`LeaSimAllocator`] — the GNU-libc/dlmalloc baseline with in-band
//!   boundary tags and free-list links, vulnerable to every §1 error class;
//! * [`BdwGcSim`] — the Boehm-Demers-Weiser-style conservative mark-sweep
//!   collector, immune to free-family errors but not overflows;
//! * [`WindowsSimAllocator`] — the slow pre-LFH Windows-XP-style best-fit
//!   allocator behind Figure 5(b)'s platform contrast.
//!
//! All three implement [`diehard_sim::SimAllocator`], so the executor in
//! `diehard-runtime` can drive identical workloads across DieHard and every
//! baseline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gc;
pub mod lea;
pub mod windows;

pub use gc::BdwGcSim;
pub use lea::LeaSimAllocator;
pub use windows::WindowsSimAllocator;
