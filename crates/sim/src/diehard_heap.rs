//! DieHard running on the simulated address space.
//!
//! This wraps [`HeapCore`] — the same placement/validation engine the real
//! `GlobalAlloc` uses — around a [`PagedArena`]. Small objects live in the
//! twelve randomized regions at arena offsets `[0, heap_span)`; large
//! objects are mapped above the small heap with simulated `PROT_NONE` guard
//! pages on both ends and are validated through a [`LargeTable`], exactly
//! mirroring §4.1–§4.3.

use crate::arena::{FillPattern, PagedArena, PAGE_SIZE};
use crate::fault::Fault;
use crate::traits::{Addr, SimAllocator};
use diehard_core::config::{FillPolicy, HeapConfig};
use diehard_core::engine::{HeapCore, HeapStats};
use diehard_core::large::LargeTable;
use diehard_core::safe_str::{self, CopyOutcome};
use diehard_core::size_class::MAX_OBJECT_SIZE;

/// DieHard over simulated memory.
///
/// # Examples
///
/// ```
/// use diehard_sim::{DieHardSimHeap, SimAllocator};
/// use diehard_core::config::HeapConfig;
///
/// let mut heap = DieHardSimHeap::new(HeapConfig::default(), 1)?;
/// let a = heap.malloc(100, &[])?.expect("space");
/// heap.memory_mut().write(a, b"payload")?;
/// heap.free(a)?;        // valid
/// heap.free(a)?;        // double free: ignored, not fatal
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DieHardSimHeap {
    core: HeapCore,
    arena: PagedArena,
    large: LargeTable,
    /// Bump cursor for the large-object mapping area above the small heap.
    large_cursor: usize,
    large_live_bytes: usize,
}

impl DieHardSimHeap {
    /// Creates a DieHard heap in a fresh simulated address space.
    ///
    /// # Errors
    ///
    /// Returns [`diehard_core::config::ConfigError`] for invalid configs.
    pub fn new(config: HeapConfig, seed: u64) -> Result<Self, diehard_core::config::ConfigError> {
        let fill = match config.fill {
            FillPolicy::None => FillPattern::Zero,
            // Lazy analogue of "fill the heap with random values" (§4.1).
            FillPolicy::Random => FillPattern::Random(seed ^ 0x51D_E4A8),
        };
        let span = config.heap_span();
        // Large objects map above the small heap; give them an equal span.
        let arena = PagedArena::with_fill(span * 2, fill);
        let core = HeapCore::new(config, seed)?;
        Ok(Self {
            core,
            arena,
            large: LargeTable::new(1024),
            large_cursor: span,
            large_live_bytes: 0,
        })
    }

    /// The underlying engine (placement decisions, stats, config).
    #[must_use]
    pub fn core(&self) -> &HeapCore {
        &self.core
    }

    /// Engine statistics (allocs, frees, ignored frees).
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        self.core.stats()
    }

    /// DieHard's bounded `strcpy` against simulated memory (§4.4): the copy
    /// is clamped to the remaining space of the destination's heap object.
    ///
    /// # Errors
    ///
    /// Propagates arena faults (e.g. destination in a guard page).
    pub fn strcpy(&mut self, dest: Addr, src: &[u8]) -> Result<CopyOutcome, Fault> {
        let space =
            safe_str::space_to_object_end(&self.core, dest).unwrap_or_else(|| src.len() + 1);
        let mut buf = vec![0u8; space];
        self.arena.read(dest, &mut buf)?;
        let outcome = safe_str::bounded_strcpy(&mut buf, space, src);
        self.arena.write(dest, &buf)?;
        Ok(outcome)
    }

    fn fill_random(&mut self, addr: usize, len: usize) -> Result<(), Fault> {
        // "REPLICATED: fill with random values" (Figure 2) — drawn from the
        // heap's own RNG stream so replicas with different seeds diverge.
        // `Mwc::fill_bytes` draws a word per 8 bytes and the arena is
        // written a page at a time, not one 8-byte write per draw; the byte
        // stream (and RNG advancement) is identical to the word-by-word
        // loop it replaces, so replica layouts and fills are unchanged.
        let mut buf = [0u8; PAGE_SIZE];
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(PAGE_SIZE);
            self.core.rng_mut().fill_bytes(&mut buf[..n]);
            self.arena.write(cursor, &buf[..n])?;
            cursor += n;
            remaining -= n;
        }
        Ok(())
    }

    fn malloc_large(&mut self, size: usize) -> Result<Option<Addr>, Fault> {
        let user_len = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let total = user_len + 2 * PAGE_SIZE;
        if self.large_cursor + total > self.arena.limit() {
            return Ok(None); // out of large-object address space
        }
        let base = self.large_cursor;
        self.large_cursor += total;
        let user = base + PAGE_SIZE;
        // Guard pages on either end (§4.1).
        self.arena.add_guard(base, user);
        self.arena.add_guard(user + user_len, base + total);
        if !self.large.insert(user, user_len) {
            return Ok(None);
        }
        self.large_live_bytes += user_len;
        if self.core.fill_policy() == FillPolicy::Random {
            self.fill_random(user, user_len)?;
        }
        Ok(Some(user))
    }
}

impl SimAllocator for DieHardSimHeap {
    fn name(&self) -> &'static str {
        "diehard"
    }

    fn malloc(&mut self, size: usize, _roots: &[Addr]) -> Result<Option<Addr>, Fault> {
        if size == 0 {
            return Ok(None);
        }
        if size > MAX_OBJECT_SIZE {
            return self.malloc_large(size);
        }
        match self.core.alloc(size) {
            Some(slot) => {
                let addr = self.core.offset_of(slot);
                if self.core.fill_policy() == FillPolicy::Random {
                    self.fill_random(addr, slot.size())?;
                }
                Ok(Some(addr))
            }
            None => Ok(None),
        }
    }

    fn free(&mut self, addr: Addr) -> Result<(), Fault> {
        if addr < self.core.heap_span() {
            // Full §4.3 validation; invalid frees are silently ignored.
            let _ = self.core.free_at(addr);
            return Ok(());
        }
        // Large object: validity table decides ("otherwise, it ignores the
        // request"). Freeing re-guards the range, simulating munmap: any
        // later access faults like a real use-after-unmap.
        if let Some(user_len) = self.large.remove(addr) {
            self.arena.add_guard(addr, addr + user_len);
            self.large_live_bytes -= user_len;
        }
        Ok(())
    }

    fn memory(&self) -> &PagedArena {
        &self.arena
    }

    fn memory_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn usable_size(&self, addr: Addr) -> Option<usize> {
        if addr < self.core.heap_span() {
            if !self.core.is_live_at(addr) {
                return None;
            }
            return safe_str::space_to_object_end(&self.core, addr);
        }
        self.large.get(addr)
    }

    fn live_bytes(&self) -> usize {
        self.core.live_bytes() + self.large_live_bytes
    }

    fn work(&self) -> u64 {
        // Total bitmap probes across all twelve partitions (§4.2's cost).
        diehard_core::SizeClass::all()
            .map(|c| self.core.partition(c).probe_stats().1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(seed: u64) -> DieHardSimHeap {
        DieHardSimHeap::new(HeapConfig::default(), seed).unwrap()
    }

    #[test]
    fn small_alloc_write_read() {
        let mut h = heap(1);
        let a = h.malloc(64, &[]).unwrap().unwrap();
        h.memory_mut().write(a, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        h.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert_eq!(h.usable_size(a), Some(64));
        assert_eq!(h.live_bytes(), 64);
    }

    #[test]
    fn overflow_between_objects_is_silent_corruption_not_crash() {
        let mut h = heap(2);
        let a = h.malloc(8, &[]).unwrap().unwrap();
        // Write far past the object: lands somewhere in the region, *no
        // fault* — the probabilistic model decides whether anything live
        // was hit. This is the crux of the simulated substrate.
        assert!(h.memory_mut().write(a, &[0xAA; 256]).is_ok());
    }

    #[test]
    fn double_and_invalid_frees_ignored() {
        let mut h = heap(3);
        let a = h.malloc(128, &[]).unwrap().unwrap();
        h.free(a).unwrap();
        h.free(a).unwrap(); // double
        h.free(a + 1).unwrap(); // misaligned
        h.free(usize::MAX / 3).unwrap(); // wild
        assert_eq!(h.stats().ignored_frees, 2); // double + misaligned-in-heap
    }

    #[test]
    fn large_objects_have_guard_pages() {
        let mut h = heap(4);
        let a = h.malloc(20_000, &[]).unwrap().unwrap();
        // Within bounds: fine (rounded to page multiple).
        h.memory_mut().write(a + 19_999, &[1]).unwrap();
        assert_eq!(h.usable_size(a), Some(20_480));
        // One byte past the rounded size: guard page faults.
        let err = h.memory_mut().write(a + 20_480, &[1]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
        // Just before the object: front guard faults.
        let err = h.memory_mut().write(a - 1, &[1]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn freed_large_object_faults_on_use() {
        let mut h = heap(5);
        let a = h.malloc(40_000, &[]).unwrap().unwrap();
        h.free(a).unwrap();
        assert!(h.memory_mut().write(a, &[1]).is_err(), "use-after-munmap");
        // Double free of a large object is ignored.
        h.free(a).unwrap();
    }

    #[test]
    fn random_fill_mode_randomizes_new_objects() {
        let cfg = HeapConfig::default().with_fill(FillPolicy::Random);
        let mut h1 = DieHardSimHeap::new(cfg.clone(), 100).unwrap();
        let mut h2 = DieHardSimHeap::new(cfg, 200).unwrap();
        let a1 = h1.malloc(64, &[]).unwrap().unwrap();
        let a2 = h2.malloc(64, &[]).unwrap().unwrap();
        let mut b1 = [0u8; 64];
        let mut b2 = [0u8; 64];
        h1.memory().read(a1, &mut b1).unwrap();
        h2.memory().read(a2, &mut b2).unwrap();
        assert!(b1.iter().any(|&x| x != 0), "object must be randomized");
        assert_ne!(b1, b2, "different replicas fill differently");
    }

    #[test]
    fn standalone_mode_objects_read_zero() {
        let mut h = heap(6);
        let a = h.malloc(64, &[]).unwrap().unwrap();
        let mut buf = [1u8; 64];
        h.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn strcpy_clamped_to_object() {
        let mut h = heap(7);
        let a = h.malloc(8, &[]).unwrap().unwrap();
        let out = h
            .strcpy(a, b"a very long string that would overflow")
            .unwrap();
        assert!(out.truncated);
        assert_eq!(out.copied, 7);
        let mut buf = [0u8; 8];
        h.memory().read(a, &mut buf).unwrap();
        assert_eq!(buf[7], 0);
        assert_eq!(&buf[..7], b"a very ");
    }

    #[test]
    fn usable_size_none_for_dead_or_wild() {
        let mut h = heap(8);
        let a = h.malloc(64, &[]).unwrap().unwrap();
        h.free(a).unwrap();
        assert_eq!(h.usable_size(a), None);
        assert_eq!(h.usable_size(usize::MAX / 4), None);
    }

    #[test]
    fn dangling_pointer_data_survives_until_reuse() {
        // The probabilistic heart of DieHard: a freed object's bytes stay
        // intact until random probing happens to land on its slot.
        let mut h = heap(9);
        let a = h.malloc(64, &[]).unwrap().unwrap();
        h.memory_mut().write(a, &[0x42; 64]).unwrap();
        h.free(a).unwrap();
        // A handful of fresh allocations are overwhelmingly unlikely to
        // reuse the 16K-slot region position.
        for _ in 0..4 {
            let _ = h.malloc(64, &[]).unwrap().unwrap();
        }
        let mut buf = [0u8; 64];
        h.memory().read(a, &mut buf).unwrap();
        // With a 1 MB region (16384 slots for 64 B), 4 allocations hitting
        // this exact slot has probability ~2.4e-4; treat survival as
        // deterministic for this seed (verified).
        assert_eq!(buf, [0x42; 64]);
    }

    #[test]
    fn exhaustion_returns_null() {
        let cfg = HeapConfig::default().with_region_bytes(32 * 1024);
        let mut h = DieHardSimHeap::new(cfg, 10).unwrap();
        let mut served = 0;
        for _ in 0..10 {
            if h.malloc(16 * 1024, &[]).unwrap().is_some() {
                served += 1;
            }
        }
        assert_eq!(served, 1, "cap = capacity/M = 2/2 = 1");
    }

    #[test]
    fn work_counts_probes() {
        let mut h = heap(11);
        assert_eq!(h.work(), 0);
        h.malloc(64, &[]).unwrap();
        assert!(h.work() >= 1);
    }
}
