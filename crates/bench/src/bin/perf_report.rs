//! `perf_report` — runs the registered hot-path kernels deterministically
//! and emits the machine-readable perf trajectory (`BENCH_<pr>.json`).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p diehard-bench --bin perf_report            # full
//! cargo run --release -p diehard-bench --bin perf_report -- --smoke # CI
//! cargo run ... --bin perf_report -- --out path/to/report.json
//! cargo run ... --bin perf_report -- --gate alloc_churn_mixed=13.6
//! ```
//!
//! `--gate <kernel>=<max_ns>` (repeatable) bounds a kernel's measured mean:
//! the process exits non-zero when the mean exceeds the bound, so CI can
//! pin hot-path regressions by exit status. An unknown kernel name in a
//! gate is itself an error — a typo must fail loudly, not pass silently.
//!
//! When the output path is a `BENCH_<pr>.json` trajectory entry, the report
//! also diffs the fresh run against the highest-numbered earlier
//! `BENCH_<k>.json` beside it and prints per-kernel mean deltas, so a perf
//! PR's win (or regression) is visible in the run log, not just by opening
//! two JSON files.
//!
//! The process exits non-zero when the written report is missing any
//! registered kernel, so CI can gate on completeness by exit status alone.

use diehard_bench::perf::{missing_kernels, parse_means, render_json, run_all, KernelResult};
use diehard_bench::TextTable;
use std::path::Path;

fn main() {
    let smoke = diehard_bench::smoke();
    let out_path = out_arg().unwrap_or_else(|| "BENCH_10.json".to_string());
    let gates = gate_args();

    let results = run_all(smoke);
    let json = render_json(&results);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    let mut table = TextTable::new(vec!["kernel", "mean", "min", "max", "iters"]);
    for r in &results {
        table.row(vec![
            r.name.to_string(),
            format!("{:.1} ns/op", r.mean_ns),
            format!("{:.1} ns/op", r.min_ns),
            format!("{:.1} ns/op", r.max_ns),
            r.iters.to_string(),
        ]);
    }
    println!(
        "perf trajectory{} -> {out_path}",
        if smoke {
            " (--smoke: wiring check only)"
        } else {
            ""
        }
    );
    println!("{}", table.render());

    print_deltas(&out_path, &results);

    // Completeness gate: re-read what actually landed on disk.
    let written = std::fs::read_to_string(&out_path).unwrap_or_default();
    let missing = missing_kernels(&written);
    if !missing.is_empty() {
        eprintln!("perf_report: {out_path} is missing kernels: {missing:?}");
        std::process::exit(1);
    }

    // Regression gates: each --gate bounds one kernel's measured mean.
    let mut gate_failed = false;
    for (kernel, max_ns) in &gates {
        match results.iter().find(|r| r.name == kernel) {
            Some(r) if r.mean_ns > *max_ns => {
                eprintln!(
                    "perf_report: gate FAILED: {kernel} mean {:.2} ns/op > {max_ns} ns/op",
                    r.mean_ns
                );
                gate_failed = true;
            }
            Some(r) => {
                println!(
                    "gate ok: {kernel} mean {:.2} ns/op <= {max_ns} ns/op",
                    r.mean_ns
                );
            }
            None => {
                eprintln!("perf_report: gate names unknown kernel: {kernel}");
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}

/// Diffs the fresh results against the previous trajectory entry (the
/// highest-numbered `BENCH_<k>.json` beside `out_path` with `k` below this
/// report's number) and prints per-kernel mean deltas. Silent when there is
/// no previous entry to diff against.
fn print_deltas(out_path: &str, results: &[KernelResult]) {
    let Some((prev_path, prev_json)) = previous_report(out_path) else {
        return;
    };
    let prev: Vec<(String, f64)> = parse_means(&prev_json);
    let mut table = TextTable::new(vec!["kernel", "previous", "current", "delta"]);
    let mut rows = 0;
    for r in results {
        let Some((_, before)) = prev.iter().find(|(name, _)| name == r.name) else {
            continue;
        };
        let pct = if *before > 0.0 {
            (r.mean_ns - before) / before * 100.0
        } else {
            0.0
        };
        table.row(vec![
            r.name.to_string(),
            format!("{before:.1} ns/op"),
            format!("{:.1} ns/op", r.mean_ns),
            format!("{pct:+.1}%"),
        ]);
        rows += 1;
    }
    if rows > 0 {
        println!("delta vs {prev_path}");
        println!("{}", table.render());
    }
}

/// Finds the previous trajectory entry for `out_path`: among the
/// `BENCH_<k>.json` files in the same directory, the readable one with the
/// largest `k` strictly below this report's number.
fn previous_report(out_path: &str) -> Option<(String, String)> {
    let path = Path::new(out_path);
    let current = bench_number(path.file_name()?.to_str()?)?;
    let dir = if path.parent().is_none_or(|p| p.as_os_str().is_empty()) {
        Path::new(".")
    } else {
        path.parent()?
    };
    let mut best: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let Some(k) = name.to_str().and_then(bench_number) else {
            continue;
        };
        if k < current && best.as_ref().is_none_or(|(b, _)| k > *b) {
            best = Some((k, entry.path().to_string_lossy().into_owned()));
        }
    }
    let (_, prev_path) = best?;
    let json = std::fs::read_to_string(&prev_path).ok()?;
    Some((prev_path, json))
}

/// `Some(n)` when `name` is exactly `BENCH_<n>.json`.
fn bench_number(name: &str) -> Option<u32> {
    name.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// The value following `--out`, if present.
fn out_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            return args.next();
        }
    }
    None
}

/// All `--gate <kernel>=<max_ns>` bounds, in argument order. A malformed
/// gate expression aborts immediately — mistyped CI gates must not pass by
/// being unparseable.
fn gate_args() -> Vec<(String, f64)> {
    let mut gates = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a != "--gate" {
            continue;
        }
        let expr = args.next().unwrap_or_default();
        let parsed = expr
            .split_once('=')
            .and_then(|(k, v)| v.trim().parse::<f64>().ok().map(|v| (k.trim(), v)));
        match parsed {
            Some((kernel, max_ns)) if !kernel.is_empty() && max_ns > 0.0 => {
                gates.push((kernel.to_string(), max_ns));
            }
            _ => {
                eprintln!("perf_report: malformed --gate {expr:?} (want <kernel>=<max_ns>)");
                std::process::exit(1);
            }
        }
    }
    gates
}
